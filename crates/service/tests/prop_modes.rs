//! Property tests for the typed dispatcher's determinism contract: a batch
//! interleaving all four query modes returns identical responses under
//! `threads = 1` and `threads = 8`, with and without approx indexes, and the
//! single-file collection snapshot reloads into a service that answers the
//! same batch identically.

use proptest::prelude::*;
use ustr_service::{QueryRequest, QueryService, ServiceConfig};
use ustr_uncertain::UncertainString;

/// Random documents over {a, b, c} with 1–3 normalized choices per position.
fn doc(max_len: usize) -> impl Strategy<Value = Vec<Vec<(u8, f64)>>> {
    prop::collection::vec(
        prop::collection::vec((0u8..3, 1u32..80), 1..=3),
        1..=max_len,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|mut row| {
                row.sort_by_key(|&(c, _)| c);
                row.dedup_by_key(|&mut (c, _)| c);
                let total: u32 = row.iter().map(|&(_, w)| w).sum();
                row.into_iter()
                    .map(|(c, w)| (b'a' + c, w as f64 / total as f64))
                    .collect()
            })
            .collect()
    })
}

fn pattern(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..3, 1..=max_len)
        .prop_map(|v| v.into_iter().map(|c| b'a' + c).collect())
}

/// One random request of any mode.
fn request() -> impl Strategy<Value = QueryRequest> {
    (pattern(4), 0usize..4, 0usize..4).prop_map(|(pattern, mode, arg)| {
        let tau = [0.1, 0.25, 0.4, 0.7][arg];
        match mode {
            0 => QueryRequest::Threshold { pattern, tau },
            1 => QueryRequest::TopK {
                pattern,
                k: arg + 1,
            },
            2 => QueryRequest::Listing { pattern, tau },
            _ => QueryRequest::Approx { pattern, tau },
        }
    })
}

fn config(threads: usize, shards: usize, epsilon: Option<f64>) -> ServiceConfig {
    ServiceConfig {
        threads,
        shards,
        cache_capacity: 0,
        epsilon,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mixed-mode batches are thread-count invariant: 1 thread / 1 shard,
    /// 8 threads / many shards, and the sequential reference all agree,
    /// with and without approx indexes.
    #[test]
    fn mixed_mode_batches_are_thread_invariant(
        raw_docs in prop::collection::vec(doc(10), 1..6),
        batch in prop::collection::vec(request(), 1..10),
        eps_idx in 0usize..3,
    ) {
        let docs: Vec<UncertainString> = raw_docs
            .into_iter()
            .map(|r| UncertainString::from_rows(r).unwrap())
            .collect();
        let epsilon = [None, Some(0.05), Some(0.2)][eps_idx];
        let single = QueryService::build(&docs, 0.05, config(1, 1, epsilon)).unwrap();
        let pooled = QueryService::build(&docs, 0.05, config(8, 3, epsilon)).unwrap();
        let a = single.query_requests(&batch);
        let b = pooled.query_requests(&batch);
        let c = pooled.query_requests_sequential(&batch);
        for (q, ((x, y), z)) in a.iter().zip(b.iter()).zip(c.iter()).enumerate() {
            match (x, y, z) {
                (Ok(x), Ok(y), Ok(z)) => {
                    prop_assert_eq!(x, y, "request {} diverged across thread counts", q);
                    prop_assert_eq!(x, z, "request {} diverged from sequential", q);
                }
                (Err(_), Err(_), Err(_)) => {}
                _ => prop_assert!(false, "request {} error-ness diverged", q),
            }
        }
    }

    /// A collection saved to one `.coll` file reloads into a service that
    /// answers the same mixed-mode batch identically, at any thread count.
    #[test]
    fn collection_snapshot_serves_identically(
        raw_docs in prop::collection::vec(doc(8), 1..5),
        batch in prop::collection::vec(request(), 1..8),
        seed in 0u32..1_000_000,
        threads in 1usize..9,
    ) {
        let docs: Vec<UncertainString> = raw_docs
            .into_iter()
            .map(|r| UncertainString::from_rows(r).unwrap())
            .collect();
        let built = QueryService::build(&docs, 0.05, config(2, 2, Some(0.1))).unwrap();
        let path = std::env::temp_dir().join(format!("ustr_prop_modes_{seed}.coll"));
        built.save_collection(&path).unwrap();
        let loaded = QueryService::load_collection(&path, config(threads, 0, None)).unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert!(loaded.has_approx_indexes(), "approx sections round-trip");
        let a = built.query_requests_sequential(&batch);
        let b = loaded.query_requests(&batch);
        for (q, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            match (x, y) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "request {} diverged after reload", q),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "request {} error-ness diverged after reload", q),
            }
        }
    }
}
