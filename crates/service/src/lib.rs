//! Concurrent sharded query engine over uncertain-string indexes.
//!
//! The ROADMAP's north star is serving heavy query traffic over indexes
//! that were built (or [loaded from snapshots](ustr_store)) once. This crate
//! supplies the serving layer:
//!
//! * **Document sharding** — a collection is split into contiguous shards,
//!   each holding one [`Index`] per document.
//! * **Fixed thread pool** — batch queries fan out as one job per
//!   `(query, shard)` pair onto [`ThreadPool`] workers.
//! * **Deterministic merge** — per-shard results are reassembled in shard
//!   order, so a parallel batch returns *exactly* the same answer as
//!   sequential evaluation, regardless of thread interleaving.
//! * **LRU result cache** — hot `(pattern, τ)` pairs are served from an
//!   [`LruCache`] without touching the indexes.
//!
//! ```
//! use ustr_service::{QueryService, ServiceConfig};
//! use ustr_uncertain::UncertainString;
//!
//! let docs = vec![
//!     UncertainString::parse("A:.9,B:.1 | B | C").unwrap(),
//!     UncertainString::parse("C | C | C").unwrap(),
//!     UncertainString::parse("A:.5,B:.5 | B | C").unwrap(),
//! ];
//! let service = QueryService::build(&docs, 0.05, ServiceConfig::default()).unwrap();
//! let hits = service.query(b"AB", 0.4).unwrap();
//! // Documents 0 (p = .9) and 2 (p = .5) contain "AB" at position 0.
//! assert_eq!(hits.len(), 2);
//! assert_eq!((hits[0].doc, hits[0].hits[0].0), (0, 0));
//! assert_eq!((hits[1].doc, hits[1].hits[0].0), (2, 0));
//! ```

mod cache;
mod pool;

use std::path::{Path, PathBuf};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};

use ustr_core::{Error, Index};
use ustr_store::{Snapshot, StoreError};
use ustr_uncertain::UncertainString;

pub use cache::LruCache;
pub use pool::ThreadPool;

/// Tuning knobs for a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads in the pool (0 = one per available core).
    pub threads: usize,
    /// Document shards (0 = same as the effective thread count).
    pub shards: usize,
    /// LRU cache capacity in `(pattern, τ)` entries (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            shards: 0,
            cache_capacity: 1024,
        }
    }
}

impl ServiceConfig {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// All probable occurrences of one query pattern within one document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocHits {
    /// Document id (position in the collection the service was built from).
    pub doc: usize,
    /// Sorted `(position, probability)` occurrences within the document.
    pub hits: Vec<(usize, f64)>,
}

/// A batch query: the pattern and its probability threshold τ.
pub type BatchQuery = (Vec<u8>, f64);

/// Shared, immutable results (cache entries hand out clones of the `Arc`).
pub type SharedHits = Arc<Vec<DocHits>>;

/// One shard: a contiguous run of documents, each with its own index.
struct Shard {
    /// `(doc_id, index)` pairs in ascending doc order.
    docs: Vec<(usize, Index)>,
}

impl Shard {
    /// Sequentially queries every document in the shard.
    fn query(&self, pattern: &[u8], tau: f64) -> Result<Vec<DocHits>, Error> {
        let mut out = Vec::new();
        for (doc, index) in &self.docs {
            let result = index.query(pattern, tau)?;
            if !result.is_empty() {
                out.push(DocHits {
                    doc: *doc,
                    hits: result.hits().to_vec(),
                });
            }
        }
        Ok(out)
    }
}

type CacheKey = (Vec<u8>, u64);

/// One shard's answer to one query (collected during a parallel batch).
type ShardAnswer = Result<Vec<DocHits>, Error>;

/// Errors from assembling a service out of snapshot files.
#[derive(Debug)]
pub enum ServiceError {
    /// Index construction failed.
    Index(Error),
    /// A snapshot failed to load.
    Store(StoreError),
    /// Directory walking failed.
    Io(std::io::Error),
    /// The index directory holds no snapshots.
    NoSnapshots,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Index(e) => write!(f, "index error: {e}"),
            ServiceError::Store(e) => write!(f, "snapshot error: {e}"),
            ServiceError::Io(e) => write!(f, "I/O error: {e}"),
            ServiceError::NoSnapshots => write!(f, "no .idx snapshots found in directory"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<Error> for ServiceError {
    fn from(e: Error) -> Self {
        ServiceError::Index(e)
    }
}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Store(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

/// A document-sharded, thread-pooled, result-cached query engine.
///
/// Built from a collection ([`QueryService::build`]), pre-built indexes
/// ([`QueryService::from_indexes`]), or a directory of snapshots
/// ([`QueryService::load_dir`]).
pub struct QueryService {
    shards: Vec<Arc<Shard>>,
    pool: ThreadPool,
    cache: Option<Mutex<LruCache<CacheKey, SharedHits>>>,
    /// Smallest τ every underlying index accepts.
    tau_min: f64,
    num_docs: usize,
}

impl QueryService {
    /// Builds one index per document and shards the collection.
    pub fn build(
        docs: &[UncertainString],
        tau_min: f64,
        config: ServiceConfig,
    ) -> Result<Self, Error> {
        let indexes = docs
            .iter()
            .map(|d| Index::build(d, tau_min))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_indexes(indexes, config))
    }

    /// Assembles a service from pre-built (or snapshot-loaded) indexes.
    /// Document ids follow the input order. The service's threshold floor is
    /// the largest `τmin` among the indexes.
    pub fn from_indexes(indexes: Vec<Index>, config: ServiceConfig) -> Self {
        let num_docs = indexes.len();
        let threads = config.effective_threads();
        let num_shards = match config.shards {
            0 => threads,
            n => n,
        }
        .clamp(1, num_docs.max(1));
        let tau_min = indexes.iter().map(|i| i.tau_min()).fold(0.0, f64::max);

        // Contiguous, balanced shards: the first `rem` shards get one extra.
        let base = num_docs / num_shards;
        let rem = num_docs % num_shards;
        let mut shards = Vec::with_capacity(num_shards);
        let mut iter = indexes.into_iter().enumerate();
        for s in 0..num_shards {
            let take = base + usize::from(s < rem);
            let docs: Vec<(usize, Index)> = iter.by_ref().take(take).collect();
            shards.push(Arc::new(Shard { docs }));
        }

        Self {
            shards,
            pool: ThreadPool::new(threads),
            cache: (config.cache_capacity > 0)
                .then(|| Mutex::new(LruCache::new(config.cache_capacity))),
            tau_min,
            num_docs,
        }
    }

    /// Loads every `*.idx` snapshot in `dir` (sorted by file name — the sort
    /// order defines document ids) and assembles a service.
    pub fn load_dir(dir: impl AsRef<Path>, config: ServiceConfig) -> Result<Self, ServiceError> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "idx"))
            .collect();
        if paths.is_empty() {
            return Err(ServiceError::NoSnapshots);
        }
        paths.sort();
        let indexes = paths
            .iter()
            .map(Index::load)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_indexes(indexes, config))
    }

    /// Saves one snapshot per document into `dir` as `doc_<id>.idx`
    /// (zero-padded so [`QueryService::load_dir`]'s name sort restores ids).
    pub fn save_dir(&self, dir: impl AsRef<Path>) -> Result<(), ServiceError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        for shard in &self.shards {
            for (doc, index) in &shard.docs {
                index.save(dir.join(format!("doc_{doc:08}.idx")))?;
            }
        }
        Ok(())
    }

    /// Number of documents served.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Number of document shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The smallest τ the service accepts (largest `τmin` of its indexes).
    pub fn tau_min(&self) -> f64 {
        self.tau_min
    }

    /// `(hits, misses)` of the result cache; zeros when caching is disabled.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache
            .as_ref()
            .map_or((0, 0), |c| c.lock().expect("cache poisoned").stats())
    }

    fn validate(&self, pattern: &[u8], tau: f64) -> Result<(), Error> {
        if pattern.is_empty() {
            return Err(Error::EmptyPattern);
        }
        if pattern.contains(&0u8) {
            return Err(Error::PatternContainsSentinel);
        }
        if !(tau > 0.0 && tau <= 1.0) {
            return Err(Error::InvalidThreshold { value: tau });
        }
        if tau < self.tau_min - 1e-12 {
            return Err(Error::ThresholdBelowTauMin {
                tau,
                tau_min: self.tau_min,
            });
        }
        Ok(())
    }

    fn cache_get(&self, key: &CacheKey) -> Option<SharedHits> {
        self.cache
            .as_ref()
            .and_then(|c| c.lock().expect("cache poisoned").get(key))
    }

    fn cache_put(&self, key: CacheKey, value: SharedHits) {
        if let Some(c) = &self.cache {
            c.lock().expect("cache poisoned").insert(key, value);
        }
    }

    /// Answers one query (through the cache and the thread pool).
    pub fn query(&self, pattern: &[u8], tau: f64) -> Result<Vec<DocHits>, Error> {
        let mut out = self.query_batch(&[(pattern.to_vec(), tau)]);
        out.pop()
            .expect("one query yields one result")
            .map(|shared| shared.as_ref().clone())
    }

    /// Answers a batch of queries, fanning each across every shard on the
    /// thread pool. Results are positionally aligned with `queries` and are
    /// **identical** to [`QueryService::query_batch_sequential`] — per-shard
    /// answers are merged in shard order, never in completion order.
    pub fn query_batch(&self, queries: &[BatchQuery]) -> Vec<Result<SharedHits, Error>> {
        let num_shards = self.shards.len();
        let mut results: Vec<Option<Result<SharedHits, Error>>> = vec![None; queries.len()];

        // Resolve validation failures and cache hits up front, and collapse
        // duplicate (pattern, τ) queries onto one computation: only the first
        // occurrence (the leader) fans out; followers copy its result.
        let mut pending: Vec<usize> = Vec::new();
        let mut leaders: std::collections::HashMap<CacheKey, usize> =
            std::collections::HashMap::new();
        let mut followers: Vec<(usize, usize)> = Vec::new(); // (query, leader)
        for (q, (pattern, tau)) in queries.iter().enumerate() {
            if let Err(e) = self.validate(pattern, *tau) {
                results[q] = Some(Err(e));
                continue;
            }
            let key = (pattern.clone(), tau.to_bits());
            if let Some(hit) = self.cache_get(&key) {
                results[q] = Some(Ok(hit));
                continue;
            }
            match leaders.get(&key) {
                Some(&leader) => followers.push((q, leader)),
                None => {
                    leaders.insert(key, q);
                    pending.push(q);
                }
            }
        }

        // Fan out: one job per (pending query, shard).
        let (tx, rx) = channel::<(usize, usize, ShardAnswer)>();
        for &q in &pending {
            let (pattern, tau) = &queries[q];
            for (s, shard) in self.shards.iter().enumerate() {
                let shard = Arc::clone(shard);
                let pattern = pattern.clone();
                let tau = *tau;
                let tx = tx.clone();
                self.pool.execute(move || {
                    // A send failure means the batch was abandoned; nothing
                    // useful to do from a worker.
                    let _ = tx.send((q, s, shard.query(&pattern, tau)));
                });
            }
        }
        drop(tx);

        // Collect in completion order, merge in shard order.
        let mut per_query: Vec<Vec<Option<ShardAnswer>>> =
            vec![vec![None; num_shards]; queries.len()];
        let mut outstanding = pending.len() * num_shards;
        while outstanding > 0 {
            let (q, s, result) = rx.recv().expect("workers never drop mid-batch");
            per_query[q][s] = Some(result);
            outstanding -= 1;
        }
        for &q in &pending {
            let mut merged = Vec::new();
            let mut error: Option<Error> = None;
            for slot in per_query[q].drain(..) {
                match slot.expect("every shard reported") {
                    Ok(mut part) => merged.append(&mut part),
                    Err(e) => {
                        // Keep the first (lowest-shard) error: deterministic.
                        error.get_or_insert(e);
                    }
                }
            }
            results[q] = Some(match error {
                Some(e) => Err(e),
                None => {
                    let shared: SharedHits = Arc::new(merged);
                    let (pattern, tau) = &queries[q];
                    self.cache_put((pattern.clone(), tau.to_bits()), Arc::clone(&shared));
                    Ok(shared)
                }
            });
        }

        for (q, leader) in followers {
            results[q] = Some(results[leader].clone().expect("leader resolved"));
        }

        results
            .into_iter()
            .map(|r| r.expect("every query resolved"))
            .collect()
    }

    /// Reference implementation: the same batch answered shard-by-shard on
    /// the calling thread (no pool), sharing the same cache. Exists to state
    /// — and test — the determinism contract of [`QueryService::query_batch`].
    pub fn query_batch_sequential(&self, queries: &[BatchQuery]) -> Vec<Result<SharedHits, Error>> {
        queries
            .iter()
            .map(|(pattern, tau)| {
                self.validate(pattern, *tau)?;
                let key = (pattern.clone(), tau.to_bits());
                if let Some(hit) = self.cache_get(&key) {
                    return Ok(hit);
                }
                let mut merged = Vec::new();
                for shard in &self.shards {
                    merged.append(&mut shard.query(pattern, *tau)?);
                }
                let shared: SharedHits = Arc::new(merged);
                self.cache_put(key, Arc::clone(&shared));
                Ok(shared)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection() -> Vec<UncertainString> {
        vec![
            UncertainString::parse("A:.9,B:.1 | B | C | A | B").unwrap(),
            UncertainString::parse("C | C | C").unwrap(),
            UncertainString::parse("A:.5,B:.5 | B | A:.7,C:.3 | B").unwrap(),
            UncertainString::deterministic(b"ABABAB"),
            UncertainString::parse("B | A:.2,B:.8 | B").unwrap(),
        ]
    }

    fn config(threads: usize, shards: usize, cache: usize) -> ServiceConfig {
        ServiceConfig {
            threads,
            shards,
            cache_capacity: cache,
        }
    }

    #[test]
    fn doc_ids_and_positions_are_global() {
        let service = QueryService::build(&collection(), 0.05, config(3, 2, 16)).unwrap();
        assert_eq!(service.num_docs(), 5);
        assert_eq!(service.num_shards(), 2);
        let hits = service.query(b"AB", 0.4).unwrap();
        let docs: Vec<usize> = hits.iter().map(|h| h.doc).collect();
        assert_eq!(docs, vec![0, 2, 3]);
        // Doc 3 is deterministic "ABABAB": AB at 0, 2, 4 with p = 1.
        let d3 = hits.iter().find(|h| h.doc == 3).unwrap();
        assert_eq!(
            d3.hits.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
    }

    #[test]
    fn parallel_batches_equal_sequential() {
        let docs = collection();
        let parallel = QueryService::build(&docs, 0.05, config(4, 3, 0)).unwrap();
        let sequential = QueryService::build(&docs, 0.05, config(1, 1, 0)).unwrap();
        let batch: Vec<BatchQuery> = vec![
            (b"AB".to_vec(), 0.3),
            (b"B".to_vec(), 0.5),
            (b"C".to_vec(), 0.9),
            (b"ZZ".to_vec(), 0.1),
            (b"A".to_vec(), 0.05),
        ];
        let a = parallel.query_batch(&batch);
        let b = parallel.query_batch_sequential(&batch);
        let c = sequential.query_batch(&batch);
        for ((x, y), z) in a.iter().zip(b.iter()).zip(c.iter()) {
            let x = x.as_ref().unwrap();
            assert_eq!(x.as_ref(), y.as_ref().unwrap().as_ref());
            assert_eq!(x.as_ref(), z.as_ref().unwrap().as_ref());
        }
    }

    #[test]
    fn cache_serves_repeats_without_divergence() {
        let service = QueryService::build(&collection(), 0.05, config(2, 2, 8)).unwrap();
        let first = service.query(b"AB", 0.3).unwrap();
        let (h0, m0) = service.cache_stats();
        assert_eq!((h0, m0), (0, 1));
        let second = service.query(b"AB", 0.3).unwrap();
        assert_eq!(first, second);
        let (h1, m1) = service.cache_stats();
        assert_eq!((h1, m1), (1, 1));
        // Different τ is a different cache entry.
        let _ = service.query(b"AB", 0.5).unwrap();
        assert_eq!(service.cache_stats(), (1, 2));
    }

    #[test]
    fn validation_errors_are_per_query() {
        let service = QueryService::build(&collection(), 0.1, config(2, 2, 4)).unwrap();
        let batch: Vec<BatchQuery> = vec![
            (b"".to_vec(), 0.3),
            (b"AB".to_vec(), 0.05), // below tau_min
            (b"AB".to_vec(), 0.3),
            (b"A\0B".to_vec(), 0.3),
            (b"AB".to_vec(), 1.5),
        ];
        let results = service.query_batch(&batch);
        assert!(matches!(results[0], Err(Error::EmptyPattern)));
        assert!(matches!(
            results[1],
            Err(Error::ThresholdBelowTauMin { .. })
        ));
        assert!(results[2].is_ok());
        assert!(matches!(results[3], Err(Error::PatternContainsSentinel)));
        assert!(matches!(results[4], Err(Error::InvalidThreshold { .. })));
    }

    #[test]
    fn duplicate_queries_in_a_batch_compute_once() {
        let service = QueryService::build(&collection(), 0.05, config(2, 2, 16)).unwrap();
        let batch: Vec<BatchQuery> = vec![
            (b"AB".to_vec(), 0.3),
            (b"AB".to_vec(), 0.3),
            (b"AB".to_vec(), 0.3),
            (b"B".to_vec(), 0.5),
        ];
        let results = service.query_batch(&batch);
        // Followers share the leader's allocation, not a recomputation.
        assert!(Arc::ptr_eq(
            results[0].as_ref().unwrap(),
            results[1].as_ref().unwrap()
        ));
        assert!(Arc::ptr_eq(
            results[0].as_ref().unwrap(),
            results[2].as_ref().unwrap()
        ));
        // And duplicates still agree with sequential evaluation (served from
        // the now-warm cache).
        let seq = service.query_batch_sequential(&batch);
        for (a, b) in results.iter().zip(seq.iter()) {
            assert_eq!(a.as_ref().unwrap().as_ref(), b.as_ref().unwrap().as_ref());
        }
        let (hits, _) = service.cache_stats();
        assert_eq!(hits, 4, "sequential pass is fully cache-served");
    }

    #[test]
    fn empty_collection_serves_empty_answers() {
        let service = QueryService::build(&[], 0.1, config(2, 2, 4)).unwrap();
        assert_eq!(service.num_docs(), 0);
        assert!(service.query(b"A", 0.5).unwrap().is_empty());
    }

    #[test]
    fn save_dir_load_dir_round_trips() {
        let docs = collection();
        let built = QueryService::build(&docs, 0.05, config(2, 3, 0)).unwrap();
        let dir = std::env::temp_dir().join("ustr_service_round_trip");
        let _ = std::fs::remove_dir_all(&dir);
        built.save_dir(&dir).unwrap();
        let loaded = QueryService::load_dir(&dir, config(4, 2, 0)).unwrap();
        assert_eq!(loaded.num_docs(), docs.len());
        let batch: Vec<BatchQuery> = vec![
            (b"AB".to_vec(), 0.3),
            (b"C".to_vec(), 0.8),
            (b"B".to_vec(), 0.1),
        ];
        let a = built.query_batch(&batch);
        let b = loaded.query_batch(&batch);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.as_ref().unwrap().as_ref(), y.as_ref().unwrap().as_ref());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_dir_rejects_empty_directories() {
        let dir = std::env::temp_dir().join("ustr_service_empty_dir");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            QueryService::load_dir(&dir, ServiceConfig::default()),
            Err(ServiceError::NoSnapshots)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
