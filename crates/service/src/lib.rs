//! Concurrent sharded query engine over uncertain-string indexes — every
//! query mode of the paper, served through one typed dispatcher.
//!
//! The ROADMAP's north star is serving heavy query traffic over indexes
//! that were built (or [loaded from snapshots](ustr_store)) once. This crate
//! supplies the serving layer:
//!
//! * **Four query modes** — a [`QueryRequest`] is `Threshold` (§5 substring
//!   search), `TopK` (ranked retrieval), `Listing` (§6 string listing with
//!   `Rel_max` relevance), or `Approx` (§7 ε-approximate search). Any mix of
//!   modes can share one batch; each answer comes back as the matching
//!   [`QueryResponse`] variant.
//! * **Document sharding** — a collection is split into contiguous shards,
//!   each holding one [`Index`] (and optionally one [`ApproxIndex`]) per
//!   document.
//! * **Fixed thread pool** — batch queries fan out as one job per
//!   `(request, shard)` pair onto [`ThreadPool`] workers.
//! * **Deterministic merge** — per-shard results are reassembled in shard
//!   order (top-k answers are re-ranked with a total tie-break on
//!   `(probability, doc, position)`), so a parallel batch returns *exactly*
//!   the same answer as sequential evaluation for **every** mode, regardless
//!   of thread interleaving.
//! * **LRU result cache** — hot requests are served from an [`LruCache`]
//!   without touching the indexes. Cache keys are per-mode: a `Threshold`
//!   and an `Approx` request for the same `(pattern, τ)` occupy distinct
//!   entries, and τ is quantized to the validation tolerance (see
//!   [`TAU_TOLERANCE`]) so thresholds the service treats as equal share one
//!   entry.
//!
//! # Persistence
//!
//! The primary format is the single-file **collection snapshot**
//! ([`QueryService::save_collection`] / [`QueryService::load_collection`],
//! format in [`ustr_store::collection`]): one `.coll` artifact holding a
//! manifest (doc count, shard plan, per-doc offsets, per-section checksums)
//! plus one substring-index section — and, when the service was built with
//! [`ServiceConfig::epsilon`], one approx-index section — per document.
//! Loading memory-plans shards from the manifest's per-document sizes.
//!
//! The older one-file-per-document directory layout
//! ([`QueryService::save_dir`] / [`QueryService::load_dir`]) is
//! **superseded for new code** by collection snapshots (and, for mutable
//! collections, `ustr-live` directories): it cannot carry approx indexes,
//! and a collection can only be moved or checksummed as a unit with the
//! single-file format. It remains supported for existing data.
//!
//! # Architecture
//!
//! The serving machinery is layered so static and mutable services share
//! every query path: [`exec`] defines [`DocExecutor`] (a built index or an
//! exact scan — interchangeable under `ustr_core::QueryExecutor`),
//! [`Segment`] (an ordered run of documents), and the deterministic
//! [`merge_partials`]; [`engine`] defines the [`Engine`] dispatcher
//! (validation, per-mode LRU cache, thread-pool fan-out) running over any
//! [`SegmentSet`]. [`QueryService`] is the static `SegmentSet` (fixed
//! shards); `ustr-live`'s `LiveService` is the mutable one (sealed
//! segments + memtable snapshot per batch).
//!
//! ```
//! use ustr_service::{QueryRequest, QueryResponse, QueryService, ServiceConfig};
//! use ustr_uncertain::UncertainString;
//!
//! let docs = vec![
//!     UncertainString::parse("A:.9,B:.1 | B | C").unwrap(),
//!     UncertainString::parse("C | C | C").unwrap(),
//!     UncertainString::parse("A:.5,B:.5 | B | C").unwrap(),
//! ];
//! let service = QueryService::build(&docs, 0.05, ServiceConfig::default()).unwrap();
//! let hits = service.query(b"AB", 0.4).unwrap();
//! // Documents 0 (p = .9) and 2 (p = .5) contain "AB" at position 0.
//! assert_eq!(hits.len(), 2);
//! assert_eq!((hits[0].doc, hits[0].hits[0].0), (0, 0));
//! assert_eq!((hits[1].doc, hits[1].hits[0].0), (2, 0));
//!
//! // Mixed-mode batches go through the typed dispatcher.
//! let batch = vec![
//!     QueryRequest::Threshold { pattern: b"AB".to_vec(), tau: 0.4 },
//!     QueryRequest::TopK { pattern: b"AB".to_vec(), k: 2 },
//!     QueryRequest::Listing { pattern: b"C".to_vec(), tau: 0.9 },
//! ];
//! let answers = service.query_requests(&batch);
//! assert!(matches!(answers[0], Ok(QueryResponse::Threshold(_))));
//! let Ok(QueryResponse::TopK(top)) = &answers[1] else { panic!() };
//! assert_eq!((top[0].doc, top[0].pos), (0, 0)); // p = .9 ranks first
//! ```

#![forbid(unsafe_code)]

mod cache;
pub mod engine;
pub mod exec;
mod pool;
pub mod sync;

use std::path::{Path, PathBuf};
use std::sync::Arc;

use ustr_core::{ApproxIndex, Error, Index};
use ustr_store::{collection, CollectionSection, Snapshot, SnapshotKind, StoreError};
use ustr_uncertain::UncertainString;

pub use cache::LruCache;
pub use engine::{mode_name, validate_request, Engine, SegmentSet, TraceSummary, TAU_TOLERANCE};
pub use exec::{merge_partials, top_hit_order, DocExecutor, Segment, ShardPartial};
pub use pool::ThreadPool;
pub use sync::{lock_clean, wait_clean, wait_timeout_clean, WakeQueue};
pub use ustr_core::ListingHit;

/// Tuning knobs for a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads in the pool (0 = one per available core).
    pub threads: usize,
    /// Document shards (0 = same as the effective thread count; always
    /// clamped to the document count so no empty shard is ever planned).
    pub shards: usize,
    /// LRU cache capacity in request entries (0 disables caching).
    pub cache_capacity: usize,
    /// When set, [`QueryService::build`] additionally builds one
    /// [`ApproxIndex`] with this ε per document, making `Approx` requests
    /// ε-approximate. Without approx indexes, `Approx` requests fall back to
    /// the exact index (a valid — if slower — answer under the §7 sandwich
    /// guarantee).
    pub epsilon: Option<f64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            shards: 0,
            cache_capacity: 1024,
            epsilon: None,
        }
    }
}

impl ServiceConfig {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// All probable occurrences of one query pattern within one document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocHits {
    /// Document id (position in the collection the service was built from).
    pub doc: usize,
    /// Sorted `(position, probability)` occurrences within the document.
    pub hits: Vec<(usize, f64)>,
}

/// One ranked occurrence from a `TopK` request.
#[derive(Debug, Clone, PartialEq)]
pub struct TopHit {
    /// Document id.
    pub doc: usize,
    /// Position within the document.
    pub pos: usize,
    /// Occurrence probability (the ranking key).
    pub prob: f64,
}

/// One query of any mode, addressed to the whole collection.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// §5 substring search: all `(doc, position)` occurrences with
    /// probability ≥ τ.
    Threshold {
        /// Query pattern.
        pattern: Vec<u8>,
        /// Probability threshold.
        tau: f64,
    },
    /// Ranked retrieval: the `k` most probable occurrences across the
    /// collection (among occurrences visible at the construction τmin).
    TopK {
        /// Query pattern.
        pattern: Vec<u8>,
        /// Number of occurrences to return.
        k: usize,
    },
    /// §6 string listing: every document whose `Rel_max` is ≥ τ.
    Listing {
        /// Query pattern.
        pattern: Vec<u8>,
        /// Relevance threshold.
        tau: f64,
    },
    /// §7 ε-approximate search: all occurrences with probability ≥ τ, none
    /// below τ − ε (exact when the service has no approx indexes).
    Approx {
        /// Query pattern.
        pattern: Vec<u8>,
        /// Probability threshold.
        tau: f64,
    },
}

/// The answer to one [`QueryRequest`], in the matching variant.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// Answer to [`QueryRequest::Threshold`].
    Threshold(SharedHits),
    /// Answer to [`QueryRequest::TopK`]: probability descending with a
    /// deterministic `(doc, pos)` tie-break.
    TopK(Arc<Vec<TopHit>>),
    /// Answer to [`QueryRequest::Listing`], sorted by document id.
    Listing(Arc<Vec<ListingHit>>),
    /// Answer to [`QueryRequest::Approx`].
    Approx(SharedHits),
}

/// A batch query: the pattern and its probability threshold τ (the legacy
/// threshold-only batch shape; see [`QueryRequest`] for the typed form).
pub type BatchQuery = (Vec<u8>, f64);

/// Shared, immutable results (cache entries hand out clones of the `Arc`).
pub type SharedHits = Arc<Vec<DocHits>>;

/// Errors from assembling a service out of snapshot files.
#[derive(Debug)]
pub enum ServiceError {
    /// Index construction failed.
    Index(Error),
    /// A snapshot failed to load.
    Store(StoreError),
    /// Directory walking failed.
    Io(std::io::Error),
    /// The index directory holds no snapshots.
    NoSnapshots,
    /// A `.idx` file in the directory is not named `doc_<id>.idx`.
    BadSnapshotName {
        /// The offending file name.
        name: String,
    },
    /// Two snapshot files name the same document id (e.g. `doc_1.idx` and
    /// `doc_01.idx`).
    DuplicateDocId {
        /// The id claimed twice.
        id: usize,
    },
    /// Document ids are not contiguous from 0 (a snapshot is missing).
    MissingDocId {
        /// The first id with no snapshot.
        id: usize,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Index(e) => write!(f, "index error: {e}"),
            ServiceError::Store(e) => write!(f, "snapshot error: {e}"),
            ServiceError::Io(e) => write!(f, "I/O error: {e}"),
            ServiceError::NoSnapshots => write!(f, "no .idx snapshots found in directory"),
            ServiceError::BadSnapshotName { name } => {
                write!(f, "snapshot file {name:?} is not named doc_<id>.idx")
            }
            ServiceError::DuplicateDocId { id } => {
                write!(f, "two snapshot files claim document id {id}")
            }
            ServiceError::MissingDocId { id } => {
                write!(
                    f,
                    "no snapshot for document id {id} (ids must be contiguous from 0)"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<Error> for ServiceError {
    fn from(e: Error) -> Self {
        ServiceError::Index(e)
    }
}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Store(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

/// Plans `num_shards` contiguous, non-empty document ranges balancing the
/// given per-document weights; returns the shard sizes (summing to
/// `weights.len()`). With uniform weights this degenerates to count
/// balancing. The shard count is clamped to the document count, so no empty
/// shard is ever planned (one empty shard stands in for an empty collection).
fn plan_shards(weights: &[usize], num_shards: usize) -> Vec<usize> {
    let n = weights.len();
    if n == 0 {
        return vec![0];
    }
    let num_shards = num_shards.clamp(1, n);
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    let mut sizes = Vec::with_capacity(num_shards);
    let mut doc = 0usize;
    let mut acc: u128 = 0;
    for s in 0..num_shards {
        let shards_left = num_shards - s;
        // Leave at least one document for each later shard.
        let max_take = n - doc - (shards_left - 1);
        let target = total * (s as u128 + 1) / num_shards as u128;
        let mut take = 1;
        acc += weights.get(doc).map_or(0, |&w| w as u128);
        while take < max_take && acc < target {
            acc += weights.get(doc + take).map_or(0, |&w| w as u128);
            take += 1;
        }
        sizes.push(take);
        doc += take;
    }
    debug_assert_eq!(doc, n, "every document is assigned to a shard");
    sizes
}

/// Parses the document id out of a `doc_<id>.idx` file name; `None` for any
/// other shape (including non-numeric or overflowing ids).
fn doc_id_from_name(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("doc_")?.strip_suffix(".idx")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// A document-sharded, thread-pooled, result-cached query engine.
///
/// Built from a collection ([`QueryService::build`]), pre-built indexes
/// ([`QueryService::from_indexes`]), a single-file collection snapshot
/// ([`QueryService::load_collection`]), or a directory of per-document
/// snapshots ([`QueryService::load_dir`], deprecated path).
pub struct QueryService {
    shards: Vec<Arc<Segment>>,
    engine: Engine,
    /// Smallest τ every underlying index accepts.
    tau_min: f64,
    num_docs: usize,
}

/// The static service *is* a [`SegmentSet`]: its segments are the fixed
/// shard list planned at assembly time.
impl SegmentSet for QueryService {
    fn segments(&self) -> Vec<Arc<Segment>> {
        self.shards.clone()
    }

    fn tau_min(&self) -> f64 {
        self.tau_min
    }
}

impl QueryService {
    /// Builds one index per document (plus one approx index per document
    /// when [`ServiceConfig::epsilon`] is set) and shards the collection.
    pub fn build(
        docs: &[UncertainString],
        tau_min: f64,
        config: ServiceConfig,
    ) -> Result<Self, Error> {
        let indexes = docs
            .iter()
            .map(|d| {
                let index = Index::build(d, tau_min)?;
                let approx = config
                    .epsilon
                    .map(|eps| ApproxIndex::build(d, tau_min, eps))
                    .transpose()?;
                Ok(DocExecutor::Built { index, approx })
            })
            .collect::<Result<Vec<_>, Error>>()?;
        let shards = match config.shards {
            0 => config.effective_threads(),
            n => n,
        };
        Ok(Self::assemble(indexes, None, shards, &config))
    }

    /// Assembles a service from pre-built (or snapshot-loaded) indexes.
    /// Document ids follow the input order. The service's threshold floor is
    /// the largest `τmin` among the indexes.
    pub fn from_indexes(indexes: Vec<Index>, config: ServiceConfig) -> Self {
        let docs = indexes
            .into_iter()
            .map(|index| DocExecutor::Built {
                index,
                approx: None,
            })
            .collect();
        let shards = match config.shards {
            0 => config.effective_threads(),
            n => n,
        };
        Self::assemble(docs, None, shards, &config)
    }

    /// Shards `docs` (by `weights` when given, uniformly otherwise) and
    /// wires up the dispatch engine.
    fn assemble(
        docs: Vec<DocExecutor>,
        weights: Option<&[usize]>,
        num_shards: usize,
        config: &ServiceConfig,
    ) -> Self {
        let num_docs = docs.len();
        let threads = config.effective_threads();
        let tau_min = docs.iter().map(|d| d.tau_min()).fold(0.0, f64::max);
        let uniform: Vec<usize>;
        let weights = match weights {
            Some(w) => w,
            None => {
                uniform = vec![1; num_docs];
                &uniform
            }
        };
        let sizes = plan_shards(weights, num_shards);
        let mut shards = Vec::with_capacity(sizes.len());
        let mut iter = docs.into_iter().enumerate();
        for take in sizes {
            let docs: Vec<(usize, Arc<DocExecutor>)> = iter
                .by_ref()
                .take(take)
                .map(|(doc, d)| (doc, Arc::new(d)))
                .collect();
            shards.push(Arc::new(Segment { docs }));
        }
        Self {
            shards,
            engine: Engine::new(threads, config.cache_capacity),
            tau_min,
            num_docs,
        }
    }

    /// Loads every `doc_<id>.idx` snapshot in `dir` and assembles a service;
    /// document ids come from the *parsed numeric id*, not the sort order of
    /// the file names, so unpadded ids (`doc_10.idx` next to `doc_2.idx`)
    /// load correctly. Any other `.idx` name, a duplicated id, or a gap in
    /// the ids is an error.
    ///
    /// This directory layout is the deprecated persistence path — it cannot
    /// carry approx indexes; prefer [`QueryService::load_collection`].
    pub fn load_dir(dir: impl AsRef<Path>, config: ServiceConfig) -> Result<Self, ServiceError> {
        let mut entries: Vec<(usize, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_none_or(|ext| ext != "idx") {
                continue;
            }
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            match doc_id_from_name(&name) {
                Some(id) => entries.push((id, path)),
                None => return Err(ServiceError::BadSnapshotName { name }),
            }
        }
        if entries.is_empty() {
            return Err(ServiceError::NoSnapshots);
        }
        entries.sort_by_key(|&(id, _)| id);
        for (expected, &(id, _)) in entries.iter().enumerate() {
            if id == expected {
                continue;
            }
            return Err(
                if entries.iter().take(expected).any(|&(prev, _)| prev == id) {
                    ServiceError::DuplicateDocId { id }
                } else {
                    ServiceError::MissingDocId { id: expected }
                },
            );
        }
        let indexes = entries
            .iter()
            .map(|(_, path)| Index::load(path))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_indexes(indexes, config))
    }

    /// Saves one snapshot per document into `dir` as `doc_<id>.idx`
    /// (zero-padded; [`QueryService::load_dir`] parses the numeric id back).
    ///
    /// This directory layout is the deprecated persistence path — approx
    /// indexes are **not** saved; prefer [`QueryService::save_collection`].
    pub fn save_dir(&self, dir: impl AsRef<Path>) -> Result<(), ServiceError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        for shard in &self.shards {
            for (doc, d) in &shard.docs {
                let path = dir.join(format!("doc_{doc:08}.idx"));
                match d.as_ref() {
                    DocExecutor::Built { index, .. } => index.save(path)?,
                    // Persistence always writes real index snapshots; a
                    // scan-served document is indexed on the way out.
                    DocExecutor::Scanned(scan) => {
                        Index::build(scan.source(), ustr_core::QueryExecutor::tau_min(scan))?
                            .save(path)?
                    }
                }
            }
        }
        Ok(())
    }

    /// Saves the whole collection as one file: a manifest (doc count, shard
    /// plan, per-doc offsets, per-section checksums) followed by each
    /// document's substring-index snapshot — and its approx-index snapshot,
    /// when the service holds one. Format:
    /// [`ustr_store::collection`].
    pub fn save_collection(&self, path: impl AsRef<Path>) -> Result<(), ServiceError> {
        let mut sections = Vec::with_capacity(self.num_docs);
        for shard in &self.shards {
            for (doc, d) in &shard.docs {
                let mut bytes = Vec::new();
                match d.as_ref() {
                    DocExecutor::Built { index, .. } => index.write_snapshot(&mut bytes)?,
                    DocExecutor::Scanned(scan) => {
                        Index::build(scan.source(), ustr_core::QueryExecutor::tau_min(scan))?
                            .write_snapshot(&mut bytes)?
                    }
                }
                sections.push(CollectionSection {
                    doc: *doc,
                    kind: SnapshotKind::Index,
                    bytes,
                });
                if let DocExecutor::Built {
                    approx: Some(approx),
                    ..
                } = d.as_ref()
                {
                    let mut bytes = Vec::new();
                    approx.write_snapshot(&mut bytes)?;
                    sections.push(CollectionSection {
                        doc: *doc,
                        kind: SnapshotKind::Approx,
                        bytes,
                    });
                }
            }
        }
        collection::save_collection_file(path, self.num_docs, self.num_shards(), &sections)?;
        Ok(())
    }

    /// Loads a single-file collection snapshot and assembles a service.
    /// Shards are **memory-planned** from the manifest: contiguous document
    /// ranges balanced by per-document snapshot size (a proxy for index
    /// heap), using `config.shards` when non-zero and the file's recorded
    /// shard plan otherwise. Truncated or corrupted files fail with a clean
    /// [`StoreError`] (wrapped in [`ServiceError::Store`]), never a panic.
    pub fn load_collection(
        path: impl AsRef<Path>,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        let coll = collection::load_collection_file(path)?;
        let corrupt = |detail: String| ServiceError::Store(StoreError::Corrupt { detail });
        let n = coll.num_docs;
        let mut index_bytes: Vec<Option<Vec<u8>>> = (0..n).map(|_| None).collect();
        let mut approx_bytes: Vec<Option<Vec<u8>>> = (0..n).map(|_| None).collect();
        for section in coll.sections {
            let table = match section.kind {
                SnapshotKind::Index => &mut index_bytes,
                SnapshotKind::Approx => &mut approx_bytes,
                other => {
                    return Err(corrupt(format!(
                        "collection section for document {} holds unsupported kind {}",
                        section.doc, other as u8
                    )))
                }
            };
            let Some(slot) = table.get_mut(section.doc) else {
                return Err(corrupt(format!(
                    "collection section names document {} of {n}",
                    section.doc
                )));
            };
            if slot.is_some() {
                return Err(corrupt(format!(
                    "document {} has duplicate sections of one kind",
                    section.doc
                )));
            }
            *slot = Some(section.bytes);
        }
        let mut docs = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        for (id, (ib, ab)) in index_bytes.into_iter().zip(approx_bytes).enumerate() {
            let ib =
                ib.ok_or_else(|| corrupt(format!("document {id} has no substring-index section")))?;
            weights.push(ib.len() + ab.as_ref().map_or(0, Vec::len));
            let index = Index::read_snapshot(ib.as_slice())?;
            let approx = ab
                .map(|bytes| ApproxIndex::read_snapshot(bytes.as_slice()))
                .transpose()?;
            docs.push(DocExecutor::Built { index, approx });
        }
        let shards = match config.shards {
            0 if coll.shard_hint > 0 => coll.shard_hint,
            0 => config.effective_threads(),
            s => s,
        };
        Ok(Self::assemble(docs, Some(&weights), shards, &config))
    }

    /// Number of documents served.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Number of document shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// The smallest τ the service accepts (largest `τmin` of its indexes).
    pub fn tau_min(&self) -> f64 {
        self.tau_min
    }

    /// `true` when every document carries an [`ApproxIndex`] (so `Approx`
    /// requests are genuinely ε-approximate rather than exact fallbacks).
    pub fn has_approx_indexes(&self) -> bool {
        self.num_docs > 0
            && self
                .shards
                .iter()
                .all(|s| s.docs.iter().all(|(_, d)| d.has_approx()))
    }

    /// `(hits, misses)` of the result cache; zeros when caching is
    /// disabled. The counters are cumulative totals over the service's
    /// lifetime (for a CLI invocation: process-lifetime totals) — they are
    /// never reset.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.engine.cache_stats()
    }

    /// Point-in-time snapshot of the engine's metrics registry: cache
    /// hit/miss counters, request/error totals, and per-stage latency
    /// histograms. Instance-scoped — two services in one process never
    /// mix counts.
    pub fn metrics_snapshot(&self) -> ustr_obs::MetricsSnapshot {
        self.engine.metrics_snapshot()
    }

    /// The engine's slow-query ring buffer (threshold adjustable at
    /// runtime).
    pub fn slow_log(&self) -> &ustr_obs::SlowQueryLog {
        self.engine.slow_log()
    }

    /// Answers one threshold query (through the cache and the thread pool).
    pub fn query(&self, pattern: &[u8], tau: f64) -> Result<Vec<DocHits>, Error> {
        let req = QueryRequest::Threshold {
            pattern: pattern.to_vec(),
            tau,
        };
        match self.one_request(req)? {
            QueryResponse::Threshold(shared) => Ok(shared.as_ref().clone()),
            _ => Err(Error::internal(
                "threshold request produced a mismatched response kind",
            )),
        }
    }

    /// Answers one collection-wide top-k query: the `k` most probable
    /// occurrences across every document, ranked by probability with a
    /// deterministic `(doc, pos)` tie-break.
    pub fn query_top_k(&self, pattern: &[u8], k: usize) -> Result<Vec<TopHit>, Error> {
        let req = QueryRequest::TopK {
            pattern: pattern.to_vec(),
            k,
        };
        match self.one_request(req)? {
            QueryResponse::TopK(shared) => Ok(shared.as_ref().clone()),
            _ => Err(Error::internal(
                "top-k request produced a mismatched response kind",
            )),
        }
    }

    /// Answers one listing query: every document whose `Rel_max` for
    /// `pattern` is ≥ τ, sorted by document id.
    pub fn query_listing(&self, pattern: &[u8], tau: f64) -> Result<Vec<ListingHit>, Error> {
        let req = QueryRequest::Listing {
            pattern: pattern.to_vec(),
            tau,
        };
        match self.one_request(req)? {
            QueryResponse::Listing(shared) => Ok(shared.as_ref().clone()),
            _ => Err(Error::internal(
                "listing request produced a mismatched response kind",
            )),
        }
    }

    /// Answers one ε-approximate query (exact when the service holds no
    /// approx indexes — see [`ServiceConfig::epsilon`]).
    pub fn query_approx(&self, pattern: &[u8], tau: f64) -> Result<Vec<DocHits>, Error> {
        let req = QueryRequest::Approx {
            pattern: pattern.to_vec(),
            tau,
        };
        match self.one_request(req)? {
            QueryResponse::Approx(shared) => Ok(shared.as_ref().clone()),
            _ => Err(Error::internal(
                "approx request produced a mismatched response kind",
            )),
        }
    }

    fn one_request(&self, req: QueryRequest) -> Result<QueryResponse, Error> {
        self.query_requests(std::slice::from_ref(&req))
            .pop()
            .unwrap_or_else(|| {
                Err(Error::internal(
                    "the engine returned no response for a one-request batch",
                ))
            })
    }

    /// Answers a typed batch of any mix of query modes through the shared
    /// [`Engine`], fanning each request across every shard on the thread
    /// pool. Responses are positionally aligned with `requests` and are
    /// **identical** to [`QueryService::query_requests_sequential`] for
    /// every mode — per-shard answers are merged in shard order (top-k with
    /// a total tie-break), never in completion order.
    pub fn query_requests(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse, Error>> {
        self.engine.run(self, requests)
    }

    /// [`QueryService::query_requests`] with tracing: each request's trace
    /// (fresh, or continuing a propagated parent context) is summarized
    /// alongside its response. See [`Engine::run_traced`].
    pub fn query_requests_traced(
        &self,
        requests: &[QueryRequest],
        parents: &[Option<ustr_obs::TraceContext>],
    ) -> Vec<(Result<QueryResponse, Error>, Option<engine::TraceSummary>)> {
        self.engine.run_traced(self, requests, parents)
    }

    /// The engine's tracer: configure sampling with
    /// [`Tracer::set_sample_permyriad`](ustr_obs::Tracer::set_sample_permyriad),
    /// read sampled span trees back via
    /// [`Tracer::traces`](ustr_obs::Tracer::traces).
    pub fn tracer(&self) -> &std::sync::Arc<ustr_obs::Tracer> {
        self.engine.tracer()
    }

    /// Reference implementation: the same typed batch answered
    /// shard-by-shard on the calling thread (no pool), sharing the same
    /// cache and merge code. Exists to state — and test — the determinism
    /// contract of [`QueryService::query_requests`].
    pub fn query_requests_sequential(
        &self,
        requests: &[QueryRequest],
    ) -> Vec<Result<QueryResponse, Error>> {
        self.engine.run_sequential(self, requests)
    }

    /// Answers a legacy threshold-only batch (see [`QueryRequest`] /
    /// [`QueryService::query_requests`] for mixed-mode batches). Results are
    /// positionally aligned with `queries` and identical to
    /// [`QueryService::query_batch_sequential`].
    pub fn query_batch(&self, queries: &[BatchQuery]) -> Vec<Result<SharedHits, Error>> {
        let requests: Vec<QueryRequest> = queries
            .iter()
            .map(|(pattern, tau)| QueryRequest::Threshold {
                pattern: pattern.clone(),
                tau: *tau,
            })
            .collect();
        self.query_requests(&requests)
            .into_iter()
            .map(|r| {
                r.and_then(|resp| match resp {
                    QueryResponse::Threshold(shared) => Ok(shared),
                    _ => Err(Error::internal(
                        "threshold request produced a mismatched response kind",
                    )),
                })
            })
            .collect()
    }

    /// Sequential reference for [`QueryService::query_batch`].
    pub fn query_batch_sequential(&self, queries: &[BatchQuery]) -> Vec<Result<SharedHits, Error>> {
        let requests: Vec<QueryRequest> = queries
            .iter()
            .map(|(pattern, tau)| QueryRequest::Threshold {
                pattern: pattern.clone(),
                tau: *tau,
            })
            .collect();
        self.query_requests_sequential(&requests)
            .into_iter()
            .map(|r| {
                r.and_then(|resp| match resp {
                    QueryResponse::Threshold(shared) => Ok(shared),
                    _ => Err(Error::internal(
                        "threshold request produced a mismatched response kind",
                    )),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection() -> Vec<UncertainString> {
        vec![
            UncertainString::parse("A:.9,B:.1 | B | C | A | B").unwrap(),
            UncertainString::parse("C | C | C").unwrap(),
            UncertainString::parse("A:.5,B:.5 | B | A:.7,C:.3 | B").unwrap(),
            UncertainString::deterministic(b"ABABAB"),
            UncertainString::parse("B | A:.2,B:.8 | B").unwrap(),
        ]
    }

    fn config(threads: usize, shards: usize, cache: usize) -> ServiceConfig {
        ServiceConfig {
            threads,
            shards,
            cache_capacity: cache,
            epsilon: None,
        }
    }

    fn mixed_batch() -> Vec<QueryRequest> {
        vec![
            QueryRequest::Threshold {
                pattern: b"AB".to_vec(),
                tau: 0.3,
            },
            QueryRequest::TopK {
                pattern: b"AB".to_vec(),
                k: 4,
            },
            QueryRequest::Listing {
                pattern: b"B".to_vec(),
                tau: 0.5,
            },
            QueryRequest::Approx {
                pattern: b"AB".to_vec(),
                tau: 0.3,
            },
            QueryRequest::Threshold {
                pattern: b"C".to_vec(),
                tau: 0.9,
            },
            QueryRequest::TopK {
                pattern: b"ZZ".to_vec(),
                k: 3,
            },
            QueryRequest::Listing {
                pattern: b"AB".to_vec(),
                tau: 0.45,
            },
            QueryRequest::Approx {
                pattern: b"B".to_vec(),
                tau: 0.6,
            },
        ]
    }

    #[test]
    fn doc_ids_and_positions_are_global() {
        let service = QueryService::build(&collection(), 0.05, config(3, 2, 16)).unwrap();
        assert_eq!(service.num_docs(), 5);
        assert_eq!(service.num_shards(), 2);
        let hits = service.query(b"AB", 0.4).unwrap();
        let docs: Vec<usize> = hits.iter().map(|h| h.doc).collect();
        assert_eq!(docs, vec![0, 2, 3]);
        // Doc 3 is deterministic "ABABAB": AB at 0, 2, 4 with p = 1.
        let d3 = hits.iter().find(|h| h.doc == 3).unwrap();
        assert_eq!(
            d3.hits.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
    }

    #[test]
    fn parallel_batches_equal_sequential() {
        let docs = collection();
        let parallel = QueryService::build(&docs, 0.05, config(4, 3, 0)).unwrap();
        let sequential = QueryService::build(&docs, 0.05, config(1, 1, 0)).unwrap();
        let batch: Vec<BatchQuery> = vec![
            (b"AB".to_vec(), 0.3),
            (b"B".to_vec(), 0.5),
            (b"C".to_vec(), 0.9),
            (b"ZZ".to_vec(), 0.1),
            (b"A".to_vec(), 0.05),
        ];
        let a = parallel.query_batch(&batch);
        let b = parallel.query_batch_sequential(&batch);
        let c = sequential.query_batch(&batch);
        for ((x, y), z) in a.iter().zip(b.iter()).zip(c.iter()) {
            let x = x.as_ref().unwrap();
            assert_eq!(x.as_ref(), y.as_ref().unwrap().as_ref());
            assert_eq!(x.as_ref(), z.as_ref().unwrap().as_ref());
        }
    }

    #[test]
    fn traced_run_yields_full_span_tree_and_identical_answers() {
        use ustr_obs::{assemble_traces, AttrValue, SAMPLE_SCALE};
        let docs = collection();
        let traced = QueryService::build(&docs, 0.05, config(4, 2, 16)).unwrap();
        let plain = QueryService::build(&docs, 0.05, config(4, 2, 16)).unwrap();
        traced.tracer().set_sample_permyriad(SAMPLE_SCALE);
        let batch = vec![QueryRequest::Threshold {
            pattern: b"AB".to_vec(),
            tau: 0.3,
        }];

        let traced_out = traced.query_requests_traced(&batch, &[]);
        let plain_out = plain.query_requests(&batch);
        // Tracing never perturbs answers.
        assert_eq!(
            traced_out[0].0.as_ref().unwrap(),
            plain_out[0].as_ref().unwrap()
        );

        let summary = traced_out[0].1.as_ref().expect("trace recorded at 100%");
        assert!(summary.kept);
        let stage_names: Vec<&str> = summary.stages.iter().map(|(n, _)| *n).collect();
        assert_eq!(stage_names, vec!["cache_lookup", "fanout", "merge"]);

        // The span set assembles into root + cache_lookup(miss) + fanout
        // + per-segment answers (with kernel attribution) + merge.
        let trees = assemble_traces(&summary.spans);
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        let root = tree.find("request").expect("root span");
        assert_eq!(
            root.span.attrs.get("mode"),
            Some(AttrValue::Str("threshold"))
        );
        let lookup = tree.find("cache_lookup").expect("cache_lookup span");
        assert_eq!(lookup.span.attrs.get("cache"), Some(AttrValue::Str("miss")));
        let fanout = tree.find("fanout").expect("fanout span");
        assert_eq!(fanout.span.parent_span, root.span.span_id);
        let segs: Vec<_> = fanout
            .children
            .iter()
            .filter(|c| c.span.name == "segment_answer")
            .collect();
        assert_eq!(segs.len(), traced.num_shards());
        assert!(segs
            .iter()
            .any(|s| matches!(s.span.attrs.get("candidates"), Some(AttrValue::U64(c)) if c > 0)));
        assert!(segs.iter().all(|s| s.span.attrs.get("verified").is_some()));
        assert!(tree.find("merge").is_some());
        // The tracer ring holds the same trace for exporters.
        assert_eq!(traced.tracer().traces().len(), 1);

        // A repeat of the same request is a cache hit: its trace has a
        // cache_lookup child tagged hit and no fanout.
        let again = traced.query_requests_traced(&batch, &[]);
        assert_eq!(again[0].0.as_ref().unwrap(), plain_out[0].as_ref().unwrap());
        let summary = again[0].1.as_ref().expect("hit trace recorded");
        let trees = assemble_traces(&summary.spans);
        let lookup = trees[0].find("cache_lookup").expect("cache_lookup span");
        assert_eq!(lookup.span.attrs.get("cache"), Some(AttrValue::Str("hit")));
        assert!(trees[0].find("fanout").is_none());

        // A propagated parent context is continued, not restarted.
        let parent = ustr_obs::TraceContext {
            trace_id: 0xabcd_1234,
            parent_span: 77,
            sampled: true,
        };
        let continued = traced.query_requests_traced(&batch, &[Some(parent)]);
        let summary = continued[0].1.as_ref().expect("continued trace");
        assert_eq!(summary.trace_id, parent.trace_id);
        assert!(summary
            .spans
            .iter()
            .any(|s| s.name == "request" && s.parent_span == parent.parent_span));
    }

    #[test]
    fn tracing_off_run_traced_returns_no_summaries() {
        let docs = collection();
        let service = QueryService::build(&docs, 0.05, config(2, 2, 0)).unwrap();
        assert!(!service.tracer().enabled());
        let out = service.query_requests_traced(
            &[QueryRequest::Threshold {
                pattern: b"AB".to_vec(),
                tau: 0.3,
            }],
            &[],
        );
        assert!(out[0].0.is_ok());
        assert!(out[0].1.is_none());
        assert!(service.tracer().spans().is_empty());
    }

    #[test]
    fn mixed_mode_parallel_equals_sequential() {
        let docs = collection();
        let mut services = vec![
            QueryService::build(&docs, 0.05, config(1, 1, 0)).unwrap(),
            QueryService::build(&docs, 0.05, config(4, 3, 0)).unwrap(),
            QueryService::build(&docs, 0.05, config(8, 5, 0)).unwrap(),
        ];
        // One service with real approx indexes: approx answers may differ
        // from the exact fallback, but parallel ≡ sequential must still hold.
        services.push(
            QueryService::build(
                &docs,
                0.05,
                ServiceConfig {
                    threads: 4,
                    shards: 2,
                    cache_capacity: 0,
                    epsilon: Some(0.05),
                },
            )
            .unwrap(),
        );
        let batch = mixed_batch();
        let reference = services[0].query_requests_sequential(&batch);
        for (i, service) in services.iter().enumerate() {
            let got = service.query_requests(&batch);
            let seq = service.query_requests_sequential(&batch);
            for (q, (g, s)) in got.iter().zip(seq.iter()).enumerate() {
                assert_eq!(
                    g.as_ref().unwrap(),
                    s.as_ref().unwrap(),
                    "service {i} request {q}: parallel != sequential"
                );
            }
            if i < 3 {
                // All-exact services agree with each other too.
                for (q, (g, r)) in got.iter().zip(reference.iter()).enumerate() {
                    assert_eq!(
                        g.as_ref().unwrap(),
                        r.as_ref().unwrap(),
                        "service {i} request {q}: diverged from reference"
                    );
                }
            }
        }
    }

    #[test]
    fn top_k_ranks_across_documents() {
        let service = QueryService::build(&collection(), 0.05, config(4, 3, 0)).unwrap();
        let top = service.query_top_k(b"AB", 5).unwrap();
        assert_eq!(top.len(), 5);
        // Four certain occurrences (doc 0 pos 3; doc 3 pos 0, 2, 4) rank
        // first in (doc, pos) tie-break order; then doc 0 pos 0 (p = .9).
        assert_eq!((top[0].doc, top[0].pos), (0, 3));
        assert_eq!((top[1].doc, top[1].pos), (3, 0));
        assert_eq!((top[2].doc, top[2].pos), (3, 2));
        assert_eq!((top[3].doc, top[3].pos), (3, 4));
        assert_eq!((top[4].doc, top[4].pos), (0, 0));
        assert!((top[4].prob - 0.9).abs() < 1e-9);
        for w in top.windows(2) {
            assert!(w[0].prob >= w[1].prob, "ranked descending");
        }
    }

    #[test]
    fn listing_reports_rel_max_per_document() {
        let docs = collection();
        let service = QueryService::build(&docs, 0.05, config(2, 2, 0)).unwrap();
        let listed = service.query_listing(b"AB", 0.45).unwrap();
        let ids: Vec<usize> = listed.iter().map(|h| h.doc).collect();
        assert_eq!(ids, vec![0, 2, 3]);
        // Agrees with the §6 ListingIndex under Rel_max.
        let reference = ustr_core::ListingIndex::build(&docs, 0.05).unwrap();
        assert_eq!(listed, reference.query(b"AB", 0.45).unwrap());
    }

    #[test]
    fn approx_requests_respect_the_sandwich() {
        let docs = collection();
        let exact = QueryService::build(&docs, 0.05, config(2, 2, 0)).unwrap();
        assert!(!exact.has_approx_indexes());
        let eps = 0.05;
        let approx = QueryService::build(
            &docs,
            0.05,
            ServiceConfig {
                threads: 2,
                shards: 2,
                cache_capacity: 0,
                epsilon: Some(eps),
            },
        )
        .unwrap();
        assert!(approx.has_approx_indexes());
        for (pattern, tau) in [(&b"AB"[..], 0.4), (b"B", 0.5), (b"C", 0.9)] {
            let must: Vec<(usize, usize)> = exact
                .query(pattern, tau)
                .unwrap()
                .iter()
                .flat_map(|d| d.hits.iter().map(|&(p, _)| (d.doc, p)).collect::<Vec<_>>())
                .collect();
            let may: Vec<(usize, usize)> = exact
                .query(pattern, (tau - eps).max(0.05))
                .unwrap()
                .iter()
                .flat_map(|d| d.hits.iter().map(|&(p, _)| (d.doc, p)).collect::<Vec<_>>())
                .collect();
            let got: Vec<(usize, usize)> = approx
                .query_approx(pattern, tau)
                .unwrap()
                .iter()
                .flat_map(|d| d.hits.iter().map(|&(p, _)| (d.doc, p)).collect::<Vec<_>>())
                .collect();
            for m in &must {
                assert!(got.contains(m), "missing exact hit {m:?}");
            }
            for g in &got {
                assert!(may.contains(g), "spurious hit {g:?} below tau - eps");
            }
        }
    }

    #[test]
    fn cache_serves_repeats_without_divergence() {
        let service = QueryService::build(&collection(), 0.05, config(2, 2, 8)).unwrap();
        let first = service.query(b"AB", 0.3).unwrap();
        let (h0, m0) = service.cache_stats();
        assert_eq!((h0, m0), (0, 1));
        let second = service.query(b"AB", 0.3).unwrap();
        assert_eq!(first, second);
        let (h1, m1) = service.cache_stats();
        assert_eq!((h1, m1), (1, 1));
        // Different τ is a different cache entry.
        let _ = service.query(b"AB", 0.5).unwrap();
        assert_eq!(service.cache_stats(), (1, 2));
    }

    #[test]
    fn cache_key_quantizes_tau_to_validation_tolerance() {
        let service = QueryService::build(&collection(), 0.05, config(2, 2, 8)).unwrap();
        let a = service.query(b"AB", 0.3).unwrap();
        assert_eq!(service.cache_stats(), (0, 1));
        // τ within the validation tolerance: same entry, served from cache.
        let b = service.query(b"AB", 0.3 + 2e-13).unwrap();
        assert_eq!(service.cache_stats(), (1, 1), "quantized τ must hit");
        assert_eq!(a, b);
        // τ a full lattice step away: distinct entry.
        let _ = service.query(b"AB", 0.3 + 1e-11).unwrap();
        assert_eq!(service.cache_stats(), (1, 2));
        // Modes never share entries, even for identical (pattern, τ).
        let _ = service.query_approx(b"AB", 0.3).unwrap();
        assert_eq!(service.cache_stats(), (1, 3));
        let _ = service.query_listing(b"AB", 0.3).unwrap();
        assert_eq!(service.cache_stats(), (1, 4));
    }

    #[test]
    fn validation_errors_are_per_query() {
        let service = QueryService::build(&collection(), 0.1, config(2, 2, 4)).unwrap();
        let batch: Vec<BatchQuery> = vec![
            (b"".to_vec(), 0.3),
            (b"AB".to_vec(), 0.05), // below tau_min
            (b"AB".to_vec(), 0.3),
            (b"A\0B".to_vec(), 0.3),
            (b"AB".to_vec(), 1.5),
        ];
        let results = service.query_batch(&batch);
        assert!(matches!(results[0], Err(Error::EmptyPattern)));
        assert!(matches!(
            results[1],
            Err(Error::ThresholdBelowTauMin { .. })
        ));
        assert!(results[2].is_ok());
        assert!(matches!(results[3], Err(Error::PatternContainsSentinel)));
        assert!(matches!(results[4], Err(Error::InvalidThreshold { .. })));
        // Top-k has no τ to validate, but patterns are still checked.
        let typed = service.query_requests(&[
            QueryRequest::TopK {
                pattern: b"".to_vec(),
                k: 3,
            },
            QueryRequest::TopK {
                pattern: b"AB".to_vec(),
                k: 0,
            },
        ]);
        assert!(matches!(typed[0], Err(Error::EmptyPattern)));
        let Ok(QueryResponse::TopK(empty)) = &typed[1] else {
            panic!("k = 0 answers with an empty ranking");
        };
        assert!(empty.is_empty());
    }

    #[test]
    fn duplicate_queries_in_a_batch_compute_once() {
        let service = QueryService::build(&collection(), 0.05, config(2, 2, 16)).unwrap();
        let batch: Vec<BatchQuery> = vec![
            (b"AB".to_vec(), 0.3),
            (b"AB".to_vec(), 0.3),
            (b"AB".to_vec(), 0.3),
            (b"B".to_vec(), 0.5),
        ];
        let results = service.query_batch(&batch);
        // Followers share the leader's allocation, not a recomputation.
        assert!(Arc::ptr_eq(
            results[0].as_ref().unwrap(),
            results[1].as_ref().unwrap()
        ));
        assert!(Arc::ptr_eq(
            results[0].as_ref().unwrap(),
            results[2].as_ref().unwrap()
        ));
        // And duplicates still agree with sequential evaluation (served from
        // the now-warm cache).
        let seq = service.query_batch_sequential(&batch);
        for (a, b) in results.iter().zip(seq.iter()) {
            assert_eq!(a.as_ref().unwrap().as_ref(), b.as_ref().unwrap().as_ref());
        }
        let (hits, _) = service.cache_stats();
        assert_eq!(hits, 4, "sequential pass is fully cache-served");
    }

    #[test]
    fn empty_collection_serves_empty_answers() {
        let service = QueryService::build(&[], 0.1, config(2, 2, 4)).unwrap();
        assert_eq!(service.num_docs(), 0);
        assert!(service.query(b"A", 0.5).unwrap().is_empty());
        assert!(service.query_top_k(b"A", 3).unwrap().is_empty());
        assert!(service.query_listing(b"A", 0.5).unwrap().is_empty());
    }

    #[test]
    fn one_doc_many_threads_clamps_to_one_shard() {
        let docs = vec![UncertainString::parse("A:.9,B:.1 | B | C").unwrap()];
        let service = QueryService::build(&docs, 0.05, config(8, 8, 0)).unwrap();
        assert_eq!(service.num_shards(), 1, "no empty shards are planned");
        assert_eq!(service.threads(), 8);
        let hits = service.query(b"AB", 0.5).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 0);
        let mixed = service.query_requests(&mixed_batch());
        let seq = service.query_requests_sequential(&mixed_batch());
        for (a, b) in mixed.iter().zip(seq.iter()) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn shard_planning_is_contiguous_and_nonempty() {
        assert_eq!(plan_shards(&[], 4), vec![0]);
        assert_eq!(plan_shards(&[1], 8), vec![1]);
        assert_eq!(plan_shards(&[1, 1, 1, 1, 1], 2).iter().sum::<usize>(), 5);
        // Weighted planning: a huge first doc gets its own shard.
        let sizes = plan_shards(&[1000, 1, 1, 1], 2);
        assert_eq!(sizes, vec![1, 3]);
        for n in 1..12usize {
            for shards in 1..12usize {
                let sizes = plan_shards(&vec![1; n], shards);
                assert_eq!(sizes.iter().sum::<usize>(), n);
                assert!(
                    sizes.iter().all(|&s| s >= 1),
                    "no empty shard for {n}/{shards}"
                );
                assert_eq!(sizes.len(), shards.min(n));
            }
        }
    }

    #[test]
    fn save_dir_load_dir_round_trips() {
        let docs = collection();
        let built = QueryService::build(&docs, 0.05, config(2, 3, 0)).unwrap();
        let dir = std::env::temp_dir().join("ustr_service_round_trip");
        let _ = std::fs::remove_dir_all(&dir);
        built.save_dir(&dir).unwrap();
        let loaded = QueryService::load_dir(&dir, config(4, 2, 0)).unwrap();
        assert_eq!(loaded.num_docs(), docs.len());
        let batch: Vec<BatchQuery> = vec![
            (b"AB".to_vec(), 0.3),
            (b"C".to_vec(), 0.8),
            (b"B".to_vec(), 0.1),
        ];
        let a = built.query_batch(&batch);
        let b = loaded.query_batch(&batch);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.as_ref().unwrap().as_ref(), y.as_ref().unwrap().as_ref());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_dir_parses_numeric_ids_from_unpadded_names() {
        // Hand-named, unpadded snapshots: lexicographic order (doc_10 <
        // doc_2) must NOT permute ids.
        let docs: Vec<UncertainString> = (0..11)
            .map(|i| {
                UncertainString::parse(&format!("A:.{}{},B:.{}{} | B", 9 - i % 9, 0, i % 9, 9))
                    .unwrap_or_else(|_| UncertainString::deterministic(b"AB"))
            })
            .collect();
        let dir = std::env::temp_dir().join("ustr_service_unpadded");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for (i, d) in docs.iter().enumerate() {
            let index = Index::build(d, 0.05).unwrap();
            index.save(dir.join(format!("doc_{i}.idx"))).unwrap();
        }
        let loaded = QueryService::load_dir(&dir, config(2, 2, 0)).unwrap();
        assert_eq!(loaded.num_docs(), docs.len());
        // Each document answers under its own id: compare with a freshly
        // built service over the same ordered collection.
        let built = QueryService::build(&docs, 0.05, config(1, 1, 0)).unwrap();
        for tau in [0.3, 0.6] {
            assert_eq!(
                loaded.query(b"AB", tau).unwrap(),
                built.query(b"AB", tau).unwrap()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_dir_rejects_foreign_duplicate_and_gapped_names() {
        let dir = std::env::temp_dir().join("ustr_service_bad_names");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let index = Index::build(&UncertainString::deterministic(b"AB"), 0.5).unwrap();

        // Foreign name.
        index.save(dir.join("doc_0.idx")).unwrap();
        index.save(dir.join("stray.idx")).unwrap();
        assert!(matches!(
            QueryService::load_dir(&dir, config(1, 1, 0)),
            Err(ServiceError::BadSnapshotName { .. })
        ));
        std::fs::remove_file(dir.join("stray.idx")).unwrap();

        // Duplicate id via padding variants.
        index.save(dir.join("doc_1.idx")).unwrap();
        index.save(dir.join("doc_01.idx")).unwrap();
        assert!(matches!(
            QueryService::load_dir(&dir, config(1, 1, 0)),
            Err(ServiceError::DuplicateDocId { id: 1 })
        ));
        std::fs::remove_file(dir.join("doc_01.idx")).unwrap();

        // Gap: ids {0, 1, 3}.
        index.save(dir.join("doc_3.idx")).unwrap();
        assert!(matches!(
            QueryService::load_dir(&dir, config(1, 1, 0)),
            Err(ServiceError::MissingDocId { id: 2 })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_dir_rejects_empty_directories() {
        let dir = std::env::temp_dir().join("ustr_service_empty_dir");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            QueryService::load_dir(&dir, ServiceConfig::default()),
            Err(ServiceError::NoSnapshots)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn collection_snapshot_round_trips_every_mode() {
        let docs = collection();
        let built = QueryService::build(
            &docs,
            0.05,
            ServiceConfig {
                threads: 2,
                shards: 3,
                cache_capacity: 0,
                epsilon: Some(0.05),
            },
        )
        .unwrap();
        let path = std::env::temp_dir().join("ustr_service_round_trip.coll");
        built.save_collection(&path).unwrap();
        // Reload at several thread/shard configurations: answers must be
        // identical to the freshly built service for every mode.
        let batch = mixed_batch();
        let reference = built.query_requests_sequential(&batch);
        for cfg in [config(1, 1, 0), config(4, 0, 0), config(8, 5, 0)] {
            let loaded = QueryService::load_collection(&path, cfg).unwrap();
            assert_eq!(loaded.num_docs(), docs.len());
            assert!(loaded.has_approx_indexes(), "approx sections reloaded");
            for (a, b) in loaded.query_requests(&batch).iter().zip(reference.iter()) {
                assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
            }
        }
        // shards = 0 adopts the file's recorded shard plan.
        let planned = QueryService::load_collection(&path, config(2, 0, 0)).unwrap();
        assert_eq!(planned.num_shards(), built.num_shards());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_collection_files_fail_cleanly() {
        let built = QueryService::build(&collection(), 0.05, config(1, 2, 0)).unwrap();
        let path = std::env::temp_dir().join("ustr_service_corrupt.coll");
        built.save_collection(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // Truncation at several depths (header, manifest, section bodies).
        for cut in [0, 7, 39, 60, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            match QueryService::load_collection(&path, config(1, 1, 0)) {
                Err(ServiceError::Store(_)) => {}
                Err(other) => panic!("cut at {cut}: expected a StoreError, got {other:?}"),
                Ok(_) => panic!("cut at {cut}: truncated collection must not load"),
            }
        }
        // A flipped payload byte fails a checksum.
        let mut flipped = bytes.clone();
        let at = flipped.len() - 9;
        flipped[at] ^= 0xFF;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            QueryService::load_collection(&path, config(1, 1, 0)),
            Err(ServiceError::Store(_))
        ));
        let _ = std::fs::remove_file(&path);
    }
}
