//! The typed batch dispatcher: validation, per-mode result cache, thread
//! pool fan-out, and deterministic merge — over any [`SegmentSet`].
//!
//! [`Engine::run`] is the one concurrent dispatch path in the workspace.
//! The static [`crate::QueryService`] hands it a fixed shard list; the
//! mutable `ustr-live` service hands it a point-in-time snapshot of sealed
//! segments plus the memtable. Both get the same guarantees: parallel
//! answers identical to sequential evaluation, duplicate requests computed
//! once, and per-mode LRU caching keyed on quantized thresholds.

use std::collections::HashMap;
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};

use ustr_core::Error;
use ustr_uncertain::canon;

use crate::sync::lock_clean;
use ustr_obs::{
    Counter, Histogram, MetricsRegistry, MetricsSnapshot, SlowQueryEntry, SlowQueryLog, Span,
    SpanRecord, TraceContext, TraceSpan, Tracer,
};
use ustr_uncertain::kstats;

use crate::exec::{merge_partials, Segment, ShardPartial};
use crate::{LruCache, QueryRequest, QueryResponse, ThreadPool};

/// τ values closer than this are treated as the same threshold by request
/// validation (see [`validate_request`]), and are therefore quantized onto
/// one cache key: two requests whose τs round to the same multiple of
/// `TAU_TOLERANCE` share a cache entry.
pub const TAU_TOLERANCE: f64 = canon::TAU_TOLERANCE;

/// Quantizes τ onto the `TAU_TOLERANCE` lattice for cache keying. Only
/// called on validated thresholds (finite, in `(0, 1]`), so the cast is
/// always in range.
fn quantize_tau(tau: f64) -> i64 {
    (tau / TAU_TOLERANCE).round() as i64
}

/// Per-mode request key. The mode tag keeps e.g. `Threshold("AB", τ)` and
/// `Approx("AB", τ)` in distinct entries; τ is pre-quantized (see
/// [`TAU_TOLERANCE`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum RequestKey {
    Threshold(Vec<u8>, i64),
    TopK(Vec<u8>, usize),
    Listing(Vec<u8>, i64),
    Approx(Vec<u8>, i64),
}

/// Full cache key: the request key plus the [`SegmentSet::cache_epoch`]
/// the answer was computed against. Keying on the epoch makes stale
/// entries unreachable even when a mutation races an in-flight batch —
/// the batch's `cache_put` lands under the *old* epoch, and every later
/// lookup uses the new one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    epoch: u64,
    request: RequestKey,
}

fn request_key(req: &QueryRequest, epoch: u64) -> CacheKey {
    let request = match req {
        QueryRequest::Threshold { pattern, tau } => {
            RequestKey::Threshold(pattern.clone(), quantize_tau(*tau))
        }
        QueryRequest::TopK { pattern, k } => RequestKey::TopK(pattern.clone(), *k),
        QueryRequest::Listing { pattern, tau } => {
            RequestKey::Listing(pattern.clone(), quantize_tau(*tau))
        }
        QueryRequest::Approx { pattern, tau } => {
            RequestKey::Approx(pattern.clone(), quantize_tau(*tau))
        }
    };
    CacheKey { epoch, request }
}

use ustr_core::validate_pattern;

/// Validates one request against the serving threshold floor `tau_min`
/// (the largest `τmin` among the served documents).
pub fn validate_request(req: &QueryRequest, tau_min: f64) -> Result<(), Error> {
    match req {
        QueryRequest::Threshold { pattern, tau }
        | QueryRequest::Listing { pattern, tau }
        | QueryRequest::Approx { pattern, tau } => {
            validate_pattern(pattern)?;
            if !canon::valid_tau(*tau) {
                return Err(Error::InvalidThreshold { value: *tau });
            }
            if *tau < tau_min - TAU_TOLERANCE {
                return Err(Error::ThresholdBelowTauMin { tau: *tau, tau_min });
            }
            Ok(())
        }
        QueryRequest::TopK { pattern, .. } => validate_pattern(pattern),
    }
}

/// A point-in-time view of a served collection: an ordered list of
/// [`Segment`]s (ascending document order across the list) and the
/// validation threshold floor. [`Engine::run`] answers batches over any
/// implementor; a mutable service returns a fresh snapshot per batch.
pub trait SegmentSet {
    /// Segments in ascending document order. Partial answers are merged in
    /// exactly this order.
    fn segments(&self) -> Vec<Arc<Segment>>;

    /// The smallest τ the set accepts (largest `τmin` of its documents).
    fn tau_min(&self) -> f64;

    /// A monotone counter identifying the collection state this snapshot
    /// describes. Cached responses are keyed on it, so an answer computed
    /// against one state can never serve a lookup against another — even
    /// when a mutation races an in-flight batch. Immutable sets keep the
    /// default 0.
    fn cache_epoch(&self) -> u64 {
        0
    }
}

/// One segment's answer to one request (collected during a parallel batch).
type SegmentAnswer = Result<ShardPartial, Error>;

/// Per-engine telemetry handles, all registered in one instance-scoped
/// [`MetricsRegistry`] so concurrent engines (parallel tests, multiple
/// services in one process) never mix counts. Snapshot via
/// [`Engine::metrics_snapshot`].
struct EngineMetrics {
    registry: MetricsRegistry,
    cache_hits: Counter,
    cache_misses: Counter,
    requests: Counter,
    errors: Counter,
    batch_us: Histogram,
    lookup_us: Histogram,
    fanout_us: Histogram,
    merge_us: Histogram,
    request_us: Histogram,
    segment_us: Histogram,
}

impl EngineMetrics {
    fn new() -> Self {
        let registry = MetricsRegistry::new();
        Self {
            cache_hits: registry.counter("service.cache.hits"),
            cache_misses: registry.counter("service.cache.misses"),
            requests: registry.counter("service.requests"),
            errors: registry.counter("service.errors"),
            batch_us: registry.histogram("service.batch_us"),
            lookup_us: registry.histogram("service.stage.cache_lookup_us"),
            fanout_us: registry.histogram("service.stage.fanout_us"),
            merge_us: registry.histogram("service.stage.merge_us"),
            request_us: registry.histogram("service.request_us"),
            segment_us: registry.histogram("service.stage.segment_answer_us"),
            registry,
        }
    }
}

/// How one request in a batch was resolved (drives per-request latency
/// accounting and the slow-query log).
#[derive(Clone, Copy, PartialEq)]
enum Outcome {
    Invalid,
    CacheHit,
    Computed,
}

/// Display name of a request's mode for telemetry.
pub fn mode_name(req: &QueryRequest) -> &'static str {
    match req {
        QueryRequest::Threshold { .. } => "threshold",
        QueryRequest::TopK { .. } => "top_k",
        QueryRequest::Listing { .. } => "listing",
        QueryRequest::Approx { .. } => "approx",
    }
}

fn pattern_of(req: &QueryRequest) -> &[u8] {
    match req {
        QueryRequest::Threshold { pattern, .. }
        | QueryRequest::TopK { pattern, .. }
        | QueryRequest::Listing { pattern, .. }
        | QueryRequest::Approx { pattern, .. } => pattern,
    }
}

/// What one traced request looked like from the inside: the flat stage
/// timings a network response can carry, and the full span set for the
/// slow-query log or an exporter. Produced by [`Engine::run_traced`] for
/// requests whose trace recorded; `None` otherwise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// The request's trace id.
    pub trace_id: u128,
    /// Root span duration in microseconds.
    pub duration_us: u64,
    /// Whether the trace was committed to the tracer's ring.
    pub kept: bool,
    /// `(stage, microseconds)` in lifecycle order — the wire-friendly
    /// flat breakdown.
    pub stages: Vec<(&'static str, u64)>,
    /// Every span of the request's trace, root included.
    pub spans: Vec<SpanRecord>,
}

/// The reusable dispatch core: a fixed thread pool plus an optional LRU
/// result cache. Holds no documents — every batch runs over the
/// [`SegmentSet`] it is handed.
pub struct Engine {
    pool: ThreadPool,
    cache: Option<Mutex<LruCache<CacheKey, QueryResponse>>>,
    metrics: EngineMetrics,
    slow_log: Arc<SlowQueryLog>,
    tracer: Arc<Tracer>,
}

impl Engine {
    /// Spawns `threads` workers (min 1); `cache_capacity` of 0 disables the
    /// result cache.
    pub fn new(threads: usize, cache_capacity: usize) -> Self {
        Self {
            pool: ThreadPool::new(threads),
            cache: (cache_capacity > 0).then(|| Mutex::new(LruCache::new(cache_capacity))),
            metrics: EngineMetrics::new(),
            slow_log: Arc::new(SlowQueryLog::default()),
            tracer: Arc::new(Tracer::new()),
        }
    }

    /// This engine's tracer (sampling off by default; enable with
    /// [`Tracer::set_sample_permyriad`] / [`Tracer::set_slow_us`]).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// `(hits, misses)` of the result cache since the engine was created;
    /// zeros when caching is disabled. The counters are cumulative totals
    /// over the engine's lifetime — they are never reset, not even by
    /// [`Engine::invalidate_cache`]. They are the `service.cache.hits` /
    /// `service.cache.misses` counters of [`Engine::metrics_snapshot`]:
    /// one source of truth, two views.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.metrics.cache_hits.get(),
            self.metrics.cache_misses.get(),
        )
    }

    /// Point-in-time snapshot of this engine's metrics registry (cache
    /// counters, request/error totals, per-stage latency histograms).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.registry.snapshot()
    }

    /// This engine's slow-query ring (threshold adjustable at runtime via
    /// [`SlowQueryLog::set_threshold_us`]).
    pub fn slow_log(&self) -> &SlowQueryLog {
        &self.slow_log
    }

    /// Drops every cached response (the hit/miss counters are preserved).
    /// A mutable service calls this on every write, because cached answers
    /// describe a collection state that no longer exists.
    pub fn invalidate_cache(&self) {
        if let Some(c) = &self.cache {
            lock_clean(c).clear();
        }
    }

    fn cache_get(&self, key: &CacheKey) -> Option<QueryResponse> {
        let cache = self.cache.as_ref()?;
        let hit = lock_clean(cache).get(key);
        match &hit {
            Some(_) => self.metrics.cache_hits.inc(),
            None => self.metrics.cache_misses.inc(),
        }
        hit
    }

    fn cache_put(&self, key: CacheKey, value: QueryResponse) {
        if let Some(c) = &self.cache {
            lock_clean(c).insert(key, value);
        }
    }

    /// Answers a typed batch of any mix of query modes, fanning each
    /// request across every segment of `set` on the thread pool. Responses
    /// are positionally aligned with `requests` and **identical** to
    /// [`Engine::run_sequential`] for every mode — per-segment answers are
    /// merged in segment order (top-k with a total tie-break), never in
    /// completion order.
    pub fn run(
        &self,
        set: &dyn SegmentSet,
        requests: &[QueryRequest],
    ) -> Vec<Result<QueryResponse, Error>> {
        self.run_traced(set, requests, &[])
            .into_iter()
            .map(|(result, _)| result)
            .collect()
    }

    /// [`Engine::run`] with tracing: opens a root span per request (fresh,
    /// or continuing a propagated parent from `parents` — positionally
    /// aligned, missing tail = no parent), records cache-lookup / fanout /
    /// per-segment / merge child spans, and returns each request's
    /// [`TraceSummary`] alongside its response. Tracing disabled ⇒ every
    /// summary is `None` and the span sites cost one branch each; answers
    /// are identical either way.
    pub fn run_traced(
        &self,
        set: &dyn SegmentSet,
        requests: &[QueryRequest],
        parents: &[Option<TraceContext>],
    ) -> Vec<(Result<QueryResponse, Error>, Option<TraceSummary>)> {
        let batch_span = Span::on(self.metrics.batch_us.clone());
        self.metrics.requests.add(requests.len() as u64);
        let segments = set.segments();
        let tau_min = set.tau_min();
        let epoch = set.cache_epoch();
        let num_segments = segments.len();
        let mut results: Vec<Option<Result<QueryResponse, Error>>> = vec![None; requests.len()];
        let mut outcomes: Vec<Outcome> = vec![Outcome::Computed; requests.len()];

        // One root span per request: continuing the propagated context
        // when one was carried in, fresh otherwise. Disabled tracer ⇒
        // every root is a no-op and so is every child derived from it.
        let mut roots: Vec<TraceSpan> = requests
            .iter()
            .enumerate()
            .map(|(q, req)| {
                let mut root = match parents.get(q).copied().flatten() {
                    Some(ctx) => self.tracer.continue_span("request", ctx),
                    None => self.tracer.root_span("request"),
                };
                root.set_str("mode", mode_name(req));
                root
            })
            .collect();

        // Resolve validation failures and cache hits up front, and collapse
        // duplicate requests onto one computation: only the first occurrence
        // (the leader) fans out; followers copy its result.
        let lookup_span = Span::on(self.metrics.lookup_us.clone());
        let lookup_start_ns = self.tracer.now_ns();
        let mut pending: Vec<usize> = Vec::new();
        let mut leaders: HashMap<CacheKey, usize> = HashMap::new();
        let mut followers: Vec<(usize, usize)> = Vec::new(); // (request, leader)
        for (q, (req, (outcome, result))) in requests
            .iter()
            .zip(outcomes.iter_mut().zip(results.iter_mut()))
            .enumerate()
        {
            if let Err(e) = validate_request(req, tau_min) {
                self.metrics.errors.inc();
                *outcome = Outcome::Invalid;
                *result = Some(Err(e));
                continue;
            }
            let key = request_key(req, epoch);
            if let Some(hit) = self.cache_get(&key) {
                *outcome = Outcome::CacheHit;
                *result = Some(Ok(hit));
                continue;
            }
            match leaders.get(&key) {
                Some(&leader) => followers.push((q, leader)),
                None => {
                    leaders.insert(key, q);
                    pending.push(q);
                }
            }
        }
        let lookup_end_ns = self.tracer.now_ns();
        let lookup_us = lookup_span.finish();
        // The lookup stage is timed once for the batch; each request's
        // trace gets its own cache_lookup child with the hit/miss verdict.
        for (root, outcome) in roots.iter().zip(&outcomes) {
            if *outcome == Outcome::Invalid {
                continue;
            }
            let verdict = if *outcome == Outcome::CacheHit {
                "hit"
            } else {
                "miss"
            };
            root.add_child_at(
                "cache_lookup",
                lookup_start_ns,
                lookup_end_ns,
                &[("cache", ustr_obs::AttrValue::Str(verdict))],
            );
        }

        // Fan out: one job per (pending request, segment). Each leader gets
        // a live fanout child span; its per-segment children are created
        // here (so parentage is right) but restarted inside the worker so
        // they measure execution, not queue wait. Kernel counts come from
        // the worker thread's scratch totals — the hot loop stays
        // atomic-free and the delta is exactly this segment's work.
        let fanout_span = Span::on(self.metrics.fanout_us.clone());
        let mut fanout_spans: HashMap<usize, TraceSpan> = pending
            .iter()
            .filter_map(|&q| Some((q, roots.get(q)?.child("fanout"))))
            .collect();
        let (tx, rx) = channel::<(usize, usize, SegmentAnswer)>();
        for &q in &pending {
            let Some(request) = requests.get(q) else {
                continue;
            };
            for (s, segment) in segments.iter().enumerate() {
                let segment = Arc::clone(segment);
                let req = request.clone();
                let tx = tx.clone();
                let segment_us = self.metrics.segment_us.clone();
                let mut seg_span = fanout_spans
                    .get(&q)
                    .map(|f| f.child("segment_answer"))
                    .unwrap_or_else(TraceSpan::disabled);
                self.pool.execute(move || {
                    seg_span.restart();
                    let kernel_before = kstats::thread_totals();
                    let span = Span::on(segment_us);
                    let answer = segment.answer(&req);
                    span.finish();
                    if seg_span.is_recording() {
                        let d = kstats::thread_totals().since(&kernel_before);
                        seg_span.set_u64("segment", s as u64);
                        seg_span.set_u64("candidates", d.candidates);
                        seg_span.set_u64("verified", d.verified);
                        seg_span.set_u64("plane_scans", d.plane_scans);
                        seg_span.set_u64("cold_scans", d.cold_scans);
                    }
                    seg_span.finish();
                    // A send failure means the batch was abandoned; nothing
                    // useful to do from a worker.
                    let _ = tx.send((q, s, answer));
                });
            }
        }
        drop(tx);

        // Collect in completion order, merge in segment order.
        let mut per_query: Vec<Vec<Option<SegmentAnswer>>> =
            (0..requests.len()).map(|_| Vec::new()).collect();
        for &q in &pending {
            if let Some(row) = per_query.get_mut(q) {
                *row = (0..num_segments).map(|_| None).collect();
            }
        }
        let mut outstanding = pending.len() * num_segments;
        while outstanding > 0 {
            let Ok((q, s, answer)) = rx.recv() else {
                // Every worker vanished mid-batch; unreported slots
                // degrade to internal errors in the merge below.
                break;
            };
            if let Some(slot) = per_query.get_mut(q).and_then(|row| row.get_mut(s)) {
                *slot = Some(answer);
            }
            outstanding -= 1;
        }
        // Close every leader's fanout span now that all its segment
        // answers are in.
        for (_, span) in fanout_spans.drain() {
            span.finish();
        }
        let fanout_us = fanout_span.finish();

        let merge_span = Span::on(self.metrics.merge_us.clone());
        let merge_start_ns = self.tracer.now_ns();
        for &q in &pending {
            let mut parts = Vec::with_capacity(num_segments);
            let mut error: Option<Error> = None;
            let slots = per_query.get_mut(q).map(std::mem::take).unwrap_or_default();
            for slot in slots {
                match slot {
                    Some(Ok(part)) => parts.push(part),
                    Some(Err(e)) => {
                        // Keep the first (lowest-segment) error: deterministic.
                        error.get_or_insert(e);
                    }
                    None => {
                        error.get_or_insert(Error::internal(
                            "a segment worker never reported its answer",
                        ));
                    }
                }
            }
            let resolved = match (error, requests.get(q)) {
                (Some(e), _) => {
                    self.metrics.errors.inc();
                    Err(e)
                }
                (None, Some(req)) => {
                    let response = merge_partials(req, parts);
                    self.cache_put(request_key(req, epoch), response.clone());
                    Ok(response)
                }
                (None, None) => Err(Error::internal("a pending index fell outside the batch")),
            };
            if let Some(slot) = results.get_mut(q) {
                *slot = Some(resolved);
            }
        }

        for (q, leader) in followers {
            let resolved = results.get(leader).cloned().flatten().unwrap_or_else(|| {
                Err(Error::internal(
                    "a duplicate request's leader never resolved",
                ))
            });
            if let Some(slot) = results.get_mut(q) {
                *slot = Some(resolved);
            }
        }
        let merge_end_ns = self.tracer.now_ns();
        let merge_us = merge_span.finish();
        for (root, outcome) in roots.iter().zip(&outcomes) {
            if *outcome == Outcome::Computed {
                root.add_child_at("merge", merge_start_ns, merge_end_ns, &[]);
            }
        }

        // Close every root: this is where a trace commits to (or skips)
        // the ring, and where its span tree becomes available for the
        // slow-query log and the network response's stage breakdown.
        let mut summaries: Vec<Option<TraceSummary>> = Vec::with_capacity(requests.len());
        for (root, outcome) in roots.drain(..).zip(&outcomes) {
            let stages = |lookup_only: bool| {
                if lookup_only {
                    vec![("cache_lookup", lookup_us)]
                } else {
                    vec![
                        ("cache_lookup", lookup_us),
                        ("fanout", fanout_us),
                        ("merge", merge_us),
                    ]
                }
            };
            summaries.push(root.finish_trace().map(|finished| TraceSummary {
                trace_id: finished.trace_id,
                duration_us: finished.duration_us,
                kept: finished.kept,
                stages: match outcome {
                    Outcome::Invalid => Vec::new(),
                    Outcome::CacheHit => stages(true),
                    Outcome::Computed => stages(false),
                },
                spans: finished.spans,
            }));
        }

        // Per-request accounting. Stage timings are batch-level (requests
        // in one batch share the pool), so a request's attributed latency
        // is the sum of the stages it went through: cache hits stop after
        // the lookup stage, computed requests ride all three. The slow
        // threshold is read once for the whole batch — one decision per
        // request even if it is adjusted concurrently.
        let slow_threshold_us = self.slow_log.threshold_us();
        let computed_us = lookup_us + fanout_us + merge_us;
        for ((req, outcome), summary) in requests.iter().zip(&outcomes).zip(&summaries) {
            let total_us = match outcome {
                Outcome::Invalid => continue,
                Outcome::CacheHit => lookup_us,
                Outcome::Computed => computed_us,
            };
            self.metrics.request_us.record(total_us);
            if total_us >= slow_threshold_us {
                let stages = match outcome {
                    Outcome::CacheHit => vec![("cache_lookup", lookup_us)],
                    _ => vec![
                        ("cache_lookup", lookup_us),
                        ("fanout", fanout_us),
                        ("merge", merge_us),
                    ],
                };
                self.slow_log.observe_at(
                    SlowQueryEntry {
                        pattern: String::from_utf8_lossy(pattern_of(req)).into_owned(),
                        mode: mode_name(req),
                        total_us,
                        stages,
                        spans: summary
                            .as_ref()
                            .map(|s| s.spans.clone())
                            .unwrap_or_default(),
                    },
                    slow_threshold_us,
                );
            }
        }
        batch_span.finish();

        results
            .into_iter()
            .zip(summaries)
            .map(|(r, summary)| {
                (
                    r.unwrap_or_else(|| {
                        Err(Error::internal("a request in the batch was never resolved"))
                    }),
                    summary,
                )
            })
            .collect()
    }

    /// Reference implementation: the same typed batch answered
    /// segment-by-segment on the calling thread (no pool), sharing the same
    /// cache and merge code. Exists to state — and test — the determinism
    /// contract of [`Engine::run`].
    pub fn run_sequential(
        &self,
        set: &dyn SegmentSet,
        requests: &[QueryRequest],
    ) -> Vec<Result<QueryResponse, Error>> {
        let segments = set.segments();
        let tau_min = set.tau_min();
        let epoch = set.cache_epoch();
        self.metrics.requests.add(requests.len() as u64);
        requests
            .iter()
            .map(|req| {
                let span = Span::on(self.metrics.request_us.clone());
                let result = (|| {
                    validate_request(req, tau_min)?;
                    let key = request_key(req, epoch);
                    if let Some(hit) = self.cache_get(&key) {
                        return Ok(hit);
                    }
                    let mut parts = Vec::with_capacity(segments.len());
                    for segment in &segments {
                        parts.push(segment.answer(req)?);
                    }
                    let response = merge_partials(req, parts);
                    self.cache_put(key, response.clone());
                    Ok(response)
                })();
                let total_us = span.finish();
                if result.is_err() {
                    self.metrics.errors.inc();
                }
                // One threshold read per request (see SlowQueryLog docs).
                let slow_threshold_us = self.slow_log.threshold_us();
                if total_us >= slow_threshold_us {
                    self.slow_log.observe_at(
                        SlowQueryEntry {
                            pattern: String::from_utf8_lossy(pattern_of(req)).into_owned(),
                            mode: mode_name(req),
                            total_us,
                            stages: vec![("sequential", total_us)],
                            spans: Vec::new(),
                        },
                        slow_threshold_us,
                    );
                }
                result
            })
            .collect()
    }
}
