//! Poison-recovering wrappers over `std::sync` locking.
//!
//! The serving crates must not panic (see `INVARIANTS.md`): a panicking
//! worker poisons every mutex it holds, and `lock().unwrap()` then turns
//! one dead request into a cascade that takes the whole server down. These
//! helpers recover the guard from a poisoned lock instead. That is sound
//! here because every critical section in this workspace either (a) only
//! reads, (b) writes a single field atomically-enough that a torn update is
//! impossible, or (c) is followed by validation that treats inconsistent
//! state as a per-request error — and the alternative (propagating the
//! poison) is strictly worse: it converts one failure into total outage.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Locks `mutex`, recovering the guard if a previous holder panicked.
pub fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] that recovers the guard on poison.
pub fn wait_clean<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] that recovers the guard on poison.
pub fn wait_timeout_clean<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_clean_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7usize));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_clean(&m), 7);
    }
}
