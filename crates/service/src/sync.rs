//! Poison-recovering wrappers over `std::sync` locking.
//!
//! The serving crates must not panic (see `INVARIANTS.md`): a panicking
//! worker poisons every mutex it holds, and `lock().unwrap()` then turns
//! one dead request into a cascade that takes the whole server down. These
//! helpers recover the guard from a poisoned lock instead. That is sound
//! here because every critical section in this workspace either (a) only
//! reads, (b) writes a single field atomically-enough that a torn update is
//! impossible, or (c) is followed by validation that treats inconsistent
//! state as a per-request error — and the alternative (propagating the
//! poison) is strictly worse: it converts one failure into total outage.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Locks `mutex`, recovering the guard if a previous holder panicked.
pub fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] that recovers the guard on poison.
pub fn wait_clean<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] that recovers the guard on poison.
pub fn wait_timeout_clean<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur)
        .unwrap_or_else(PoisonError::into_inner)
}

/// A multi-producer queue that *wakes* its single consumer instead of
/// blocking it: every push from a pool worker (or any thread) lands under a
/// short lock, and the transition from empty to non-empty fires a
/// caller-supplied wake callback — in the network server, a poller waker
/// that interrupts the event loop's `wait`.
///
/// This is the pool→event-loop handoff primitive: [`ThreadPool`] workers
/// finish a query, push the framed response here, and the event loop (which
/// must never block on a channel — it blocks *only* in the poller) drains
/// the whole batch on its next pass. Wakes are coalesced: pushes onto an
/// already-non-empty queue skip the callback, because the consumer drains
/// everything at once and a pending wake is already in flight. The consumer
/// must therefore always [`WakeQueue::drain`] to empty — draining partially
/// could strand items until the next unrelated wake.
///
/// [`ThreadPool`]: crate::ThreadPool
pub struct WakeQueue<T> {
    items: Mutex<std::collections::VecDeque<T>>,
    wake: Box<dyn Fn() + Send + Sync>,
}

impl<T> WakeQueue<T> {
    /// Creates an empty queue whose empty→non-empty transitions call
    /// `wake`. The callback runs on the pushing thread with no lock held,
    /// so it may do small amounts of I/O (a waker datagram) but must not
    /// block indefinitely.
    pub fn new(wake: impl Fn() + Send + Sync + 'static) -> Self {
        Self {
            items: Mutex::new(std::collections::VecDeque::new()),
            wake: Box::new(wake),
        }
    }

    /// Enqueues `item`; fires the wake callback when the queue was empty.
    pub fn push(&self, item: T) {
        let was_empty = {
            let mut items = lock_clean(&self.items);
            let was_empty = items.is_empty();
            items.push_back(item);
            was_empty
        };
        if was_empty {
            (self.wake)();
        }
    }

    /// Takes everything queued so far (possibly nothing — wakes coalesce,
    /// and a poller can wake for other reasons).
    pub fn drain(&self) -> std::collections::VecDeque<T> {
        std::mem::take(&mut *lock_clean(&self.items))
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        lock_clean(&self.items).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_clean_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7usize));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_clean(&m), 7);
    }

    #[test]
    fn wake_queue_wakes_once_per_empty_to_nonempty_transition() {
        let wakes = Arc::new(Mutex::new(0usize));
        let counter = Arc::clone(&wakes);
        let queue = WakeQueue::new(move || *counter.lock().unwrap() += 1);

        queue.push(1);
        queue.push(2);
        queue.push(3);
        assert_eq!(*wakes.lock().unwrap(), 1, "pushes onto non-empty coalesce");
        assert_eq!(queue.drain().into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(queue.is_empty());

        queue.push(4);
        assert_eq!(*wakes.lock().unwrap(), 2, "a drained queue wakes again");
        assert_eq!(queue.drain().into_iter().collect::<Vec<_>>(), vec![4]);
        assert!(queue.drain().is_empty(), "draining empty is a no-op");
    }

    #[test]
    fn wake_queue_collects_pushes_from_many_threads() {
        let wakes = Arc::new(Mutex::new(0usize));
        let counter = Arc::clone(&wakes);
        let queue = Arc::new(WakeQueue::new(move || *counter.lock().unwrap() += 1));

        let mut handles = Vec::new();
        for t in 0..8 {
            let queue = Arc::clone(&queue);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    queue.push(t * 100 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<i32> = queue.drain().into_iter().collect();
        all.sort_unstable();
        assert_eq!(all.len(), 800, "every push survives");
        assert_eq!(all.first(), Some(&0));
        assert_eq!(all.last(), Some(&799));
        let woke = *wakes.lock().unwrap();
        assert!((1..=800).contains(&woke), "wakes are coalesced, never lost");
    }
}
