//! A fixed-size thread pool over `std::sync` primitives (no external
//! dependencies): one shared job queue, workers parked on a channel.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::sync::lock_clean;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed worker pool. Jobs run in submission order per worker pickup;
/// callers that need ordered results tag jobs with their own indices.
pub struct ThreadPool {
    workers: Vec<JoinHandle<()>>,
    sender: Option<Sender<Job>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (min 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = channel();
        let receiver = Arc::new(Mutex::new(receiver));
        // A failed spawn (thread exhaustion) degrades the pool instead of
        // panicking: remaining workers carry the load, and if none spawned
        // at all, `execute` runs jobs inline on the caller.
        let workers = (0..threads)
            .filter_map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("ustr-service-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = lock_clean(&receiver);
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // sender dropped: shut down
                        }
                    })
                    .ok()
            })
            .collect();
        Self {
            workers,
            sender: Some(sender),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one job. If the workers are gone (none spawned, or every
    /// one exited), the job runs inline on the caller: slower, but every
    /// submitted job still completes exactly once.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let job: Job = Box::new(job);
        match &self.sender {
            Some(sender) => {
                if let Err(returned) = sender.send(job) {
                    (returned.0)();
                }
            }
            None => job(),
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel makes every worker's recv() fail and exit.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job_across_workers() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (done, results) = channel();
        for i in 0..100usize {
            let counter = Arc::clone(&counter);
            let done = done.clone();
            pool.execute(move || {
                counter.fetch_add(i, Ordering::SeqCst);
                done.send(()).unwrap();
            });
        }
        for _ in 0..100 {
            results.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), (0..100).sum());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let (done, results) = channel();
        pool.execute(move || done.send(42).unwrap());
        assert_eq!(results.recv().unwrap(), 42);
    }

    #[test]
    fn drop_joins_cleanly_with_queued_work() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Dropping waits for workers; queued jobs all run first because
            // the channel drains before recv() errors.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }
}
