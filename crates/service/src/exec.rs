//! The per-segment execution layer shared by every service front end.
//!
//! A collection — static ([`crate::QueryService`]) or mutable
//! (`ustr-live`'s `LiveService`) — is served as an ordered sequence of
//! [`Segment`]s, each holding `(doc id, executor)` pairs in ascending doc
//! order. One function ([`Segment::answer`]) evaluates any
//! [`QueryRequest`] over a segment; one function ([`merge_partials`])
//! deterministically reassembles per-segment partials into the final
//! [`QueryResponse`]. Both services share these code paths, which is what
//! makes their answers identical for identical document sets.
//!
//! Per-candidate verification inside every executor — built index or scan —
//! runs on the flat [`ustr_uncertain::ProbPlane`] kernel (pattern remapped
//! to plane ranks once per document per query, thread-local scratch, no
//! per-candidate allocation), so the whole serving stack inherits the
//! kernel's bit-identity contract: a query answered here matches the naive
//! `match_probability` evaluation bit for bit.

use std::sync::Arc;

use ustr_baseline::ScanIndex;
use ustr_core::{ApproxIndex, Error, Index, ListingHit, QueryExecutor};

use crate::{DocHits, QueryRequest, QueryResponse, SharedHits, TopHit};

/// How one document is queried: through built index structures, or by
/// scanning the source string (bit-identical answers — see
/// [`ustr_core::QueryExecutor`]). `Scanned` is the serving strategy for
/// documents too young to have been indexed (a live memtable).
// Executors always live behind an `Arc` in a `Segment`, so the size
// difference between a built index bundle and a bare scan wrapper is paid
// once per document, not per handle.
#[allow(clippy::large_enum_variant)]
pub enum DocExecutor {
    /// The paper's built indexes.
    Built {
        /// The exact substring index (serves `Threshold`, `TopK`,
        /// `Listing`).
        index: Index,
        /// The ε-approximate index (serves `Approx`; exact fallback when
        /// absent).
        approx: Option<ApproxIndex>,
    },
    /// A scan of the source document (always exact; `Approx` requests get
    /// the exact answer, which trivially satisfies the ε sandwich).
    Scanned(ScanIndex),
}

impl DocExecutor {
    /// The smallest τ the document accepts.
    pub fn tau_min(&self) -> f64 {
        match self {
            DocExecutor::Built { index, .. } => index.tau_min(),
            DocExecutor::Scanned(scan) => QueryExecutor::tau_min(scan),
        }
    }

    /// `true` when `Approx` requests are served ε-approximately rather than
    /// by an exact fallback.
    pub fn has_approx(&self) -> bool {
        matches!(
            self,
            DocExecutor::Built {
                approx: Some(_),
                ..
            }
        )
    }

    /// Threshold occurrences, sorted by position.
    pub fn threshold(&self, pattern: &[u8], tau: f64) -> Result<Vec<(usize, f64)>, Error> {
        match self {
            DocExecutor::Built { index, .. } => index.threshold_hits(pattern, tau),
            DocExecutor::Scanned(scan) => scan.threshold_hits(pattern, tau),
        }
    }

    /// The document's top-k occurrences in `(probability ↓, position ↑)`
    /// order.
    pub fn top_k(&self, pattern: &[u8], k: usize) -> Result<Vec<(usize, f64)>, Error> {
        match self {
            DocExecutor::Built { index, .. } => index.top_k_hits(pattern, k),
            DocExecutor::Scanned(scan) => scan.top_k_hits(pattern, k),
        }
    }

    /// ε-approximate occurrences (exact when no approx index is held).
    pub fn approx(&self, pattern: &[u8], tau: f64) -> Result<Vec<(usize, f64)>, Error> {
        match self {
            DocExecutor::Built {
                approx: Some(approx),
                ..
            } => Ok(approx.query(pattern, tau)?.into_hits()),
            _ => self.threshold(pattern, tau),
        }
    }
}

/// One unit of query fan-out: a contiguous run of documents (ascending doc
/// ids), each with its executor. The static service's shards and the live
/// service's sealed segments + memtable are all `Segment`s.
pub struct Segment {
    /// `(doc_id, executor)` pairs in ascending doc order.
    pub docs: Vec<(usize, Arc<DocExecutor>)>,
}

/// One segment's (partial) answer to one request.
pub enum ShardPartial {
    /// Threshold / approx occurrences, in ascending doc order.
    Hits(Vec<DocHits>),
    /// The segment-local top-k, already in [`top_hit_order`].
    TopK(Vec<TopHit>),
    /// Listed documents, in ascending doc order.
    Listing(Vec<ListingHit>),
}

/// Total order for top-k answers: probability descending, then `(doc, pos)`
/// ascending — a deterministic tie-break so parallel merges are stable.
pub fn top_hit_order(a: &TopHit, b: &TopHit) -> std::cmp::Ordering {
    b.prob
        .partial_cmp(&a.prob)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.doc.cmp(&b.doc))
        .then(a.pos.cmp(&b.pos))
}

impl Segment {
    /// Sequentially answers `req` over every document in the segment.
    pub fn answer(&self, req: &QueryRequest) -> Result<ShardPartial, Error> {
        match req {
            QueryRequest::Threshold { pattern, tau } => {
                let mut out = Vec::new();
                for (doc, d) in &self.docs {
                    let hits = d.threshold(pattern, *tau)?;
                    if !hits.is_empty() {
                        out.push(DocHits { doc: *doc, hits });
                    }
                }
                Ok(ShardPartial::Hits(out))
            }
            QueryRequest::Approx { pattern, tau } => {
                let mut out = Vec::new();
                for (doc, d) in &self.docs {
                    let hits = d.approx(pattern, *tau)?;
                    if !hits.is_empty() {
                        out.push(DocHits { doc: *doc, hits });
                    }
                }
                Ok(ShardPartial::Hits(out))
            }
            QueryRequest::TopK { pattern, k } => {
                // Any global top-k hit is inside its document's top-k, so
                // per-doc truncation loses nothing.
                let mut all = Vec::new();
                for (doc, d) in &self.docs {
                    for (pos, prob) in d.top_k(pattern, *k)? {
                        all.push(TopHit {
                            doc: *doc,
                            pos,
                            prob,
                        });
                    }
                }
                all.sort_by(top_hit_order);
                all.truncate(*k);
                Ok(ShardPartial::TopK(all))
            }
            QueryRequest::Listing { pattern, tau } => {
                let mut out = Vec::new();
                for (doc, d) in &self.docs {
                    let hits = d.threshold(pattern, *tau)?;
                    if !hits.is_empty() {
                        let relevance = hits
                            .iter()
                            .map(|&(_, p)| p)
                            .fold(f64::NEG_INFINITY, f64::max);
                        out.push(ListingHit {
                            doc: *doc,
                            relevance,
                        });
                    }
                }
                Ok(ShardPartial::Listing(out))
            }
        }
    }
}

/// Merges per-segment partial answers (already in segment = ascending doc
/// order) into the response for `req`. Used identically by the parallel
/// and sequential paths — and by both the static and the live service —
/// which is what makes them all answer-identical.
pub fn merge_partials(req: &QueryRequest, parts: Vec<ShardPartial>) -> QueryResponse {
    match req {
        QueryRequest::Threshold { .. } | QueryRequest::Approx { .. } => {
            let mut merged = Vec::new();
            for p in parts {
                if let ShardPartial::Hits(mut h) = p {
                    merged.append(&mut h);
                }
            }
            let shared: SharedHits = Arc::new(merged);
            match req {
                QueryRequest::Threshold { .. } => QueryResponse::Threshold(shared),
                _ => QueryResponse::Approx(shared),
            }
        }
        QueryRequest::TopK { k, .. } => {
            let mut all = Vec::new();
            for p in parts {
                if let ShardPartial::TopK(mut h) = p {
                    all.append(&mut h);
                }
            }
            all.sort_by(top_hit_order);
            all.truncate(*k);
            QueryResponse::TopK(Arc::new(all))
        }
        QueryRequest::Listing { .. } => {
            let mut merged = Vec::new();
            for p in parts {
                if let ShardPartial::Listing(mut h) = p {
                    merged.append(&mut h);
                }
            }
            QueryResponse::Listing(Arc::new(merged))
        }
    }
}
