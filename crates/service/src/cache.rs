//! A classic O(1) LRU cache: hash map into an index-linked recency list.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Least-recently-used cache with a fixed capacity. `get` refreshes recency;
/// `insert` evicts the coldest entry when full. All operations are O(1)
/// expected.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every entry, keeping the capacity. Hit/miss accounting lives
    /// with the cache's owner (the engine's metrics registry), not here —
    /// the cache is pure storage.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.unlink(i);
                self.push_front(i);
                Some(self.nodes[i].value.clone())
            }
            None => None,
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used entry
    /// when the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        if self.map.len() == self.capacity {
            let coldest = self.tail;
            self.unlink(coldest);
            let old_key = self.nodes[coldest].key.clone();
            self.map.remove(&old_key);
            self.free.push(coldest);
        }
        let i = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = Node {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.nodes.push(Node {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.get(&"a"), Some(1)); // refresh a; b is now coldest
        cache.insert("c", 3); // evicts b
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.get(&"a"), Some(1));
        assert_eq!(cache.get(&"c"), Some(3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn insert_refreshes_existing_key() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("a", 10); // refresh + overwrite; b becomes coldest
        cache.insert("c", 3); // evicts b
        assert_eq!(cache.get(&"a"), Some(10));
        assert_eq!(cache.get(&"b"), None);
    }

    #[test]
    fn churn_stays_bounded_and_consistent() {
        let mut cache = LruCache::new(8);
        for round in 0..1000usize {
            cache.insert(round % 13, round);
            assert!(cache.len() <= 8);
            if let Some(v) = cache.get(&(round % 7)) {
                // Any cached value for key k was inserted at a round ≡ k mod 13.
                assert_eq!(v % 13, round % 7);
            }
        }
    }

    #[test]
    fn capacity_one_works() {
        let mut cache = LruCache::new(1);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.get(&"a"), None);
        assert_eq!(cache.get(&"b"), Some(2));
        assert!(!cache.is_empty());
    }
}
