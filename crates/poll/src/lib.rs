//! Readiness polling for the `ustr-net` event loop.
//!
//! The server's event loop needs exactly three things from the OS: "tell me
//! when any of these sockets can make progress", "let me change what I care
//! about per socket", and "let another thread kick me awake". This crate
//! provides them std-only:
//!
//! - [`Poller`] — a level-triggered readiness queue. On Linux it is backed
//!   by `epoll` (O(ready) wakeups, no per-wait re-registration); on other
//!   Unix platforms it falls back to `poll(2)` over the registered set.
//!   Both backends speak the same API, so callers never branch on platform.
//! - [`Waker`] — a cross-thread wakeup built from a connected pair of
//!   loopback UDP sockets. The receive half registers in the poller like
//!   any other fd; `wake()` is one datagram from any thread. No pipes, no
//!   eventfd, no extra FFI: the waker is 100% safe std networking.
//!
//! # Why this crate may contain `unsafe`
//!
//! This is the **only** crate in the workspace exempt from the
//! `unsafe-free` invariant (see `INVARIANTS.md` §6 and `lint-allow.toml`):
//! readiness syscalls are not exposed by `std`, so `epoll_create1` /
//! `epoll_ctl` / `epoll_wait` / `poll` / `close` are declared as
//! `extern "C"` bindings against libc and invoked in five small, audited
//! `unsafe` blocks. Every pointer passed crosses into the kernel for the
//! duration of one call only, every buffer is stack- or caller-owned, and
//! no `unsafe` leaks into the API: consumers (the `ustr-net` event loop)
//! keep `#![forbid(unsafe_code)]`.
//!
//! # Level-triggered contract
//!
//! Readiness is a *condition*, not an event: as long as a registered fd can
//! read or write, every [`Poller::wait`] reports it again. Callers must
//! therefore drop interest in what they cannot act on (e.g. deregister
//! write interest once the output queue is empty) or they will busy-loop.
//! The flip side is robustness: a caller that processes only part of the
//! readable data is re-notified, so short reads never lose wakeups.

use std::io;
use std::net::UdpSocket;
#[cfg(unix)]
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

#[cfg(not(unix))]
compile_error!("ustr-poll requires a Unix platform (epoll or poll(2))");

/// What a registration wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Report when a read can make progress (data buffered, or EOF).
    pub readable: bool,
    /// Report when a write can make progress (socket buffer has room).
    pub writable: bool,
}

impl Interest {
    /// Read interest only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// No interest: only hangup/error conditions are reported (both
    /// backends deliver those unconditionally). Used by connections that
    /// are draining in-flight work and have nothing to read or write yet.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// A read can make progress.
    pub readable: bool,
    /// A write can make progress.
    pub writable: bool,
    /// The peer hung up or the socket errored; delivered even under
    /// [`Interest::NONE`]. The fd still accepts reads of any buffered
    /// data, but writes will fail.
    pub hangup: bool,
}

/// Upper bound on events decoded per [`Poller::wait`] call. Level-triggered
/// backends re-report anything still ready, so a small bound costs nothing
/// but an extra syscall under extreme fan-in.
const MAX_EVENTS: usize = 256;

/// Converts an optional timeout to the millisecond convention shared by
/// `epoll_wait` and `poll`: `-1` blocks, `0` polls, sub-millisecond
/// non-zero timeouts round **up** so a 100µs deadline cannot spin.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) if d.is_zero() => 0,
        Some(d) => {
            let ms = d.as_millis();
            if ms == 0 {
                1
            } else {
                ms.min(i32::MAX as u128) as i32
            }
        }
    }
}

#[cfg(any(target_os = "linux", target_os = "android"))]
mod sys {
    //! The epoll backend. The kernel owns the interest set, so register /
    //! reregister / deregister are one `epoll_ctl` each and `wait` is one
    //! `epoll_wait` — no userspace bookkeeping at all.

    use super::{timeout_ms, Event, Interest, MAX_EVENTS};
    use std::ffi::c_int;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    // The kernel ABI packs epoll_event on x86-64 only (a 12-byte struct);
    // everywhere else it has natural C layout (16 bytes).
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// Level-triggered readiness queue over `epoll`.
    pub struct Poller {
        epfd: RawFd,
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut events = 0;
        if interest.readable {
            events |= EPOLLIN;
        }
        if interest.writable {
            events |= EPOLLOUT;
        }
        events
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            // SAFETY: no pointers; returns a fresh fd or -1.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, event: Option<&mut EpollEvent>) -> io::Result<()> {
            let ptr = match event {
                Some(e) => e as *mut EpollEvent,
                // DEL ignores the event argument on any kernel this code
                // can run on (the requirement to pass one died in 2.6.9).
                None => std::ptr::null_mut(),
            };
            // SAFETY: `ptr` is null (DEL) or points at a live stack value
            // owned by our caller for the duration of the call; the kernel
            // copies it and keeps no reference.
            if unsafe { epoll_ctl(self.epfd, op, fd, ptr) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent {
                events: mask_of(interest),
                data: token,
            };
            self.ctl(EPOLL_CTL_ADD, fd, Some(&mut event))
        }

        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent {
                events: mask_of(interest),
                data: token,
            };
            self.ctl(EPOLL_CTL_MOD, fd, Some(&mut event))
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            // SAFETY: `buf` is a live stack array of MAX_EVENTS entries and
            // the length passed matches; the kernel writes at most that many.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    buf.as_mut_ptr(),
                    MAX_EVENTS as c_int,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                // A signal is not an error: report zero events and let the
                // caller's loop come back around.
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            for slot in buf.iter().take(n as usize) {
                // Copy out of the (possibly packed) struct before use.
                let mask = slot.events;
                let token = slot.data;
                events.push(Event {
                    token,
                    readable: mask & EPOLLIN != 0,
                    writable: mask & EPOLLOUT != 0,
                    hangup: mask & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(events.len())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: `epfd` is a valid fd this struct exclusively owns.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(any(target_os = "linux", target_os = "android"))))]
mod sys {
    //! The `poll(2)` fallback for non-Linux Unix. The interest set lives in
    //! userspace (a mutex-guarded map) and is snapshotted into a `pollfd`
    //! array per wait — O(registered) per call, which is fine at the
    //! connection counts a development laptop sees.

    use super::{timeout_ms, Event, Interest, MAX_EVENTS};
    use std::collections::HashMap;
    use std::ffi::{c_int, c_short, c_uint};
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const POLLNVAL: c_short = 0x020;

    extern "C" {
        // POSIX nfds_t is "an unsigned integer type"; on the BSDs and
        // macOS (the platforms this arm compiles for) it is unsigned int.
        fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
    }

    /// Level-triggered readiness queue over `poll(2)`.
    pub struct Poller {
        registered: Mutex<HashMap<RawFd, (u64, Interest)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Self {
                registered: Mutex::new(HashMap::new()),
            })
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut map = self.registered.lock().unwrap_or_else(|e| e.into_inner());
            if map.insert(fd, (token, interest)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            Ok(())
        }

        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut map = self.registered.lock().unwrap_or_else(|e| e.into_inner());
            match map.get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut map = self.registered.lock().unwrap_or_else(|e| e.into_inner());
            match map.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            // Snapshot under the lock, poll outside it: the syscall blocks.
            let snapshot: Vec<(RawFd, u64, Interest)> = {
                let map = self.registered.lock().unwrap_or_else(|e| e.into_inner());
                map.iter().map(|(&fd, &(tok, i))| (fd, tok, i)).collect()
            };
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|&(fd, _, interest)| {
                    let mut mask: c_short = 0;
                    if interest.readable {
                        mask |= POLLIN;
                    }
                    if interest.writable {
                        mask |= POLLOUT;
                    }
                    PollFd {
                        fd,
                        events: mask,
                        revents: 0,
                    }
                })
                .collect();
            // SAFETY: `fds` is a live Vec whose length matches `nfds`; the
            // kernel only writes the `revents` fields.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_uint, timeout_ms(timeout)) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            for (slot, &(_, token, _)) in fds.iter().zip(snapshot.iter()) {
                let r = slot.revents;
                if r == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: r & POLLIN != 0,
                    writable: r & POLLOUT != 0,
                    hangup: r & (POLLERR | POLLHUP | POLLNVAL) != 0,
                });
                if events.len() >= MAX_EVENTS {
                    break;
                }
            }
            Ok(events.len())
        }
    }
}

/// A level-triggered readiness queue: `epoll` on Linux, `poll(2)` on other
/// Unix platforms. Registration is by raw fd plus a caller-chosen `u64`
/// token; [`Poller::wait`] reports tokens, never fds, so callers are immune
/// to fd reuse races. See the [crate docs](self) for the level-triggered
/// contract.
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Creates an empty poller.
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            inner: sys::Poller::new()?,
        })
    }

    /// Adds `fd` with `token` and `interest`. The fd must outlive the
    /// registration (deregister before closing it).
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.register(fd, token, interest)
    }

    /// Replaces the token and interest of an already-registered `fd`.
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.reregister(fd, token, interest)
    }

    /// Removes `fd` from the interest set.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.inner.deregister(fd)
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// elapses (`Some`), or forever (`None`). Clears and fills `events`;
    /// returns how many were delivered (0 on timeout or signal).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        self.inner.wait(events, timeout)
    }
}

/// A cross-thread wakeup for a [`Poller`], built from a connected pair of
/// loopback UDP sockets — safe std networking, no extra syscall bindings.
///
/// Register [`Waker::as_raw_fd`] (the receive half) with read interest;
/// [`Waker::wake`] from any thread makes the next (or current) `wait`
/// return. The event loop calls [`Waker::drain`] on readiness so coalesced
/// wakes do not pile up. Each half is `connect`ed to the other, so
/// datagrams from any other source are refused by the kernel — a stray
/// local process cannot forge wakeups.
pub struct Waker {
    /// The half the poller watches.
    rx: UdpSocket,
    /// The half other threads send the wake byte through.
    tx: UdpSocket,
}

impl Waker {
    /// Binds the loopback pair. The receive half is non-blocking (drain
    /// must never stall the event loop).
    pub fn new() -> io::Result<Self> {
        let rx = UdpSocket::bind("127.0.0.1:0")?;
        let tx = UdpSocket::bind("127.0.0.1:0")?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        tx.connect(rx.local_addr()?)?;
        rx.connect(tx.local_addr()?)?;
        Ok(Self { rx, tx })
    }

    /// Makes the poller's current or next `wait` return. Callable from any
    /// thread; failures are ignored (the only consequence of a lost wake on
    /// a dead loop is nothing).
    pub fn wake(&self) {
        let _ = self.tx.send(&[1]);
    }

    /// Discards every pending wake datagram. Called by the event loop when
    /// the waker fd reports readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 16];
        while self.rx.recv(&mut buf).is_ok() {}
    }
}

impl AsRawFd for Waker {
    /// The fd to register with the poller (read interest).
    fn as_raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn events_of(poller: &Poller, timeout: Duration) -> Vec<Event> {
        let mut events = Vec::new();
        poller.wait(&mut events, Some(timeout)).expect("wait");
        events
    }

    #[test]
    fn a_listener_becomes_readable_when_a_client_connects() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(listener.as_raw_fd(), 7, Interest::READ)
            .unwrap();

        assert!(
            events_of(&poller, Duration::from_millis(10)).is_empty(),
            "nothing is ready before a client arrives"
        );
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let events = events_of(&poller, Duration::from_secs(5));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn level_triggering_rereports_until_the_condition_clears() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        client.write_all(b"ping").unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        // Unconsumed data: reported on every wait.
        for _ in 0..3 {
            let events = events_of(&poller, Duration::from_secs(5));
            assert!(events.iter().any(|e| e.token == 1 && e.readable));
        }
        // Consume it: readiness clears.
        let mut sink = [0u8; 16];
        let mut server_reader = &server;
        let n = server_reader.read(&mut sink).unwrap();
        assert_eq!(n, 4);
        assert!(events_of(&poller, Duration::from_millis(10)).is_empty());
    }

    #[test]
    fn interest_changes_take_effect_and_deregister_silences() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        client.write_all(b"x").unwrap();

        let poller = Poller::new().unwrap();
        // Interest::NONE: buffered data is not reported.
        poller
            .register(server.as_raw_fd(), 9, Interest::NONE)
            .unwrap();
        assert!(events_of(&poller, Duration::from_millis(10)).is_empty());
        // Flip to read interest: the same buffered byte now reports.
        poller
            .reregister(server.as_raw_fd(), 9, Interest::READ)
            .unwrap();
        let events = events_of(&poller, Duration::from_secs(5));
        assert!(events.iter().any(|e| e.token == 9 && e.readable));
        // An idle socket's buffer has room: write interest reports too.
        poller
            .reregister(
                server.as_raw_fd(),
                9,
                Interest {
                    readable: false,
                    writable: true,
                },
            )
            .unwrap();
        let events = events_of(&poller, Duration::from_secs(5));
        assert!(events.iter().any(|e| e.token == 9 && e.writable));
        poller.deregister(server.as_raw_fd()).unwrap();
        assert!(events_of(&poller, Duration::from_millis(10)).is_empty());
    }

    #[test]
    fn waker_wakes_a_blocked_wait_from_another_thread() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller
            .register(waker.as_raw_fd(), u64::MAX, Interest::READ)
            .unwrap();

        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake();
        });
        let t0 = Instant::now();
        let events = events_of(&poller, Duration::from_secs(10));
        handle.join().unwrap();
        assert!(events.iter().any(|e| e.token == u64::MAX && e.readable));
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "the wake interrupted the wait rather than the timeout elapsing"
        );
        // Drained, the condition clears (coalesced wakes collapse too).
        waker.wake();
        waker.wake();
        waker.drain();
        assert!(events_of(&poller, Duration::from_millis(10)).is_empty());
    }

    #[test]
    fn sub_millisecond_timeouts_round_up_not_to_zero() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(250))), 250);
    }
}
