//! WAL recovery under injected fsync/write/rename failures, exercised at
//! every record boundary through the [`StoreIo`] seam (no real crashes
//! needed: the faulting io produces the exact byte states a crash would).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ustr_chaos::{Fault, FaultIo, FaultPlan};
use ustr_live::{LiveConfig, LiveService};
use ustr_store::{
    read_wal, read_wal_with, replace_wal_file_with, wal::WalOp, wal::WalRecord, RealIo, StoreFile,
    StoreIo, WalWriter,
};
use ustr_uncertain::UncertainString;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ustr_chaos_walfaults_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn records(n: u64) -> Vec<WalRecord> {
    (0..n)
        .map(|i| WalRecord {
            seq: i + 1,
            op: WalOp::Insert {
                doc: i,
                body: UncertainString::parse("A:.6,B:.4 | B | C").unwrap(),
            },
        })
        .collect()
}

/// `WalWriter::create_with` performs fsync #0 (header) and #1 (parent
/// directory); append `i` is fsync `#2 + i`.
const APPEND_FSYNC_BASE: u64 = 2;

#[test]
fn fsync_failure_at_every_record_boundary_recovers_the_committed_prefix() {
    let dir = scratch("fsync_boundaries");
    let recs = records(6);
    for boundary in 0..recs.len() {
        let io = FaultIo::new(FaultPlan {
            seed: boundary as u64,
            fault: Fault::FailFsync {
                nth: APPEND_FSYNC_BASE + boundary as u64,
            },
        });
        let path = dir.join(format!("boundary_{boundary}.wal"));
        let mut wal = WalWriter::create_with(&io, &path).unwrap();
        for (i, rec) in recs.iter().enumerate() {
            let result = wal.append(rec);
            if i == boundary {
                result.expect_err("the injected fsync failure must surface");
                break;
            }
            result.unwrap_or_else(|e| panic!("append {i} before the boundary failed: {e}"));
        }
        drop(wal);

        // Recovery on the real filesystem: exactly the acknowledged prefix,
        // and *clean* — the failed append rolled the torn frame back.
        let replay = read_wal(&path).unwrap();
        assert!(
            replay.clean,
            "boundary {boundary}: rollback should leave no torn tail"
        );
        assert_eq!(
            replay.records,
            recs[..boundary],
            "boundary {boundary}: recovered records must be the acknowledged prefix"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_append_rolls_back_and_the_writer_stays_usable() {
    let dir = scratch("retry");
    let recs = records(4);
    let io = FaultIo::new(FaultPlan {
        seed: 0,
        fault: Fault::FailFsync {
            nth: APPEND_FSYNC_BASE + 1, // fail the second append
        },
    });
    let path = dir.join("retry.wal");
    let mut wal = WalWriter::create_with(&io, &path).unwrap();
    wal.append(&recs[0]).unwrap();
    wal.append(&recs[1]).expect_err("injected failure");
    // The fault is one-shot (transient): re-issuing the same record must
    // succeed and the log must read back as if nothing happened.
    for rec in &recs[1..] {
        wal.append(rec).unwrap();
    }
    drop(wal);
    let replay = read_wal(&path).unwrap();
    assert!(replay.clean);
    assert_eq!(replay.records, recs);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_append_write_is_truncated_to_the_record_boundary() {
    let dir = scratch("torn");
    let recs = records(3);
    for keep_permille in [0, 250, 500, 999] {
        let io = FaultIo::new(FaultPlan {
            seed: keep_permille,
            fault: Fault::TearWrite {
                // Write #0 is the header; append i is write #1 + i. Tear
                // the second append mid-frame.
                nth: 2,
                keep_permille,
            },
        });
        let path = dir.join(format!("torn_{keep_permille}.wal"));
        let mut wal = WalWriter::create_with(&io, &path).unwrap();
        wal.append(&recs[0]).unwrap();
        wal.append(&recs[1]).expect_err("torn write must surface");
        wal.append(&recs[2]).unwrap();
        drop(wal);
        let replay = read_wal(&path).unwrap();
        assert!(replay.clean, "keep_permille {keep_permille}");
        assert_eq!(
            replay.records,
            vec![recs[0].clone(), recs[2].clone()],
            "keep_permille {keep_permille}: the torn frame must be rolled back"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fails, exactly once after being armed, the directory fsync that follows
/// a rename onto `wal.log` — the final step of `replace_wal_file`, after
/// the new file is already in place. The failing call first raises
/// `reached` and then parks until `proceed`, so the test can line up a
/// racing insert while the seal still holds the state lock.
#[derive(Debug)]
struct FailWalReplaceDirSync {
    inner: RealIo,
    armed: AtomicBool,
    wal_renamed: AtomicBool,
    fired: AtomicBool,
    reached: AtomicBool,
    proceed: AtomicBool,
}

impl FailWalReplaceDirSync {
    fn new() -> Self {
        Self {
            inner: RealIo,
            armed: AtomicBool::new(false),
            wal_renamed: AtomicBool::new(false),
            fired: AtomicBool::new(false),
            reached: AtomicBool::new(false),
            proceed: AtomicBool::new(false),
        }
    }
}

impl StoreIo for FailWalReplaceDirSync {
    fn create(&self, path: &std::path::Path) -> std::io::Result<Box<dyn StoreFile>> {
        self.inner.create(path)
    }

    fn open_append(&self, path: &std::path::Path) -> std::io::Result<(Box<dyn StoreFile>, u64)> {
        self.inner.open_append(path)
    }

    fn read(&self, path: &std::path::Path) -> std::io::Result<Option<Vec<u8>>> {
        self.inner.read(path)
    }

    fn rename(&self, from: &std::path::Path, to: &std::path::Path) -> std::io::Result<()> {
        self.inner.rename(from, to)?;
        // ordering: Relaxed — test-only flags; the single background seal
        // thread is the only concurrent actor.
        if self.armed.load(Ordering::Relaxed) && to.file_name().is_some_and(|f| f == "wal.log") {
            // ordering: Relaxed — same test-only flag.
            self.wal_renamed.store(true, Ordering::Relaxed);
        }
        Ok(())
    }

    fn remove_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.inner.remove_file(path)
    }

    fn sync_dir(&self, dir: &std::path::Path) -> std::io::Result<()> {
        // ordering: Relaxed — test-only one-shot flags.
        if self.wal_renamed.swap(false, Ordering::Relaxed)
            && !self.fired.swap(true, Ordering::Relaxed)
        {
            // ordering: Relaxed — test rendezvous flags; the sleep loop
            // tolerates any staleness.
            self.reached.store(true, Ordering::Relaxed);
            while !self.proceed.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            return Err(std::io::Error::other(
                "injected: directory fsync after the wal replace rename",
            ));
        }
        self.inner.sync_dir(dir)
    }
}

/// The bug this pins (found by the seed sweep): when `replace_wal_file`
/// fails *after* its rename — on the directory fsync — the new WAL is
/// already at `wal.log`, but the live service's writer still held the
/// old, now-unlinked inode. An insert that passed its background check
/// before the seal failure was recorded then appended (and was
/// acknowledged) into a file nothing would ever read, and recovery
/// silently lost it.
#[test]
fn acknowledged_writes_survive_a_post_rename_fsync_failure_in_the_wal_replace() {
    let base = scratch("replace_dir_fsync");
    let dir = base.join("db");
    let io = Arc::new(FailWalReplaceDirSync::new());
    let cfg = LiveConfig {
        threads: 1,
        cache_capacity: 8,
        tau_min: 0.05,
        epsilon: None,
        seal_threshold: 0,       // manual seals only
        compact_min_segments: 0, // no auto compaction
    };
    let live = Arc::new(
        LiveService::open_with_io(&dir, cfg.clone(), Arc::clone(&io) as Arc<dyn StoreIo>).unwrap(),
    );
    let body = UncertainString::parse("A:.6,B:.4 | B | C").unwrap();
    let mut acked = Vec::new();
    for _ in 0..3 {
        acked.push(live.insert(body.clone()).unwrap());
    }
    // ordering: Relaxed — arming the one-shot test fault.
    io.armed.store(true, Ordering::Relaxed);
    live.seal().unwrap();

    // Wait for the seal to reach the failing fsync (it holds the state
    // lock there), then race an insert against the failure: the insert
    // passes its background check now — the failure is not recorded yet —
    // and parks on the state lock the seal still holds.
    // ordering: Relaxed — test rendezvous flag.
    while !io.reached.load(Ordering::Relaxed) {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let racer = {
        let live = Arc::clone(&live);
        let body = body.clone();
        std::thread::spawn(move || live.insert(body))
    };
    std::thread::sleep(std::time::Duration::from_millis(100));
    // ordering: Relaxed — releases the parked fsync, which now fails.
    io.proceed.store(true, Ordering::Relaxed);

    // The racing insert is acknowledged, so it must be on the file
    // recovery will read.
    acked.push(racer.join().unwrap().unwrap());
    let _ = live.wait_idle();
    assert!(
        live.background_health().is_some(),
        "the failed seal must report degraded background health"
    );
    drop(live);

    let recovered = LiveService::open(&dir, cfg).unwrap();
    assert_eq!(
        recovered.live_doc_ids(),
        acked,
        "every acknowledged insert must survive recovery"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn failed_rename_leaves_the_original_wal_intact() {
    let dir = scratch("rename");
    let recs = records(5);
    let path = dir.join("log.wal");
    let mut wal = WalWriter::create_with(&RealIo, &path).unwrap();
    for rec in &recs {
        wal.append(rec).unwrap();
    }
    drop(wal);

    let io = FaultIo::new(FaultPlan {
        seed: 0,
        fault: Fault::FailRename { nth: 0 },
    });
    replace_wal_file_with(&io, &path, &recs[3..]).expect_err("injected rename failure");
    // The replacement never became visible: the original log still replays.
    let replay = read_wal_with(&RealIo, &path).unwrap();
    assert!(replay.clean);
    assert_eq!(replay.records, recs);
    let _ = std::fs::remove_dir_all(&dir);
}
