//! A small tier-1 slice of the torture sweep (CI's `chaos` job runs the
//! full 64-seed sweep via the `chaos-torture` binary).

use ustr_chaos::{torture_seed_guarded, Outcome};

#[test]
fn torture_sweep_small() {
    let base = std::env::temp_dir().join("ustr_chaos_torture_tier1");
    std::fs::create_dir_all(&base).unwrap();
    let mut fired = 0;
    for seed in 0..12 {
        let report = torture_seed_guarded(seed, &base);
        match &report.outcome {
            Ok(Outcome::FaultNeverFired) => {}
            Ok(_) => fired += 1,
            Err(v) => panic!("seed {seed} ({}): {v}", report.fault),
        }
    }
    assert!(fired > 0, "no seed in the slice ever fired its fault");
}
