//! Deterministic fault injection for the persistence and serving layers.
//!
//! A scatter-gather serving system is only as trustworthy as its behavior
//! when a disk write tears, an fsync fails, or a rename errors. This crate
//! supplies the machinery to *prove* that behavior instead of hoping:
//!
//! - [`FaultPlan`]: a pure-integer, FNV-seeded schedule of exactly one
//!   injected fault — fail the Nth fsync, tear the Nth write at a
//!   seed-chosen byte fraction, or error the Nth rename. No clocks, no
//!   RNG (INVARIANTS §7): the same seed always produces the same plan,
//!   so every CI failure is replayable by seed number alone.
//! - [`FaultIo`]: a [`StoreIo`] implementation wrapping the real
//!   filesystem that executes the plan once and then passes everything
//!   through — modeling a transient fault plus the recovery that follows.
//! - [`torture_seed`]: the harness. It drives a [`LiveService`] through a
//!   seed-derived workload of inserts, deletes, seals, and compactions
//!   under the plan, tracking exactly which operations were
//!   *acknowledged*, then reopens the directory with the real filesystem
//!   and asserts the recovered collection is **identical** — same
//!   documents, same stable ids, byte-identical answers across every
//!   query mode — to a clean rebuild from the acknowledged operations.
//!   Any divergence, panic, or silent drop is a reported violation; a
//!   clean typed error is the only acceptable alternative to full
//!   recovery (the no-silent-corruption rule, INVARIANTS §9).
//!
//! The `chaos-torture` binary sweeps seeds and emits a JSON report; CI
//! runs it on every push.

#![forbid(unsafe_code)]

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ustr_live::{LiveConfig, LiveService};
use ustr_service::{lock_clean, QueryRequest};
use ustr_store::{RealIo, StoreFile, StoreIo};
use ustr_uncertain::UncertainString;

/// FNV-1a 64 over the little-endian bytes of `seed` then `salt`: the one
/// integer-mixing primitive every plan decision derives from.
fn fnv_mix(seed: u64, salt: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in seed.to_le_bytes().into_iter().chain(salt.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// One injectable fault. `nth` counts operations of that kind from zero
/// across the whole [`FaultIo`] lifetime (all files together).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The `nth` fsync (file `sync_data` or directory `sync_all`) fails.
    FailFsync {
        /// Zero-based fsync index at which to fail.
        nth: u64,
    },
    /// The `nth` file write is torn: only the first
    /// `len * keep_permille / 1000` bytes reach the file, then the write
    /// reports an error.
    TearWrite {
        /// Zero-based write index at which to tear.
        nth: u64,
        /// How much of the torn write survives, in thousandths.
        keep_permille: u64,
    },
    /// The `nth` rename fails (the atomic-replace primitive).
    FailRename {
        /// Zero-based rename index at which to fail.
        nth: u64,
    },
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::FailFsync { nth } => write!(f, "fail-fsync nth={nth}"),
            Fault::TearWrite { nth, keep_permille } => {
                write!(f, "tear-write nth={nth} keep_permille={keep_permille}")
            }
            Fault::FailRename { nth } => write!(f, "fail-rename nth={nth}"),
        }
    }
}

/// A seed-derived schedule of exactly one fault. Pure integer FNV mixing:
/// no clocks, no RNG, fully replayable from the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was derived from.
    pub seed: u64,
    /// The single fault to inject.
    pub fault: Fault,
}

impl FaultPlan {
    /// Derives the plan for `seed`. The modulus bounds are sized so the
    /// fault usually lands inside a [`torture_seed`] run (which performs
    /// a few dozen fsyncs/writes and a handful of renames); plans whose
    /// index is never reached simply report the fault as unfired.
    pub fn from_seed(seed: u64) -> Self {
        let fault = match fnv_mix(seed, 0xFA01) % 3 {
            0 => Fault::FailFsync {
                nth: fnv_mix(seed, 0xFA02) % 48,
            },
            1 => Fault::TearWrite {
                nth: fnv_mix(seed, 0xFA03) % 64,
                keep_permille: fnv_mix(seed, 0xFA04) % 1000,
            },
            _ => Fault::FailRename {
                nth: fnv_mix(seed, 0xFA05) % 6,
            },
        };
        Self { seed, fault }
    }
}

/// State shared between a [`FaultIo`] and every file handle it opened.
#[derive(Debug)]
struct FaultShared {
    fault: Fault,
    fsyncs: AtomicU64,
    writes: AtomicU64,
    renames: AtomicU64,
    fired: AtomicBool,
    note: Mutex<Option<String>>,
}

impl FaultShared {
    /// Claims the fault exactly once. Returns `true` only for the single
    /// call that fires it.
    fn fire(&self, what: &str, n: u64) -> bool {
        // ordering: Relaxed — single-shot flag; the injected io::Error itself
        // synchronizes the outcome with the caller, no cross-variable
        // ordering is needed.
        if self.fired.swap(true, Ordering::Relaxed) {
            return false;
        }
        let mut note = lock_clean(&self.note);
        *note = Some(format!("{what} #{n}"));
        true
    }

    fn injected(&self, what: &str) -> io::Error {
        io::Error::other(format!("injected fault: {what}"))
    }

    fn on_fsync(&self) -> io::Result<()> {
        // ordering: Relaxed — a monotone tally; no other memory depends on it.
        let n = self.fsyncs.fetch_add(1, Ordering::Relaxed);
        if let Fault::FailFsync { nth } = self.fault {
            if n == nth && self.fire("failed fsync", n) {
                return Err(self.injected("fsync failed"));
            }
        }
        Ok(())
    }

    fn on_rename(&self) -> io::Result<()> {
        // ordering: Relaxed — a monotone tally; no other memory depends on it.
        let n = self.renames.fetch_add(1, Ordering::Relaxed);
        if let Fault::FailRename { nth } = self.fault {
            if n == nth && self.fire("failed rename", n) {
                return Err(self.injected("rename failed"));
            }
        }
        Ok(())
    }
}

/// A [`StoreIo`] that executes one [`FaultPlan`] against the real
/// filesystem, then passes everything through untouched. Share it between
/// the service under test and the assertion code via [`Arc`]; after the
/// run, [`FaultIo::injection`] reports what fired (if anything).
#[derive(Debug)]
pub struct FaultIo {
    inner: RealIo,
    shared: Arc<FaultShared>,
}

impl FaultIo {
    /// A faulting io executing `plan` over the real filesystem.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            inner: RealIo,
            shared: Arc::new(FaultShared {
                fault: plan.fault,
                fsyncs: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                renames: AtomicU64::new(0),
                fired: AtomicBool::new(false),
                note: Mutex::new(None),
            }),
        }
    }

    /// Description of the fault that fired, or `None` while (or if) the
    /// plan's operation index was never reached.
    pub fn injection(&self) -> Option<String> {
        lock_clean(&self.shared.note).clone()
    }
}

/// A file handle that tears writes and fails fsyncs per the shared plan.
#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn StoreFile>,
    shared: Arc<FaultShared>,
}

impl io::Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        // ordering: Relaxed — a monotone tally; no other memory depends on it.
        let n = self.shared.writes.fetch_add(1, Ordering::Relaxed);
        if let Fault::TearWrite { nth, keep_permille } = self.shared.fault {
            if n == nth && self.shared.fire("torn write", n) {
                // Land a genuine partial write in the file, then error:
                // exactly what a crash mid-write leaves behind.
                let keep = (buf.len() as u64).saturating_mul(keep_permille) / 1000;
                let keep = keep as usize;
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                }
                return Err(self.shared.injected("write torn"));
            }
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl StoreFile for FaultFile {
    fn sync_data(&mut self) -> io::Result<()> {
        self.shared.on_fsync()?;
        self.inner.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }
}

impl StoreIo for FaultIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StoreFile>> {
        let inner = self.inner.create(path)?;
        Ok(Box::new(FaultFile {
            inner,
            shared: Arc::clone(&self.shared),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<(Box<dyn StoreFile>, u64)> {
        let (inner, len) = self.inner.open_append(path)?;
        Ok((
            Box::new(FaultFile {
                inner,
                shared: Arc::clone(&self.shared),
            }),
            len,
        ))
    }

    fn read(&self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        self.inner.read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.shared.on_rename()?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.shared.on_fsync()?;
        self.inner.sync_dir(dir)
    }
}

// ---------------------------------------------------------------------------
// Torture harness
// ---------------------------------------------------------------------------

/// Document pool the workload draws from (small enough that seals are
/// fast, varied enough that every query mode has hits to disagree about).
const SPECS: &[&str] = &[
    "A:.9,B:.1 | B | C | A | B",
    "C | C | C",
    "A:.5,B:.5 | B | A:.7,C:.3 | B",
    "B | A:.2,B:.8 | B",
    "A | B | A:.6,C:.4 | C",
    "B:.7,C:.3 | A | B | A:.4,B:.6",
];

/// Operations per torture run.
const NUM_OPS: u64 = 28;

/// The query battery answers are compared over: every mode, mixed taus.
fn battery() -> Vec<QueryRequest> {
    vec![
        QueryRequest::Threshold {
            pattern: b"AB".to_vec(),
            tau: 0.3,
        },
        QueryRequest::Threshold {
            pattern: b"B".to_vec(),
            tau: 0.5,
        },
        QueryRequest::TopK {
            pattern: b"AB".to_vec(),
            k: 4,
        },
        QueryRequest::Listing {
            pattern: b"B".to_vec(),
            tau: 0.4,
        },
        QueryRequest::Approx {
            pattern: b"AB".to_vec(),
            tau: 0.3,
        },
    ]
}

fn torture_config() -> LiveConfig {
    LiveConfig {
        threads: 2,
        cache_capacity: 8,
        tau_min: 0.05,
        epsilon: None,
        seal_threshold: 3,
        compact_min_segments: 2,
    }
}

/// How one torture run ended (absent a violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The plan's operation index was never reached; the run doubled as a
    /// fault-free equivalence check.
    FaultNeverFired,
    /// The fault fired and the recovered collection matched the clean
    /// rebuild exactly.
    RecoveredIdentical {
        /// Which fault fired, with its operation index.
        injected: String,
    },
    /// The fault fired and reopening the directory surfaced a clean typed
    /// error (acceptable: never silent corruption).
    CleanError {
        /// Which fault fired, with its operation index.
        injected: String,
        /// The typed error the reopen surfaced.
        error: String,
    },
}

/// The result of one torture run.
#[derive(Debug, Clone)]
pub struct SeedReport {
    /// Seed the run was derived from.
    pub seed: u64,
    /// The plan that was injected.
    pub fault: Fault,
    /// Acknowledged inserts.
    pub acked_inserts: u64,
    /// Acknowledged deletes.
    pub acked_deletes: u64,
    /// Operations that returned an error during the run (expected under
    /// injection; every one must NOT have been applied).
    pub rejected_ops: u64,
    /// How the run ended, or `Err(description)` on a violation.
    pub outcome: Result<Outcome, String>,
}

impl SeedReport {
    fn violation(seed: u64, fault: Fault, detail: String) -> Self {
        Self {
            seed,
            fault,
            acked_inserts: 0,
            acked_deletes: 0,
            rejected_ops: 0,
            outcome: Err(detail),
        }
    }
}

/// Replays the acknowledged operations against a fresh directory on the
/// real filesystem: the ground-truth collection the recovered one must
/// match. Ids must come out identical because the service only consumes
/// an id/seq on a successful (acknowledged) append.
fn clean_rebuild(
    dir: &Path,
    inserts: &[(u64, UncertainString)],
    deletes: &[u64],
) -> Result<LiveService, String> {
    let cfg = LiveConfig {
        seal_threshold: 0,
        compact_min_segments: 0,
        ..torture_config()
    };
    let live = LiveService::open(dir, cfg).map_err(|e| format!("rebuild open failed: {e}"))?;
    for (want_id, body) in inserts {
        let got = live
            .insert(body.clone())
            .map_err(|e| format!("rebuild insert failed: {e}"))?;
        if got != *want_id {
            return Err(format!(
                "rebuild assigned id {got} where the torture run acknowledged {want_id}"
            ));
        }
    }
    for id in deletes {
        live.delete(*id)
            .map_err(|e| format!("rebuild delete of {id} failed: {e}"))?;
    }
    Ok(live)
}

/// Compares the recovered service against the clean rebuild: identical
/// live documents (ids and bodies) and byte-identical answers over the
/// whole query battery.
fn assert_equivalent(recovered: &LiveService, rebuilt: &LiveService) -> Result<(), String> {
    let got_docs = recovered.live_docs();
    let want_docs = rebuilt.live_docs();
    if got_docs != want_docs {
        let got_ids: Vec<u64> = got_docs.iter().map(|(id, _)| *id).collect();
        let want_ids: Vec<u64> = want_docs.iter().map(|(id, _)| *id).collect();
        return Err(format!(
            "recovered documents diverge from clean rebuild: got ids {got_ids:?}, want {want_ids:?}"
        ));
    }
    let requests = battery();
    let got = recovered.query_requests(&requests);
    let want = rebuilt.query_requests(&requests);
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        match (g, w) {
            (Ok(g), Ok(w)) => {
                if g != w {
                    return Err(format!(
                        "request {i}: recovered answer diverges from rebuild"
                    ));
                }
            }
            (g, w) => {
                return Err(format!(
                    "request {i}: unexpected error (recovered: {:?}, rebuild: {:?})",
                    g.as_ref().err(),
                    w.as_ref().err()
                ))
            }
        }
    }
    Ok(())
}

/// Runs one torture iteration under `base_dir` (two scratch
/// subdirectories are created and removed; on a violation they are left
/// behind for inspection). Deterministic end to end: the workload, the
/// fault, and the assertions all derive from `seed`.
pub fn torture_seed(seed: u64, base_dir: &Path) -> SeedReport {
    let plan = FaultPlan::from_seed(seed);
    let dir = base_dir.join(format!("seed_{seed}"));
    let rebuild_dir = base_dir.join(format!("seed_{seed}_rebuild"));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&rebuild_dir);

    let io = Arc::new(FaultIo::new(plan));
    let mut inserts: Vec<(u64, UncertainString)> = Vec::new();
    let mut deletes: Vec<u64> = Vec::new();
    let mut rejected = 0u64;

    // Phase 1: drive the service under injection. The service may refuse
    // operations (that is the point); it must never lie about one.
    let opened =
        LiveService::open_with_io(&dir, torture_config(), Arc::clone(&io) as Arc<dyn StoreIo>);
    match opened {
        Err(e) => {
            // The fault fired before the directory finished opening. The
            // directory must still recover (empty) on the real filesystem.
            let injected = io.injection().unwrap_or_else(|| "none".into());
            return match LiveService::open(&dir, torture_config()) {
                Ok(recovered) => {
                    let outcome = if recovered.live_docs().is_empty() {
                        Ok(Outcome::CleanError {
                            injected,
                            error: format!("open failed: {e}"),
                        })
                    } else {
                        Err("an empty directory recovered documents from nowhere".into())
                    };
                    drop(recovered);
                    let _ = std::fs::remove_dir_all(&dir);
                    SeedReport {
                        seed,
                        fault: plan.fault,
                        acked_inserts: 0,
                        acked_deletes: 0,
                        rejected_ops: 1,
                        outcome,
                    }
                }
                Err(reopen) => SeedReport::violation(
                    seed,
                    plan.fault,
                    format!("fresh directory unreopenable after faulted open: {reopen}"),
                ),
            };
        }
        Ok(live) => {
            for i in 0..NUM_OPS {
                let r = fnv_mix(seed, 0xB000 + i);
                match r % 8 {
                    0..=4 => {
                        let spec = SPECS[(r >> 8) as usize % SPECS.len()];
                        let body = match UncertainString::parse(spec) {
                            Ok(b) => b,
                            Err(e) => {
                                return SeedReport::violation(
                                    seed,
                                    plan.fault,
                                    format!("workload spec failed to parse: {e}"),
                                )
                            }
                        };
                        let expect_id = inserts.last().map(|(id, _)| id + 1).unwrap_or_else(|| {
                            inserts.len() as u64 // empty: next id is 0
                        });
                        match live.insert(body.clone()) {
                            Ok(id) => {
                                if id != expect_id {
                                    return SeedReport::violation(
                                        seed,
                                        plan.fault,
                                        format!(
                                            "insert acknowledged id {id}, expected {expect_id} \
                                             (a failed insert must not consume an id)"
                                        ),
                                    );
                                }
                                inserts.push((id, body));
                            }
                            Err(_) => rejected += 1,
                        }
                    }
                    5 => {
                        let deleted: std::collections::BTreeSet<u64> =
                            deletes.iter().copied().collect();
                        let alive: Vec<u64> = inserts
                            .iter()
                            .map(|(id, _)| *id)
                            .filter(|id| !deleted.contains(id))
                            .collect();
                        if alive.is_empty() {
                            continue;
                        }
                        let victim = alive[(r >> 8) as usize % alive.len()];
                        match live.delete(victim) {
                            Ok(()) => deletes.push(victim),
                            Err(_) => rejected += 1,
                        }
                    }
                    6 => {
                        if live.seal().is_err() {
                            rejected += 1;
                        }
                    }
                    _ => {
                        if live.compact().is_err() {
                            rejected += 1;
                        }
                    }
                }
            }
            // Drain background work; a background failure is an expected
            // consequence of injection, not a violation.
            let _ = live.wait_idle();
            drop(live);
        }
    }

    // Phase 2: recover on the real filesystem and compare against a clean
    // rebuild of the acknowledged history.
    let injected = io.injection();
    let outcome = match LiveService::open(&dir, torture_config()) {
        Err(e) => match injected.clone() {
            Some(injected) => Ok(Outcome::CleanError {
                injected,
                error: e.to_string(),
            }),
            None => Err(format!("reopen failed without any injected fault: {e}")),
        },
        Ok(recovered) => {
            let result = clean_rebuild(&rebuild_dir, &inserts, &deletes)
                .and_then(|rebuilt| {
                    let r = assert_equivalent(&recovered, &rebuilt);
                    drop(rebuilt);
                    r
                })
                .map(|()| match injected.clone() {
                    Some(injected) => Outcome::RecoveredIdentical { injected },
                    None => Outcome::FaultNeverFired,
                });
            drop(recovered);
            result
        }
    };
    if outcome.is_ok() {
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&rebuild_dir);
    }
    SeedReport {
        seed,
        fault: plan.fault,
        acked_inserts: inserts.len() as u64,
        acked_deletes: deletes.len() as u64,
        rejected_ops: rejected,
        outcome,
    }
}

/// [`torture_seed`] with a panic guard: a panic anywhere in the run is
/// reported as a violation (the no-panic half of the no-silent-corruption
/// rule) instead of tearing down the sweep.
pub fn torture_seed_guarded(seed: u64, base_dir: &Path) -> SeedReport {
    let base: PathBuf = base_dir.to_path_buf();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        torture_seed(seed, &base)
    })) {
        Ok(report) => report,
        Err(payload) => {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            SeedReport::violation(
                seed,
                FaultPlan::from_seed(seed).fault,
                format!("panicked: {detail}"),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_cover_every_fault_kind() {
        let mut fsyncs = 0;
        let mut tears = 0;
        let mut renames = 0;
        for seed in 0..64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b, "seed {seed}: plan must be a pure function");
            match a.fault {
                Fault::FailFsync { .. } => fsyncs += 1,
                Fault::TearWrite { .. } => tears += 1,
                Fault::FailRename { .. } => renames += 1,
            }
        }
        assert!(
            fsyncs > 0 && tears > 0 && renames > 0,
            "{fsyncs}/{tears}/{renames}"
        );
    }

    #[test]
    fn fault_io_fires_exactly_once() {
        let dir = std::env::temp_dir().join("ustr_chaos_once");
        std::fs::create_dir_all(&dir).unwrap();
        let io = FaultIo::new(FaultPlan {
            seed: 0,
            fault: Fault::FailFsync { nth: 1 },
        });
        let path = dir.join("f.bin");
        let mut f = io.create(&path).unwrap();
        use std::io::Write as _;
        f.write_all(b"x").unwrap();
        f.sync_data().unwrap(); // fsync #0: passes
        assert!(io.injection().is_none());
        assert!(f.sync_data().is_err(), "fsync #1 must fail");
        assert!(io.injection().unwrap().contains("fsync"));
        f.sync_data().unwrap(); // one-shot: later fsyncs pass
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_writes_leave_a_partial_prefix() {
        let dir = std::env::temp_dir().join("ustr_chaos_tear");
        std::fs::create_dir_all(&dir).unwrap();
        let io = FaultIo::new(FaultPlan {
            seed: 0,
            fault: Fault::TearWrite {
                nth: 0,
                keep_permille: 500,
            },
        });
        let path = dir.join("torn.bin");
        let mut f = io.create(&path).unwrap();
        use std::io::Write as _;
        assert!(f.write_all(b"0123456789").is_err());
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"01234");
        let _ = std::fs::remove_file(&path);
    }
}
