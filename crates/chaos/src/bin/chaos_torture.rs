//! Seed-sweep driver for the chaos torture harness.
//!
//! Runs [`ustr_chaos::torture_seed_guarded`] over a contiguous seed range
//! and writes a JSON report. Exits nonzero if any seed produced a
//! violation — silent divergence, a phantom document, or a panic.
//!
//! ```text
//! chaos-torture [--seeds N] [--start S] [--dir BASE] [--out REPORT.json]
//! ```

#![forbid(unsafe_code)]

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use ustr_chaos::{torture_seed_guarded, Outcome, SeedReport};

struct Args {
    seeds: u64,
    start: u64,
    dir: PathBuf,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 64,
        start: 0,
        dir: std::env::temp_dir().join("ustr_chaos_torture"),
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--start" => {
                args.start = value("--start")?
                    .parse()
                    .map_err(|e| format!("--start: {e}"))?
            }
            "--dir" => args.dir = PathBuf::from(value("--dir")?),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--help" | "-h" => {
                return Err(
                    "usage: chaos-torture [--seeds N] [--start S] [--dir BASE] [--out REPORT.json]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn report_json(r: &SeedReport) -> String {
    let (outcome, detail) = match &r.outcome {
        Ok(Outcome::FaultNeverFired) => ("fault-never-fired", String::new()),
        Ok(Outcome::RecoveredIdentical { injected }) => ("recovered-identical", injected.clone()),
        Ok(Outcome::CleanError { injected, error }) => {
            ("clean-error", format!("{injected}: {error}"))
        }
        Err(v) => ("VIOLATION", v.clone()),
    };
    format!(
        "{{\"seed\":{},\"fault\":\"{}\",\"acked_inserts\":{},\"acked_deletes\":{},\
         \"rejected_ops\":{},\"outcome\":\"{}\",\"detail\":\"{}\"}}",
        r.seed,
        json_escape(&r.fault.to_string()),
        r.acked_inserts,
        r.acked_deletes,
        r.rejected_ops,
        outcome,
        json_escape(&detail),
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&args.dir) {
        eprintln!("cannot create {}: {e}", args.dir.display());
        return ExitCode::FAILURE;
    }

    let mut reports = Vec::with_capacity(args.seeds as usize);
    let mut counts = [0u64; 4]; // never-fired, recovered, clean-error, violation
    for seed in args.start..args.start + args.seeds {
        let report = torture_seed_guarded(seed, &args.dir);
        let idx = match &report.outcome {
            Ok(Outcome::FaultNeverFired) => 0,
            Ok(Outcome::RecoveredIdentical { .. }) => 1,
            Ok(Outcome::CleanError { .. }) => 2,
            Err(detail) => {
                eprintln!("seed {seed}: VIOLATION: {detail}");
                3
            }
        };
        counts[idx] += 1;
        reports.push(report);
    }

    let body: Vec<String> = reports.iter().map(report_json).collect();
    let json = format!(
        "{{\"start\":{},\"seeds\":{},\"fault_never_fired\":{},\"recovered_identical\":{},\
         \"clean_error\":{},\"violations\":{},\"results\":[\n{}\n]}}\n",
        args.start,
        args.seeds,
        counts[0],
        counts[1],
        counts[2],
        counts[3],
        body.join(",\n"),
    );
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    } else {
        let _ = std::io::stdout().write_all(json.as_bytes());
    }
    eprintln!(
        "chaos-torture: {} seeds ({}..{}): {} never fired, {} recovered identical, \
         {} clean errors, {} violations",
        args.seeds,
        args.start,
        args.start + args.seeds,
        counts[0],
        counts[1],
        counts[2],
        counts[3],
    );
    if counts[3] == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
