//! Online matching over uncertain event streams.
//!
//! Section 2 of the paper motivates uncertain strings with *streams*: ECG
//! beat annotations arriving from a Holter monitor, RFID events from a
//! security system. The offline indexes require the whole string up front;
//! this crate provides the streaming counterpart:
//!
//! * [`StreamMatcher`] — push one uncertain character at a time and receive
//!   an alert whenever the pattern's occurrence probability at the window
//!   ending there reaches the threshold. Per-event cost is O(active
//!   alignments) ≤ O(m), with aggressive pruning: an alignment dies the
//!   moment its running product drops below τ.
//! * [`ContainmentTracker`] — exact probability that the pattern has
//!   occurred *at least once* in the stream so far (the KMP-automaton DP of
//!   Li et al., made incremental).
//!
//! Both are deterministic replays of their offline counterparts: the test
//! suite checks every prefix of random streams against [`NaiveScanner`] and
//! the exhaustive containment DP.
//!
//! [`NaiveScanner`]: ustr_baseline::NaiveScanner

#![forbid(unsafe_code)]

use ustr_baseline::{kmp_delta, prefix_function};
use ustr_uncertain::{ModelError, UncertainChar};

/// An occurrence alert: the pattern matched the window ending at the event
/// just pushed.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Start position of the occurrence (0-based event index).
    pub start: usize,
    /// Occurrence probability (product over the window).
    pub probability: f64,
}

/// Sliding-window threshold matcher over an uncertain event stream.
///
/// ```
/// use ustr_stream::StreamMatcher;
/// use ustr_uncertain::UncertainChar;
///
/// let mut m = StreamMatcher::new(b"NA".to_vec(), 0.5).unwrap();
/// assert_eq!(m.push(&UncertainChar::deterministic(b'N')), None);
/// let alert = m
///     .push(&UncertainChar::new(vec![(b'A', 0.8), (b'V', 0.2)], 1).unwrap())
///     .unwrap();
/// assert_eq!(alert.start, 0);
/// assert!((alert.probability - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct StreamMatcher {
    pattern: Vec<u8>,
    tau: f64,
    log_tau: f64,
    /// Ring buffer of live alignments: `live[k]` = running log-probability
    /// of the alignment that needs `pattern[k..]` matched next (taken modulo
    /// ring rotation). `f64::NEG_INFINITY` marks dead alignments.
    live: Vec<f64>,
    /// Ring head: index in `live` of the alignment expecting `pattern[m-1]`
    /// at the *current* event.
    head: usize,
    /// Number of events consumed so far.
    position: usize,
}

impl StreamMatcher {
    /// Creates a matcher for `pattern` with threshold `tau ∈ (0, 1]`.
    pub fn new(pattern: Vec<u8>, tau: f64) -> Result<Self, ModelError> {
        if pattern.is_empty() {
            return Err(ModelError::EmptyPattern);
        }
        if !(tau > 0.0 && tau <= 1.0) {
            return Err(ModelError::InvalidThreshold { value: tau });
        }
        let m = pattern.len();
        Ok(Self {
            pattern,
            tau,
            log_tau: tau.ln(),
            live: vec![f64::NEG_INFINITY; m],
            head: 0,
            position: 0,
        })
    }

    /// The pattern being matched.
    pub fn pattern(&self) -> &[u8] {
        &self.pattern
    }

    /// The alert threshold.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Number of events consumed.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Number of alignments currently above the threshold (diagnostics; at
    /// most `pattern.len()`).
    pub fn live_alignments(&self) -> usize {
        self.live.iter().filter(|p| p.is_finite()).count()
    }

    /// Consumes one uncertain event. Returns an alert when the pattern's
    /// occurrence probability over the window ending at this event is
    /// ≥ τ (at most one occurrence can end per event).
    pub fn push(&mut self, event: &UncertainChar) -> Option<Alert> {
        let m = self.pattern.len();
        let mut alert = None;
        // Ring layout: slot (head + k) % m holds the alignment that expects
        // pattern[m-1-k] at this event. Each alignment advances one step
        // toward completion (slot k → slot k-1); the k = m-1 slot is always
        // the alignment *starting* at this event (running probability 1).
        // Every destination slot is written unconditionally — dead
        // alignments propagate −∞ rather than leaving stale state behind.
        for k in 0..m {
            let slot = (self.head + k) % m;
            let lp = if k == m - 1 { 0.0 } else { self.live[slot] };
            let next = if lp == f64::NEG_INFINITY {
                f64::NEG_INFINITY
            } else {
                let needed = self.pattern[m - 1 - k];
                let p = event.prob_of(needed);
                let cand = if p > 0.0 {
                    lp + p.ln()
                } else {
                    f64::NEG_INFINITY
                };
                // Prune below τ: probabilities only shrink with more events.
                if cand >= self.log_tau - ustr_uncertain::PROB_EPS {
                    cand
                } else {
                    f64::NEG_INFINITY
                }
            };
            if k == 0 {
                if next > f64::NEG_INFINITY && self.position + 1 >= m {
                    alert = Some(Alert {
                        start: self.position + 1 - m,
                        probability: next.exp(),
                    });
                }
                if m == 1 {
                    // Single-slot ring: nothing will overwrite slot 0; the
                    // next event's "starting" read ignores it anyway.
                    self.live[slot] = f64::NEG_INFINITY;
                }
            } else {
                let dest = (self.head + k - 1) % m;
                self.live[dest] = next;
                if k == m - 1 {
                    self.live[slot] = f64::NEG_INFINITY;
                }
            }
        }
        self.position += 1;
        alert
    }

    /// Consumes a batch of events, collecting all alerts.
    pub fn push_all<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a UncertainChar>,
    ) -> Vec<Alert> {
        events.into_iter().filter_map(|e| self.push(e)).collect()
    }

    /// Resets the matcher to the beginning of a new stream.
    pub fn reset(&mut self) {
        self.live.fill(f64::NEG_INFINITY);
        self.head = 0;
        self.position = 0;
    }
}

/// Exact probability that the pattern has occurred at least once in the
/// stream so far — the KMP-automaton DP of Li et al., incremental.
///
/// Positions are assumed independent (no correlations), matching the DP's
/// offline counterpart.
///
/// ```
/// use ustr_stream::ContainmentTracker;
/// use ustr_uncertain::UncertainChar;
///
/// let mut t = ContainmentTracker::new(b"ab".to_vec()).unwrap();
/// t.push(&UncertainChar::new(vec![(b'a', 0.5), (b'b', 0.5)], 0).unwrap());
/// assert_eq!(t.probability(), 0.0); // too short
/// t.push(&UncertainChar::new(vec![(b'a', 0.5), (b'b', 0.5)], 1).unwrap());
/// assert!((t.probability() - 0.25).abs() < 1e-12); // "ab"
/// ```
#[derive(Debug, Clone)]
pub struct ContainmentTracker {
    pattern: Vec<u8>,
    pi: Vec<usize>,
    /// Distribution over KMP states 0..m (state m is absorbed into
    /// `accepted` immediately).
    dist: Vec<f64>,
    scratch: Vec<f64>,
    accepted: f64,
    position: usize,
}

impl ContainmentTracker {
    /// Creates a tracker for `pattern`.
    pub fn new(pattern: Vec<u8>) -> Result<Self, ModelError> {
        if pattern.is_empty() {
            return Err(ModelError::EmptyPattern);
        }
        let m = pattern.len();
        let pi = prefix_function(&pattern);
        let mut dist = vec![0.0; m];
        dist[0] = 1.0;
        Ok(Self {
            pattern,
            pi,
            dist,
            scratch: vec![0.0; m],
            accepted: 0.0,
            position: 0,
        })
    }

    /// Probability that the pattern occurred at least once so far.
    pub fn probability(&self) -> f64 {
        self.accepted.min(1.0)
    }

    /// Number of events consumed.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Consumes one uncertain event; returns the updated containment
    /// probability.
    pub fn push(&mut self, event: &UncertainChar) -> f64 {
        let m = self.pattern.len();
        self.scratch.fill(0.0);
        let mut listed = 0.0f64;
        for &(c, p) in event.choices() {
            listed += p;
            for q in 0..m {
                if self.dist[q] > 0.0 {
                    let nq = kmp_delta(&self.pattern, &self.pi, q, c);
                    if nq == m {
                        self.accepted += self.dist[q] * p;
                    } else {
                        self.scratch[nq] += self.dist[q] * p;
                    }
                }
            }
        }
        // Residual (unlisted) mass matches no pattern character: state 0.
        let residual = (1.0 - listed).max(0.0);
        if residual > 0.0 {
            let live: f64 = self.dist.iter().sum();
            self.scratch[0] += live * residual;
        }
        std::mem::swap(&mut self.dist, &mut self.scratch);
        self.position += 1;
        self.probability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustr_baseline::{containment_probability, NaiveScanner};
    use ustr_uncertain::UncertainString;

    fn stream_of(spec: &str) -> UncertainString {
        UncertainString::parse(spec).unwrap()
    }

    fn run_matcher(s: &UncertainString, pattern: &[u8], tau: f64) -> Vec<usize> {
        let mut m = StreamMatcher::new(pattern.to_vec(), tau).unwrap();
        let mut starts = Vec::new();
        for c in s.positions() {
            if let Some(a) = m.push(c) {
                starts.push(a.start);
            }
        }
        starts
    }

    #[test]
    fn matches_scanner_on_paper_fragment() {
        let s = stream_of(
            "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 | \
             I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
        );
        for pattern in [&b"AT"[..], b"PQ", b"P", b"SFPQ", b"FPQP"] {
            for tau in [0.04, 0.1, 0.3, 0.5] {
                assert_eq!(
                    run_matcher(&s, pattern, tau),
                    NaiveScanner::find(&s, pattern, tau),
                    "pattern {:?} tau {tau}",
                    String::from_utf8_lossy(pattern)
                );
            }
        }
    }

    #[test]
    fn alert_probabilities_are_exact() {
        let s = stream_of("a:.9,b:.1 | a:.8,b:.2 | a:.7,b:.3 | a:.6,b:.4");
        let mut m = StreamMatcher::new(b"aa".to_vec(), 0.1).unwrap();
        let mut alerts = Vec::new();
        for c in s.positions() {
            if let Some(a) = m.push(c) {
                alerts.push(a);
            }
        }
        let expected = NaiveScanner::find_with_probs(&s, b"aa", 0.1);
        assert_eq!(alerts.len(), expected.len());
        for (a, (start, p)) in alerts.iter().zip(expected) {
            assert_eq!(a.start, start);
            assert!((a.probability - p).abs() < 1e-9);
        }
    }

    #[test]
    fn single_character_patterns() {
        let s = stream_of("x:.9,y:.1 | y:.8,x:.2 | x");
        assert_eq!(run_matcher(&s, b"x", 0.5), vec![0, 2]);
        assert_eq!(run_matcher(&s, b"y", 0.5), vec![1]);
        assert_eq!(run_matcher(&s, b"x", 0.05), vec![0, 1, 2]);
    }

    #[test]
    fn reset_restarts_cleanly() {
        let s = stream_of("a | b | a | b");
        let mut m = StreamMatcher::new(b"ab".to_vec(), 0.5).unwrap();
        for c in s.positions() {
            m.push(c);
        }
        assert_eq!(m.position(), 4);
        m.reset();
        assert_eq!(m.position(), 0);
        let starts: Vec<usize> = s
            .positions()
            .iter()
            .filter_map(|c| m.push(c).map(|a| a.start))
            .collect();
        assert_eq!(starts, vec![0, 2]);
    }

    #[test]
    fn constructor_validation() {
        assert!(StreamMatcher::new(Vec::new(), 0.5).is_err());
        assert!(StreamMatcher::new(b"a".to_vec(), 0.0).is_err());
        assert!(StreamMatcher::new(b"a".to_vec(), 1.5).is_err());
        assert!(ContainmentTracker::new(Vec::new()).is_err());
    }

    #[test]
    fn containment_tracker_matches_offline_dp_on_every_prefix() {
        let s = stream_of("a:.5,b:.5 | b:.3,a:.7 | a:.2,b:.8 | a:.6,b:.4 | b:.9,a:.1");
        for pattern in [&b"ab"[..], b"ba", b"aa", b"abb"] {
            let mut t = ContainmentTracker::new(pattern.to_vec()).unwrap();
            for i in 0..s.len() {
                t.push(s.position(i));
                let prefix = UncertainString::new(s.positions()[..=i].to_vec());
                let offline = containment_probability(&prefix, pattern);
                assert!(
                    (t.probability() - offline).abs() < 1e-9,
                    "pattern {:?} prefix {}: {} vs {}",
                    String::from_utf8_lossy(pattern),
                    i + 1,
                    t.probability(),
                    offline
                );
            }
        }
    }

    #[test]
    fn containment_handles_residual_mass() {
        let s = stream_of("a | a:.6 | a");
        let mut t = ContainmentTracker::new(b"aaa".to_vec()).unwrap();
        for c in s.positions() {
            t.push(c);
        }
        assert!((t.probability() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn live_alignment_count_is_bounded_and_pruned() {
        let s = stream_of("a:.2 | a:.2 | a:.2 | a:.2 | a:.2 | a:.2");
        let mut m = StreamMatcher::new(b"aaaa".to_vec(), 0.5).unwrap();
        for c in s.positions() {
            m.push(c);
            // τ = .5 kills every alignment after one .2-probability event.
            assert_eq!(m.live_alignments(), 0);
        }
    }
}
