//! Property tests: stream replay equals offline evaluation on every prefix.

use proptest::prelude::*;
use ustr_baseline::{containment_probability, NaiveScanner};
use ustr_stream::{ContainmentTracker, StreamMatcher};
use ustr_uncertain::UncertainString;

fn rows() -> impl Strategy<Value = Vec<Vec<(u8, f64)>>> {
    prop::collection::vec(prop::collection::vec((0u8..3, 1u32..40), 1..=3), 1..=20).prop_map(
        |rows| {
            rows.into_iter()
                .map(|mut row| {
                    row.sort_by_key(|&(c, _)| c);
                    row.dedup_by_key(|&mut (c, _)| c);
                    let total: u32 = row.iter().map(|&(_, w)| w).sum();
                    row.into_iter()
                        .map(|(c, w)| (b'a' + c, w as f64 / total as f64))
                        .collect()
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The stream matcher finds exactly the scanner's occurrence set, with
    /// matching probabilities.
    #[test]
    fn matcher_replays_scanner(
        r in rows(),
        p in prop::collection::vec(0u8..3, 1..5),
        tau_idx in 0usize..3,
    ) {
        let s = UncertainString::from_rows(r).unwrap();
        let pattern: Vec<u8> = p.into_iter().map(|c| b'a' + c).collect();
        let tau = [0.1, 0.3, 0.6][tau_idx];
        let mut m = StreamMatcher::new(pattern.clone(), tau).unwrap();
        let mut got: Vec<(usize, f64)> = Vec::new();
        for c in s.positions() {
            if let Some(a) = m.push(c) {
                got.push((a.start, a.probability));
            }
        }
        let expected = NaiveScanner::find_with_probs(&s, &pattern, tau);
        prop_assert_eq!(got.len(), expected.len());
        for ((gs, gp), (es, ep)) in got.iter().zip(expected.iter()) {
            prop_assert_eq!(gs, es);
            prop_assert!((gp - ep).abs() < 1e-9);
        }
    }

    /// The containment tracker equals the offline DP at every prefix.
    #[test]
    fn tracker_replays_dp(
        r in rows(),
        p in prop::collection::vec(0u8..2, 1..4),
    ) {
        let s = UncertainString::from_rows(r).unwrap();
        let pattern: Vec<u8> = p.into_iter().map(|c| b'a' + c).collect();
        let mut t = ContainmentTracker::new(pattern.clone()).unwrap();
        for i in 0..s.len() {
            t.push(s.position(i));
            let prefix = UncertainString::new(s.positions()[..=i].to_vec());
            let offline = containment_probability(&prefix, &pattern);
            prop_assert!((t.probability() - offline).abs() < 1e-9);
        }
    }
}
