//! Exact containment probability via a KMP-automaton dynamic program.
//!
//! This is the algorithmic (non-indexed) approach of Li et al. \[20\]: for a
//! pattern `p` and an uncertain string `S`, compute in O(n·m·σ) time the
//! probability that at least one possible world of `S` contains `p`.
//! Occurrences overlap, so this is *not* `1 − Π(1 − prᵢ)`; the DP tracks the
//! distribution over KMP automaton states (longest matched prefix of `p`)
//! with an absorbing accept state.
//!
//! Correlations are not supported by this DP (the automaton state would have
//! to be augmented per correlation); it assumes independent positions, which
//! is how the paper's experiments are set up.

use ustr_uncertain::UncertainString;

/// KMP failure function: `pi[k]` = length of the longest proper border of
/// `pattern[..=k]`.
pub fn prefix_function(pattern: &[u8]) -> Vec<usize> {
    let m = pattern.len();
    let mut pi = vec![0usize; m];
    let mut k = 0usize;
    for i in 1..m {
        while k > 0 && pattern[i] != pattern[k] {
            k = pi[k - 1];
        }
        if pattern[i] == pattern[k] {
            k += 1;
        }
        pi[i] = k;
    }
    pi
}

/// KMP transition: from state `q` (characters matched) on character `c`.
pub fn kmp_delta(pattern: &[u8], pi: &[usize], mut q: usize, c: u8) -> usize {
    debug_assert!(q < pattern.len());
    while q > 0 && pattern[q] != c {
        q = pi[q - 1];
    }
    if pattern[q] == c {
        q + 1
    } else {
        0
    }
}

/// Probability that `pattern` occurs (at least once, anywhere) in `s`,
/// assuming independent positions. Returns 0 for the empty pattern on an
/// empty string convention: the empty pattern trivially occurs (probability
/// 1) whenever `s` is non-trivial; we define it as 1 always.
pub fn containment_probability(s: &UncertainString, pattern: &[u8]) -> f64 {
    let m = pattern.len();
    if m == 0 {
        return 1.0;
    }
    let n = s.len();
    if m > n {
        return 0.0;
    }
    debug_assert!(
        s.correlations().is_empty(),
        "containment DP assumes independent positions"
    );
    let pi = prefix_function(pattern);

    // Dense transition table: states 0..m over the characters that actually
    // occur in the string keeps the inner loop branch-free.
    let mut delta = vec![[0u32; 256]; m];
    for (q, row) in delta.iter_mut().enumerate() {
        for c in 0..=255u8 {
            row[c as usize] = kmp_delta(pattern, &pi, q, c) as u32;
        }
    }

    let mut dist = vec![0.0f64; m + 1];
    dist[0] = 1.0;
    let mut accepted = 0.0f64;
    let mut next = vec![0.0f64; m + 1];
    for i in 0..n {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut listed_mass = 0.0f64;
        for &(c, p) in s.position(i).choices() {
            listed_mass += p;
            for q in 0..m {
                if dist[q] > 0.0 {
                    next[delta[q][c as usize] as usize] += dist[q] * p;
                }
            }
        }
        // Unlisted residual mass behaves as a character matching nothing:
        // the automaton falls back to state 0.
        let residual = (1.0 - listed_mass).max(0.0);
        if residual > 0.0 {
            let live: f64 = dist[..m].iter().sum();
            next[0] += live * residual;
        }
        accepted += next[m];
        next[m] = 0.0; // absorb
        std::mem::swap(&mut dist, &mut next);
    }
    accepted.min(1.0)
}

/// Expected number of occurrences of `pattern` in `s`: the sum of
/// per-position occurrence probabilities (linearity of expectation; exact
/// even though occurrences overlap).
pub fn expected_occurrences(s: &UncertainString, pattern: &[u8]) -> f64 {
    let m = pattern.len();
    if m == 0 || m > s.len() {
        return 0.0;
    }
    (0..=s.len() - m)
        .map(|i| s.match_probability(pattern, i))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_function_known_values() {
        assert_eq!(prefix_function(b"abcabd"), vec![0, 0, 0, 1, 2, 0]);
        assert_eq!(prefix_function(b"aaaa"), vec![0, 1, 2, 3]);
        assert_eq!(prefix_function(b"ababaa"), vec![0, 0, 1, 2, 3, 1]);
        assert_eq!(prefix_function(b"x"), vec![0]);
    }

    #[test]
    fn delta_walks_the_pattern() {
        let p = b"abab";
        let pi = prefix_function(p);
        let mut q = 0;
        for &c in b"ababab" {
            q = kmp_delta(p, &pi, q.min(p.len() - 1), c);
            // After consuming "abab" the state reaches 4 (match).
        }
        assert_eq!(kmp_delta(p, &pi, 0, b'a'), 1);
        assert_eq!(kmp_delta(p, &pi, 1, b'b'), 2);
        assert_eq!(kmp_delta(p, &pi, 2, b'a'), 3);
        assert_eq!(kmp_delta(p, &pi, 3, b'b'), 4);
        assert_eq!(kmp_delta(p, &pi, 3, b'a'), 1);
        assert_eq!(kmp_delta(p, &pi, 2, b'c'), 0);
        let _ = q;
    }

    #[test]
    fn deterministic_string_containment_is_binary() {
        let s = UncertainString::deterministic(b"abracadabra");
        assert_eq!(containment_probability(&s, b"cad"), 1.0);
        assert_eq!(containment_probability(&s, b"xyz"), 0.0);
        assert_eq!(containment_probability(&s, b"abra"), 1.0);
    }

    #[test]
    fn matches_possible_world_enumeration() {
        let s = UncertainString::parse("a:.5,b:.5 | a:.5,b:.5 | a:.5,b:.5 | a:.5,b:.5").unwrap();
        for pattern in [&b"ab"[..], b"aa", b"aba", b"bb", b"abab"] {
            let worlds = s.possible_worlds().unwrap();
            let expected: f64 = worlds
                .iter()
                .filter(|(w, _)| w.windows(pattern.len()).any(|win| win == pattern))
                .map(|&(_, p)| p)
                .sum();
            let got = containment_probability(&s, pattern);
            assert!(
                (got - expected).abs() < 1e-9,
                "pattern {:?}: got {got}, expected {expected}",
                String::from_utf8_lossy(pattern)
            );
        }
    }

    #[test]
    fn overlapping_occurrences_are_not_double_counted() {
        // "aa" in "aaa" with all-probable 'a': containment must be < sum of
        // per-position probabilities.
        let s = UncertainString::parse("a:.9,b:.1 | a:.9,b:.1 | a:.9,b:.1").unwrap();
        let contain = containment_probability(&s, b"aa");
        let expect_occ = expected_occurrences(&s, b"aa");
        assert!(contain < expect_occ);
        // Exact via enumeration: worlds containing "aa" are aaa (.729),
        // aab (.081), baa (.081) → .891.
        assert!((contain - 0.891).abs() < 1e-9);
        assert!((expect_occ - 1.62).abs() < 1e-9);
    }

    #[test]
    fn residual_mass_goes_to_state_zero() {
        // Position 1 has mass .6 listed; the remaining .4 is "other".
        let s = UncertainString::parse("a | a:.6 | a").unwrap();
        // "aaa" requires the listed 'a' at position 1.
        assert!((containment_probability(&s, b"aaa") - 0.6).abs() < 1e-12);
        // "aa" occurs iff position 1 is 'a' (either window).
        assert!((containment_probability(&s, b"aa") - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_and_oversized() {
        let s = UncertainString::deterministic(b"ab");
        assert_eq!(containment_probability(&s, b""), 1.0);
        assert_eq!(containment_probability(&s, b"abc"), 0.0);
        assert_eq!(expected_occurrences(&s, b""), 0.0);
    }
}
