//! Ground-truth oracle by exhaustive possible-world enumeration.

use std::collections::HashMap;

use ustr_uncertain::{ModelError, UncertainString};

/// Exhaustive oracle: evaluates queries by enumerating every possible world
/// (§1's possible-world semantics). Exponential — usable only on the small
/// strings of the test suite, where it provides an implementation-independent
/// ground truth for the indexes and the scanner.
pub struct PossibleWorldOracle;

impl PossibleWorldOracle {
    /// Per-position occurrence probability of `pattern`, computed by summing
    /// the probabilities of all worlds that contain `pattern` at each
    /// position.
    pub fn occurrence_probabilities(
        s: &UncertainString,
        pattern: &[u8],
    ) -> Result<HashMap<usize, f64>, ModelError> {
        let worlds = s.possible_worlds()?;
        let m = pattern.len();
        let mut acc: HashMap<usize, f64> = HashMap::new();
        if m == 0 || m > s.len() {
            return Ok(acc);
        }
        for (world, prob) in worlds {
            for i in 0..=world.len() - m {
                if &world[i..i + m] == pattern {
                    *acc.entry(i).or_insert(0.0) += prob;
                }
            }
        }
        Ok(acc)
    }

    /// Positions where `pattern` matches with probability ≥ `tau` (sorted).
    pub fn matches(
        s: &UncertainString,
        pattern: &[u8],
        tau: f64,
    ) -> Result<Vec<usize>, ModelError> {
        let probs = Self::occurrence_probabilities(s, pattern)?;
        let mut out: Vec<usize> = probs
            .into_iter()
            .filter(|&(_, p)| p >= tau - 1e-9)
            .map(|(i, _)| i)
            .collect();
        out.sort_unstable();
        Ok(out)
    }

    /// Probability that `pattern` occurs at least once (for validating the
    /// containment DP).
    pub fn containment_probability(s: &UncertainString, pattern: &[u8]) -> Result<f64, ModelError> {
        let worlds = s.possible_worlds()?;
        let m = pattern.len();
        if m == 0 {
            return Ok(1.0);
        }
        Ok(worlds
            .into_iter()
            .filter(|(w, _)| m <= w.len() && w.windows(m).any(|win| win == pattern))
            .map(|(_, p)| p)
            .sum())
    }

    /// Document ids (sorted) containing at least one occurrence of `pattern`
    /// with probability ≥ `tau`.
    pub fn listing(
        docs: &[UncertainString],
        pattern: &[u8],
        tau: f64,
    ) -> Result<Vec<usize>, ModelError> {
        let mut out = Vec::new();
        for (id, d) in docs.iter().enumerate() {
            if !Self::matches(d, pattern, tau)?.is_empty() {
                out.push(id);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveScanner;

    #[test]
    fn oracle_agrees_with_direct_evaluation() {
        let s = UncertainString::parse("a:.3,b:.7 | a:.6,c:.4 | a | b:.5,c:.5").unwrap();
        for pattern in [&b"a"[..], b"aa", b"ba", b"aab", b"aac"] {
            let probs = PossibleWorldOracle::occurrence_probabilities(&s, pattern).unwrap();
            for i in 0..=s.len().saturating_sub(pattern.len()) {
                let direct = s.match_probability(pattern, i);
                let oracle = probs.get(&i).copied().unwrap_or(0.0);
                assert!(
                    (direct - oracle).abs() < 1e-9,
                    "pattern {:?} pos {i}: direct {direct} oracle {oracle}",
                    String::from_utf8_lossy(pattern)
                );
            }
        }
    }

    #[test]
    fn oracle_matches_scanner() {
        let s = UncertainString::parse("x:.5,y:.5 | x:.9,z:.1 | y:.4,x:.6 | x").unwrap();
        for tau in [0.05, 0.2, 0.5, 0.9] {
            for pattern in [&b"x"[..], b"xx", b"xy", b"yx", b"xxx"] {
                let oracle = PossibleWorldOracle::matches(&s, pattern, tau).unwrap();
                let scan = NaiveScanner::find(&s, pattern, tau);
                assert_eq!(oracle, scan, "pattern {pattern:?} tau {tau}");
            }
        }
    }

    #[test]
    fn containment_agrees_with_dp() {
        let s = UncertainString::parse("a:.5,b:.5 | b:.3,a:.7 | a:.2,b:.8").unwrap();
        for pattern in [&b"ab"[..], b"ba", b"aa", b"aba"] {
            let oracle = PossibleWorldOracle::containment_probability(&s, pattern).unwrap();
            let dp = crate::containment_probability(&s, pattern);
            assert!((oracle - dp).abs() < 1e-9);
        }
    }

    #[test]
    fn listing_on_figure_2() {
        let d1 =
            UncertainString::parse("A:.4,B:.3,F:.3 | B:.3,L:.3,F:.3,J:.1 | F:.5,J:.5").unwrap();
        let d2 =
            UncertainString::parse("A:.6,C:.4 | B:.5,F:.3,E:.2 | B:.4,C:.3,P:.2,F:.1").unwrap();
        let d3 = UncertainString::parse("A:.4,F:.4,P:.2 | I:.3,L:.3,P:.3,T:.1 | A").unwrap();
        let docs = vec![d1, d2, d3];
        assert_eq!(
            PossibleWorldOracle::listing(&docs, b"BF", 0.1).unwrap(),
            vec![0]
        );
    }
}
