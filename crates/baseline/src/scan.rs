//! Online per-position scan (the Li et al. \[20\] style baseline).

use ustr_uncertain::{canon, log_meets_threshold, UncertainString};

/// Stateless online matcher: O(n·m) worst case, with early termination as
/// soon as a window's running product drops below the threshold (products of
/// probabilities are non-increasing in window length).
pub struct NaiveScanner;

impl NaiveScanner {
    /// All positions where `pattern` matches `s` with probability ≥ `tau`.
    pub fn find(s: &UncertainString, pattern: &[u8], tau: f64) -> Vec<usize> {
        Self::find_with_probs(s, pattern, tau)
            .into_iter()
            .map(|(i, _)| i)
            .collect()
    }

    /// Like [`Self::find`], also returning the occurrence probabilities.
    pub fn find_with_probs(s: &UncertainString, pattern: &[u8], tau: f64) -> Vec<(usize, f64)> {
        let m = pattern.len();
        let n = s.len();
        let mut out = Vec::new();
        if m == 0 || m > n || !canon::is_positive_prob(tau) {
            return out;
        }
        let log_tau = canon::ln(tau);
        let corrs = s.correlations();
        'positions: for i in 0..=n - m {
            let mut log_p = 0.0f64;
            for (k, &ch) in pattern.iter().enumerate() {
                let q = i + k;
                let base = s.position(q).prob_of(ch);
                if !canon::is_positive_prob(base) {
                    continue 'positions;
                }
                // The conditioning outcome is known from the pattern itself
                // whenever the conditioning position falls inside the window,
                // so the contribution of each character is final immediately
                // and early termination is sound.
                let p = match corrs.get(q, ch) {
                    Some(corr) => {
                        let j = corr.cond_pos;
                        if j >= i && j < i + m {
                            corr.effective_prob(Some(pattern[j - i]), 0.0)
                        } else {
                            let marginal = s.position(j).prob_of(corr.cond_char);
                            corr.effective_prob(None, marginal)
                        }
                    }
                    None => base,
                };
                if !canon::is_positive_prob(p) {
                    continue 'positions;
                }
                log_p += canon::ln(p);
                if !log_meets_threshold(log_p, log_tau) {
                    continue 'positions;
                }
            }
            out.push((i, canon::exp(log_p)));
        }
        out
    }

    /// String listing by brute force: every document is scanned.
    pub fn listing(docs: &[UncertainString], pattern: &[u8], tau: f64) -> Vec<usize> {
        docs.iter()
            .enumerate()
            .filter(|(_, d)| !Self::find_with_probs(d, pattern, tau).is_empty())
            .map(|(id, _)| id)
            .collect()
    }

    /// Maximum occurrence probability of `pattern` in `s` (the `Rel_max`
    /// relevance metric of §6); 0 when there is no possible occurrence.
    pub fn relevance_max(s: &UncertainString, pattern: &[u8]) -> f64 {
        Self::find_with_probs(s, pattern, f64::MIN_POSITIVE)
            .into_iter()
            .map(|(_, p)| p)
            .fold(0.0, f64::max)
    }

    /// The paper's `Rel_OR` metric (Figure 6): `Σ pr(tⱼ) − Π pr(tⱼ)` over
    /// all nonzero-probability occurrence positions.
    pub fn relevance_or(s: &UncertainString, pattern: &[u8]) -> f64 {
        let probs: Vec<f64> = Self::find_with_probs(s, pattern, f64::MIN_POSITIVE)
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        match probs.len() {
            0 => 0.0,
            // §6: one occurrence's relevance is its probability.
            1 => probs[0],
            _ => {
                let sum: f64 = probs.iter().sum();
                let prod: f64 = probs.iter().product();
                sum - prod
            }
        }
    }

    /// Independent-event OR: `1 − Π(1 − pr(tⱼ))` — the standard alternative
    /// to the paper's formula, exposed for comparison.
    pub fn relevance_independent_or(s: &UncertainString, pattern: &[u8]) -> f64 {
        let probs = Self::find_with_probs(s, pattern, f64::MIN_POSITIVE);
        canon::independent_or(probs.iter().map(|&(_, p)| p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure_6_string() -> UncertainString {
        UncertainString::parse(
            "A:.4,B:.3,F:.3 | B:.3,L:.3,F:.3,J:.1 | A:.5,F:.5 | A:.6,B:.4 | B:.5,F:.3,J:.2 | A:.4,C:.3,E:.2,F:.1",
        )
        .unwrap()
    }

    #[test]
    fn finds_expected_positions() {
        let s = UncertainString::parse(
            "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 | \
             I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
        )
        .unwrap();
        assert_eq!(NaiveScanner::find(&s, b"AT", 0.4), vec![8]);
        // Position 6 matches with probability .4 * .1 = .04 only.
        assert_eq!(NaiveScanner::find(&s, b"AT", 0.1), vec![8]);
        assert_eq!(NaiveScanner::find(&s, b"AT", 0.04), vec![6, 8]);
    }

    #[test]
    fn probabilities_match_model() {
        let s = figure_6_string();
        for (i, p) in NaiveScanner::find_with_probs(&s, b"BFA", 0.0001) {
            assert!((p - s.match_probability(b"BFA", i)).abs() < 1e-12);
        }
    }

    #[test]
    fn figure_6_relevance_metrics() {
        let s = figure_6_string();
        // Rel(S, "BFA")max = .09 as in the paper. (Figure 6's OR arithmetic
        // uses .06 for the first occurrence, but the displayed string gives
        // .3*.3*.5 = .045; we assert the formula Σp − Πp on the actual
        // occurrence probabilities .045, .09, .048.)
        assert!((NaiveScanner::relevance_max(&s, b"BFA") - 0.09).abs() < 1e-9);
        let expected = (0.045 + 0.09 + 0.048) - 0.045 * 0.09 * 0.048;
        assert!((NaiveScanner::relevance_or(&s, b"BFA") - expected).abs() < 1e-9);
    }

    #[test]
    fn empty_and_oversized_patterns() {
        let s = UncertainString::deterministic(b"abc");
        assert!(NaiveScanner::find(&s, b"", 0.5).is_empty());
        assert!(NaiveScanner::find(&s, b"abcd", 0.5).is_empty());
        assert_eq!(NaiveScanner::find(&s, b"abc", 0.5), vec![0]);
    }

    #[test]
    fn threshold_filters() {
        let s = UncertainString::parse("a:.9,b:.1 | a:.9,b:.1").unwrap();
        assert_eq!(NaiveScanner::find(&s, b"aa", 0.5), vec![0]); // .81
        assert!(NaiveScanner::find(&s, b"ab", 0.5).is_empty()); // .09
        assert_eq!(NaiveScanner::find(&s, b"ab", 0.05), vec![0]);
    }

    #[test]
    fn listing_returns_matching_documents() {
        // Figure 2: only d1 contains "BF" with probability > 0.1.
        let d1 =
            UncertainString::parse("A:.4,B:.3,F:.3 | B:.3,L:.3,F:.3,J:.1 | F:.5,J:.5").unwrap();
        let d2 =
            UncertainString::parse("A:.6,C:.4 | B:.5,F:.3,E:.2 | B:.4,C:.3,P:.2,F:.1").unwrap();
        let d3 = UncertainString::parse("A:.4,F:.4,P:.2 | I:.3,L:.3,P:.3,T:.1 | A").unwrap();
        let docs = vec![d1, d2, d3];
        assert_eq!(NaiveScanner::listing(&docs, b"BF", 0.1), vec![0]);
    }

    #[test]
    fn independent_or_differs_from_paper_or() {
        let s = figure_6_string();
        let paper = NaiveScanner::relevance_or(&s, b"BFA");
        let indep = NaiveScanner::relevance_independent_or(&s, b"BFA");
        assert!(paper > 0.0 && indep > 0.0);
        assert!(
            (paper - indep).abs() > 1e-6,
            "metrics are genuinely different"
        );
    }
}
