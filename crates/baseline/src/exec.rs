//! [`ScanIndex`]: the scan-based [`QueryExecutor`].
//!
//! Wraps one [`UncertainString`] and answers the per-document query
//! contract by scanning instead of building the paper's index.
//! Construction builds only the flat [`ProbPlane`] — no transform, no
//! suffix tree — which is exactly what a live memtable needs: a freshly
//! ingested document is queryable immediately, and the answers are
//! **bit-identical** to what a built [`ustr_core::Index`] over the same
//! document at the same `τmin` returns (both report canonical
//! probabilities recomputed from the model through the same
//! [`MatchKernel`], both use the same threshold tolerance, and top-k uses
//! the same total order — see [`ustr_core::QueryExecutor`]).
//!
//! The scan itself runs on the plane: candidate start positions are
//! prefiltered with the presence bitmap of the *first* pattern character
//! (every other start fails at its first factor), and each surviving
//! window is verified by the kernel's bounded flat loop with the same
//! per-factor early exit [`crate::NaiveScanner`] uses. `NaiveScanner`
//! stays as the plane-free reference implementation the differential tests
//! compare against.

use ustr_core::{validate_pattern, validate_query, Error, QueryExecutor};
use ustr_uncertain::{canon, MatchKernel, ProbPlane, UncertainString};

/// A scan-backed per-document query engine (O(n·σ) construction for the
/// probability plane, O(n·m) queries) satisfying the [`QueryExecutor`]
/// interchangeability contract.
#[derive(Debug, Clone)]
pub struct ScanIndex {
    doc: UncertainString,
    plane: ProbPlane,
    tau_min: f64,
}

impl ScanIndex {
    /// Wraps `doc` with the construction threshold `tau_min ∈ (0, 1]` (the
    /// same value an [`ustr_core::Index`] would be built with).
    pub fn new(doc: UncertainString, tau_min: f64) -> Result<Self, Error> {
        if !canon::valid_tau(tau_min) {
            return Err(Error::InvalidThreshold { value: tau_min });
        }
        let plane = ProbPlane::build(&doc);
        Ok(Self {
            doc,
            plane,
            tau_min,
        })
    }

    /// The wrapped document.
    pub fn source(&self) -> &UncertainString {
        &self.doc
    }

    /// The document's flat verification plane.
    pub fn plane(&self) -> &ProbPlane {
        &self.plane
    }

    /// Consumes the executor, returning the document (e.g. to build a real
    /// index when the memtable is sealed).
    pub fn into_source(self) -> UncertainString {
        self.doc
    }

    /// The plane-backed scan shared by threshold and top-k: presence-row
    /// prefilter on the first pattern character, bounded kernel loop per
    /// surviving candidate, canonical linear-domain filter at `tau`.
    /// Equivalent to `NaiveScanner::find_with_probs` + retain, bit for bit.
    fn scan(&self, kernel: &MatchKernel<'_>, pattern: &[u8], tau: f64) -> Vec<(usize, f64)> {
        let m = pattern.len();
        let n = self.doc.len();
        let mut hits = Vec::new();
        if m == 0 || m > n {
            return hits;
        }
        let log_tau = canon::ln(tau);
        let start = std::time::Instant::now();
        let mut candidates = 0u64;
        for i in kernel.candidates(n - m + 1) {
            candidates += 1;
            if let Some(log_p) = kernel.log_match_bounded(i, log_tau) {
                let p = canon::exp(log_p);
                if canon::meets_threshold(p, tau) {
                    hits.push((i, p));
                }
            }
        }
        // One batched record per scan: the per-candidate loop stays free
        // of atomics and clock reads. This is the cold (plane-less) path.
        ustr_uncertain::kstats::record_scan_on(
            ustr_uncertain::kstats::ScanPath::Cold,
            candidates,
            hits.len() as u64,
            ustr_uncertain::kstats::elapsed_ns(start),
        );
        hits
    }
}

impl QueryExecutor for ScanIndex {
    fn tau_min(&self) -> f64 {
        self.tau_min
    }

    fn threshold_hits(&self, pattern: &[u8], tau: f64) -> Result<Vec<(usize, f64)>, Error> {
        validate_query(pattern, tau, self.tau_min)?;
        // The kernel's log-domain early exit mirrors the index's RMQ report
        // threshold; the linear-domain filter mirrors the index's final
        // canonical-probability filter.
        Ok(self
            .plane
            .with_kernel(pattern, |kernel| self.scan(kernel, pattern, tau)))
    }

    fn top_k_hits(&self, pattern: &[u8], k: usize) -> Result<Vec<(usize, f64)>, Error> {
        validate_pattern(pattern)?;
        if k == 0 {
            return Ok(Vec::new());
        }
        // Candidates = the threshold answer at τmin (log prefilter plus
        // the same canonical linear filter the index applies); canonical
        // (probability ↓, position ↑) order decides ties at the cut.
        let mut hits = self
            .plane
            .with_kernel(pattern, |kernel| self.scan(kernel, pattern, self.tau_min));
        hits.sort_by(ustr_core::canonical_hit_order);
        hits.truncate(k);
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustr_core::Index;

    fn figure_3_string() -> UncertainString {
        UncertainString::parse(
            "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 | \
             I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
        )
        .unwrap()
    }

    #[test]
    fn threshold_hits_are_bit_identical_to_an_index() {
        let s = figure_3_string();
        let scan = ScanIndex::new(s.clone(), 0.05).unwrap();
        let idx = Index::build(&s, 0.05).unwrap();
        for pattern in [&b"AT"[..], b"P", b"FP", b"SFPQ", b"ZZ"] {
            for tau in [0.05, 0.1, 0.4, 0.9] {
                assert_eq!(
                    scan.threshold_hits(pattern, tau).unwrap(),
                    QueryExecutor::threshold_hits(&idx, pattern, tau).unwrap(),
                    "pattern {pattern:?} tau {tau}"
                );
            }
        }
    }

    #[test]
    fn top_k_is_bit_identical_to_an_index() {
        let s = figure_3_string();
        let scan = ScanIndex::new(s.clone(), 0.05).unwrap();
        let idx = Index::build(&s, 0.05).unwrap();
        for pattern in [&b"P"[..], b"AT", b"T", b"F"] {
            for k in [1usize, 2, 5, 100] {
                assert_eq!(
                    scan.top_k_hits(pattern, k).unwrap(),
                    QueryExecutor::top_k_hits(&idx, pattern, k).unwrap(),
                    "pattern {pattern:?} k {k}"
                );
            }
        }
    }

    #[test]
    fn top_k_tie_break_is_positional_under_equal_probabilities() {
        // "ABABAB" deterministic: every "AB" occurrence has p = 1 exactly.
        let s = UncertainString::deterministic(b"ABABAB");
        let scan = ScanIndex::new(s.clone(), 0.5).unwrap();
        let idx = Index::build(&s, 0.5).unwrap();
        let got = scan.top_k_hits(b"AB", 2).unwrap();
        assert_eq!(got, vec![(0, 1.0), (2, 1.0)], "smallest positions win");
        assert_eq!(got, QueryExecutor::top_k_hits(&idx, b"AB", 2).unwrap());
    }

    #[test]
    fn correlated_documents_stay_bit_identical() {
        // Under correlation the index's stored values are only upper
        // bounds; both executors must still agree bitwise (the index falls
        // back to ranking the canonical τmin threshold answer).
        let mut s = UncertainString::parse("A:.5,B:.5 | T | A:.4,T:.6 | T | A:.3,B:.7").unwrap();
        let mut set = ustr_uncertain::CorrelationSet::new();
        set.add(ustr_uncertain::Correlation {
            subject_pos: 2,
            subject_char: b'A',
            cond_pos: 0,
            cond_char: b'A',
            p_present: 0.9,
            p_absent: 0.1,
        })
        .unwrap();
        s.set_correlations(set).unwrap();
        let scan = ScanIndex::new(s.clone(), 0.05).unwrap();
        let idx = Index::build(&s, 0.05).unwrap();
        for pattern in [&b"AT"[..], b"T", b"A"] {
            for tau in [0.05, 0.2, 0.5] {
                assert_eq!(
                    scan.threshold_hits(pattern, tau).unwrap(),
                    QueryExecutor::threshold_hits(&idx, pattern, tau).unwrap(),
                    "threshold {pattern:?} tau {tau}"
                );
            }
            for k in [1usize, 2, 10] {
                assert_eq!(
                    scan.top_k_hits(pattern, k).unwrap(),
                    QueryExecutor::top_k_hits(&idx, pattern, k).unwrap(),
                    "top-k {pattern:?} k {k}"
                );
            }
        }
    }

    #[test]
    fn validation_matches_the_index_layer() {
        let scan = ScanIndex::new(figure_3_string(), 0.2).unwrap();
        assert!(matches!(
            scan.threshold_hits(b"", 0.5),
            Err(Error::EmptyPattern)
        ));
        assert!(matches!(
            scan.threshold_hits(b"AT", 0.1),
            Err(Error::ThresholdBelowTauMin { .. })
        ));
        assert!(matches!(
            scan.top_k_hits(b"A\0T", 3),
            Err(Error::PatternContainsSentinel)
        ));
        assert!(matches!(
            ScanIndex::new(figure_3_string(), 0.0),
            Err(Error::InvalidThreshold { .. })
        ));
    }
}
