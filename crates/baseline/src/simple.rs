//! The paper's *simple index* (§4.1): suffix range + exhaustive scan.
//!
//! Build the deterministic text of the (transformed) uncertain string, a
//! suffix array over it, and the cumulative probability array `C`. A query
//! finds the suffix range of the pattern and then verifies **every** element
//! of the range against the threshold — the baseline whose per-range cost
//! the efficient RMQ index removes.

use ustr_suffix::SuffixArray;
use ustr_uncertain::{canon, transform, ModelError, ProbPlane, Transformed, UncertainString};

/// Simple (non-RMQ) index over a general uncertain string.
///
/// ```
/// use ustr_baseline::SimpleIndex;
/// use ustr_uncertain::UncertainString;
/// let s = UncertainString::parse("b:.4 | a:.7 | n:.5 | a:.8 | n:.9 | a:.6").unwrap();
/// let idx = SimpleIndex::build(&s, 0.1).unwrap();
/// // Figure 5: query ("ana", 0.3) reports only position 3 (.432).
/// assert_eq!(idx.query(b"ana", 0.3).unwrap(), vec![3]);
/// assert_eq!(idx.query(b"ana", 0.2).unwrap(), vec![1, 3]);
/// ```
#[derive(Debug)]
pub struct SimpleIndex {
    /// Flat verification plane over the source model (all the query path
    /// needs of it — bit-identical to `log_match_probability`).
    plane: ProbPlane,
    transformed: Transformed,
    sa: SuffixArray,
    tau_min: f64,
}

impl SimpleIndex {
    /// Builds the index with construction-time threshold `tau_min`.
    pub fn build(source: &UncertainString, tau_min: f64) -> Result<Self, ModelError> {
        let transformed = transform(source, tau_min)?;
        let sa = SuffixArray::new(transformed.special.chars().to_vec());
        Ok(Self {
            plane: ProbPlane::build(source),
            transformed,
            sa,
            tau_min,
        })
    }

    /// The construction-time threshold.
    pub fn tau_min(&self) -> f64 {
        self.tau_min
    }

    /// Occurrence positions of `pattern` in the source string with
    /// probability ≥ `tau`, sorted ascending. `tau` must satisfy
    /// `tau_min ≤ tau ≤ 1`.
    pub fn query(&self, pattern: &[u8], tau: f64) -> Result<Vec<usize>, ModelError> {
        if pattern.is_empty() {
            return Err(ModelError::EmptyPattern);
        }
        if !canon::tau_in_range(tau, self.tau_min) {
            return Err(ModelError::InvalidThreshold { value: tau });
        }
        let mut out: Vec<usize> = Vec::new();
        let Some((l, r)) = self.sa.suffix_range(pattern) else {
            return Ok(out);
        };
        // Scan the whole range (the inefficiency the efficient index fixes),
        // mapping each text offset back to the source position and verifying
        // the exact probability there through the flat plane kernel
        // (bit-identical to `log_match_probability`, pattern remapped once).
        let log_tau = canon::ln(tau);
        self.plane.with_kernel(pattern, |kernel| {
            for j in l..=r {
                let x = self.sa.sa()[j] as usize;
                let Some(src) = self.transformed.source_pos(x) else {
                    continue;
                };
                if ustr_uncertain::log_meets_threshold(kernel.log_match(src), log_tau) {
                    out.push(src);
                }
            }
        });
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Number of candidates the query scans (for the ablation benchmarks):
    /// the full suffix-range size, regardless of how many pass the threshold.
    pub fn candidates(&self, pattern: &[u8]) -> usize {
        self.sa.suffix_range(pattern).map_or(0, |(l, r)| r - l + 1)
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        self.sa.heap_size() + self.transformed.heap_size() + self.plane.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveScanner;

    #[test]
    fn matches_scanner_on_general_strings() {
        let s = UncertainString::parse(
            "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 | \
             I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
        )
        .unwrap();
        let idx = SimpleIndex::build(&s, 0.05).unwrap();
        for pattern in [&b"AT"[..], b"P", b"PQ", b"SFPQ", b"FP", b"TPA"] {
            for tau in [0.05, 0.1, 0.3, 0.5] {
                let got = idx.query(pattern, tau).unwrap();
                let expected = NaiveScanner::find(&s, pattern, tau);
                assert_eq!(got, expected, "pattern {pattern:?} tau {tau}");
            }
        }
    }

    #[test]
    fn rejects_invalid_queries() {
        let s = UncertainString::deterministic(b"abc");
        let idx = SimpleIndex::build(&s, 0.5).unwrap();
        assert!(matches!(idx.query(b"", 0.6), Err(ModelError::EmptyPattern)));
        assert!(matches!(
            idx.query(b"a", 0.3), // below tau_min
            Err(ModelError::InvalidThreshold { .. })
        ));
        assert!(matches!(
            idx.query(b"a", 1.5),
            Err(ModelError::InvalidThreshold { .. })
        ));
    }

    #[test]
    fn duplicate_source_positions_reported_once() {
        // Overlapping factors can contain the same source occurrence twice.
        let s = UncertainString::parse("a:.5,b:.5 | c | d | e:.5,f:.5").unwrap();
        let idx = SimpleIndex::build(&s, 0.2).unwrap();
        let got = idx.query(b"cd", 0.5).unwrap();
        assert_eq!(got, vec![1]);
    }

    #[test]
    fn missing_pattern() {
        let s = UncertainString::deterministic(b"abc");
        let idx = SimpleIndex::build(&s, 0.5).unwrap();
        assert!(idx.query(b"zzz", 0.9).unwrap().is_empty());
    }
}
