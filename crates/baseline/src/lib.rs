//! Baselines and test oracles for uncertain-string searching.
//!
//! The paper positions its indexes against two kinds of competition:
//!
//! * the *online* algorithmic approach of Li et al. \[20\], which scans the
//!   uncertain string per query — reproduced here as [`NaiveScanner`]
//!   (per-position product with early termination) and the exact
//!   KMP-automaton containment DP ([`containment_probability`]);
//! * the paper's own *simple index* (§4.1): suffix range + exhaustive
//!   scan + cumulative-probability verification — reproduced as
//!   [`SimpleIndex`] and used in the ablation benchmarks.
//!
//! [`PossibleWorldOracle`] enumerates possible worlds outright and serves as
//! the ground truth for every property test in the workspace.
//!
//! [`ScanIndex`] packages the scan strategy behind the `ustr-core`
//! [`QueryExecutor`](ustr_core::QueryExecutor) contract: a per-document
//! engine whose only construction cost is the flat
//! [`ProbPlane`](ustr_uncertain::ProbPlane) (no transform, no suffix tree)
//! and whose answers are bit-identical to a built index — the serving path
//! for documents too young to have been indexed (the `ustr-live`
//! memtable). Its scan prefilters candidate starts with the plane's
//! first-pattern-character presence row and verifies through the
//! [`MatchKernel`](ustr_uncertain::MatchKernel) flat loop.

#![forbid(unsafe_code)]

mod dp;
mod exec;
mod oracle;
mod scan;
mod simple;

pub use dp::{containment_probability, expected_occurrences, kmp_delta, prefix_function};
pub use exec::ScanIndex;
pub use oracle::PossibleWorldOracle;
pub use scan::NaiveScanner;
pub use simple::SimpleIndex;
