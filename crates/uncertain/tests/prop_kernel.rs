//! Differential property test: the flat-plane [`MatchKernel`] is
//! **bit-identical** (`f64::to_bits`) to the naive
//! [`UncertainString::log_match_probability`] across random models —
//! including correlations, non-strict probability sums, degenerate σ = 1
//! alphabets, and patterns containing characters absent from the alphabet.

use proptest::prelude::*;
use ustr_uncertain::{
    log_meets_threshold, Correlation, CorrelationSet, ProbPlane, UncertainString, PROB_EPS,
};

/// Random rows over a tiny alphabet; `scale < 1` leaves the sums
/// non-strict (modelling unenumerated rare characters).
fn rows_strategy() -> impl Strategy<Value = Vec<Vec<(u8, f64)>>> {
    (
        prop::collection::vec(prop::collection::vec((0u8..5, 1u32..60), 1..=4), 1..=16),
        50u32..101,
    )
        .prop_map(|(rows, scale_pct)| {
            let scale = scale_pct as f64 / 100.0;
            rows.into_iter()
                .map(|mut row| {
                    row.sort_by_key(|&(c, _)| c);
                    row.dedup_by_key(|&mut (c, _)| c);
                    let total: u32 = row.iter().map(|&(_, w)| w).sum();
                    row.into_iter()
                        .map(|(c, w)| (b'a' + c, scale * w as f64 / total as f64))
                        .collect()
                })
                .collect()
        })
}

/// Raw correlation picks, resolved against the generated string (invalid
/// picks are skipped, so every generated case is a valid model). Nested
/// pairs because the vendored proptest implements tuple strategies up to
/// arity 4.
type CorrPick = ((usize, usize), (usize, usize), (u32, u32));

fn attach_correlations(s: &mut UncertainString, picks: &[CorrPick]) {
    let mut set = CorrelationSet::new();
    for &((subj_pos, subj_idx), (cond_pos, cond_idx), (p_plus, p_minus)) in picks {
        let n = s.len();
        let (subj_pos, cond_pos) = (subj_pos % n, cond_pos % n);
        if subj_pos == cond_pos {
            continue;
        }
        let subj_row = s.position(subj_pos).choices();
        let cond_row = s.position(cond_pos).choices();
        let corr = Correlation {
            subject_pos: subj_pos,
            subject_char: subj_row[subj_idx % subj_row.len()].0,
            cond_pos,
            cond_char: cond_row[cond_idx % cond_row.len()].0,
            p_present: p_plus as f64 / 100.0,
            p_absent: p_minus as f64 / 100.0,
        };
        let _ = set.add(corr); // duplicates are skipped
    }
    s.set_correlations(set)
        .expect("picks resolve to live choices");
}

/// Patterns to throw at one string: world windows, mutated windows, and
/// windows containing a byte that is absent from the whole alphabet.
fn patterns_for(s: &UncertainString) -> Vec<Vec<u8>> {
    let world = s.most_probable_world();
    let n = world.len();
    let mut out = vec![Vec::new(), b"zz".to_vec()];
    for start in 0..n {
        for len in 1..=(n - start).min(5) {
            let w = world[start..start + len].to_vec();
            let mut mutated = w.clone();
            mutated[len / 2] = b'a' + ((mutated[len / 2] - b'a' + 1) % 5);
            let mut alien = w.clone();
            alien[len - 1] = b'Q'; // never in the alphabet
            out.push(w);
            out.push(mutated);
            out.push(alien);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Kernel vs naive, bit for bit, over every window of random
    /// correlation-free models (including non-strict sums).
    #[test]
    fn kernel_is_bit_identical_without_correlations(rows in rows_strategy()) {
        let s = UncertainString::from_rows(rows).unwrap();
        let plane = ProbPlane::build(&s);
        for pattern in patterns_for(&s) {
            plane.with_kernel(&pattern, |k| {
                for pos in 0..=s.len() + 1 {
                    let naive = s.log_match_probability(&pattern, pos);
                    let fast = k.log_match(pos);
                    prop_assert_eq!(
                        naive.to_bits(), fast.to_bits(),
                        "pattern {:?} pos {} naive {} kernel {}",
                        pattern.clone(), pos, naive, fast
                    );
                    prop_assert_eq!(
                        s.match_probability(&pattern, pos).to_bits(),
                        k.match_probability(pos).to_bits()
                    );
                }
                Ok(())
            })?;
        }
    }

    /// Kernel vs naive under random pairwise correlations (including
    /// `pr⁺`/`pr⁻` of exactly 0 and 1).
    #[test]
    fn kernel_is_bit_identical_with_correlations(
        rows in rows_strategy(),
        picks in prop::collection::vec(
            ((0usize..64, 0usize..4), (0usize..64, 0usize..4), (0u32..101, 0u32..101)),
            0..4,
        ),
    ) {
        let mut s = UncertainString::from_rows(rows).unwrap();
        attach_correlations(&mut s, &picks);
        let plane = ProbPlane::build(&s);
        for pattern in patterns_for(&s) {
            plane.with_kernel(&pattern, |k| {
                for pos in 0..=s.len() {
                    prop_assert_eq!(
                        s.log_match_probability(&pattern, pos).to_bits(),
                        k.log_match(pos).to_bits(),
                        "pattern {:?} pos {}", pattern.clone(), pos
                    );
                }
                Ok(())
            })?;
        }
    }

    /// Degenerate σ = 1 alphabets: a single live character, with arbitrary
    /// (possibly sub-unit, possibly exactly-1) probabilities.
    #[test]
    fn kernel_handles_sigma_one(probs in prop::collection::vec(1u32..101, 1..=12)) {
        let rows: Vec<Vec<(u8, f64)>> = probs
            .iter()
            .map(|&p| vec![(b'x', p as f64 / 100.0)])
            .collect();
        let s = UncertainString::from_rows(rows).unwrap();
        let plane = ProbPlane::build(&s);
        prop_assert_eq!(plane.sigma(), 1);
        for pattern in [&b"x"[..], b"xx", b"xxxx", b"y", b"xy"] {
            plane.with_kernel(pattern, |k| {
                for pos in 0..=s.len() {
                    prop_assert_eq!(
                        s.log_match_probability(pattern, pos).to_bits(),
                        k.log_match(pos).to_bits()
                    );
                }
                Ok(())
            })?;
        }
    }

    /// The bounded (scanner) evaluation agrees with the naive scan loop:
    /// same survivors, same bits — and candidate prefiltering by the first
    /// pattern character never changes the survivor set.
    #[test]
    fn bounded_kernel_matches_naive_scan(
        rows in rows_strategy(),
        tau_pct in 1u32..81,
    ) {
        let s = UncertainString::from_rows(rows).unwrap();
        let tau = tau_pct as f64 / 100.0;
        let log_tau = tau.ln();
        let plane = ProbPlane::build(&s);
        for pattern in patterns_for(&s) {
            let m = pattern.len();
            if m == 0 || m > s.len() {
                continue;
            }
            // The naive scan: full window product with per-factor early exit.
            let mut expected: Vec<(usize, u64)> = Vec::new();
            'pos: for i in 0..=s.len() - m {
                let mut log_p = 0.0f64;
                for (k, &ch) in pattern.iter().enumerate() {
                    let q = i + k;
                    let base = s.position(q).prob_of(ch);
                    if base <= 0.0 {
                        continue 'pos;
                    }
                    let p = match s.correlations().get(q, ch) {
                        Some(c) => {
                            let j = c.cond_pos;
                            if j >= i && j < i + m {
                                c.effective_prob(Some(pattern[j - i]), 0.0)
                            } else {
                                let marginal = s.position(j).prob_of(c.cond_char);
                                c.effective_prob(None, marginal)
                            }
                        }
                        None => base,
                    };
                    if p <= 0.0 {
                        continue 'pos;
                    }
                    log_p += p.ln();
                    if !log_meets_threshold(log_p, log_tau) {
                        continue 'pos;
                    }
                }
                expected.push((i, log_p.to_bits()));
            }
            plane.with_kernel(&pattern, |k| {
                let got: Vec<(usize, u64)> = k
                    .candidates(s.len() + 1 - m)
                    .filter_map(|i| k.log_match_bounded(i, log_tau).map(|lp| (i, lp.to_bits())))
                    .collect();
                prop_assert_eq!(&got, &expected, "pattern {:?} tau {}", pattern.clone(), tau);
                Ok(())
            })?;
        }
        let _ = PROB_EPS; // tolerance constant shared with the scanner
    }
}
