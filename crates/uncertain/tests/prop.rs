//! Property tests for the uncertain-string model and the Lemma-2 transform.

use proptest::prelude::*;
use ustr_uncertain::{transform, UncertainString, SENTINEL};

fn uncertain_rows() -> impl Strategy<Value = Vec<Vec<(u8, f64)>>> {
    prop::collection::vec(prop::collection::vec((0u8..4, 1u32..60), 1..=3), 1..=12).prop_map(
        |rows| {
            rows.into_iter()
                .map(|mut row| {
                    row.sort_by_key(|&(c, _)| c);
                    row.dedup_by_key(|&mut (c, _)| c);
                    let total: u32 = row.iter().map(|&(_, w)| w).sum();
                    row.into_iter()
                        .map(|(c, w)| (b'a' + c, w as f64 / total as f64))
                        .collect()
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// World probabilities are a probability distribution and match the
    /// per-window evaluator.
    #[test]
    fn worlds_form_a_distribution(rows in uncertain_rows()) {
        let s = UncertainString::from_rows(rows).unwrap();
        let worlds = s.possible_worlds().unwrap();
        let total: f64 = worlds.iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for (w, p) in &worlds {
            prop_assert!((s.match_probability(w, 0) - p).abs() < 1e-12);
        }
    }

    /// Parse/display round-trips preserve the model.
    #[test]
    fn display_parse_round_trip(rows in uncertain_rows()) {
        let s = UncertainString::from_rows(rows).unwrap();
        let text = s.to_string();
        let s2 = UncertainString::parse(&text).unwrap();
        prop_assert_eq!(s.len(), s2.len());
        for i in 0..s.len() {
            for &(c, p) in s.position(i).choices() {
                prop_assert!((s2.position(i).prob_of(c) - p).abs() < 1e-9);
            }
        }
    }

    /// Lemma 2 both ways: (a) every probable window of every world occurs in
    /// the transform with correct alignment; (b) every transformed window
    /// maps back to a real window of the source with probability ≥ τmin.
    #[test]
    fn transform_is_sound_and_conservative(
        rows in uncertain_rows(),
        tau_pct in 10u32..40,
    ) {
        let s = UncertainString::from_rows(rows).unwrap();
        let tau = tau_pct as f64 / 100.0;
        let t = transform(&s, tau).unwrap();
        let text = t.special.chars();

        // (b) soundness: factor characters map to genuine choices, factor
        // prefixes stay above τmin under the upper-bound semantics (without
        // correlations the stored probabilities are exact).
        let mut k = 0usize;
        while k < text.len() {
            if text[k] == SENTINEL {
                k += 1;
                continue;
            }
            let src = t.source_pos(k).expect("factor char has a source");
            prop_assert!(s.position(src).prob_of(text[k]) > 0.0);
            prop_assert!((s.position(src).prob_of(text[k]) - t.special.prob_at(k)).abs() < 1e-12);
            k += 1;
        }
        // Factor prefix products ≥ τmin.
        let mut start = 0usize;
        for (i, &c) in text.iter().enumerate() {
            if c == SENTINEL {
                let mut prod = 1.0f64;
                for j in start..i {
                    prod *= t.special.prob_at(j);
                    prop_assert!(prod >= tau - 1e-9, "prefix below tau at {}..{}", start, j);
                }
                start = i + 1;
            }
        }

        // (a) conservation for the most probable world's windows.
        let world = s.most_probable_world();
        for w_start in 0..s.len() {
            for w_len in 1..=(s.len() - w_start).min(6) {
                let pattern = &world[w_start..w_start + w_len];
                if s.match_probability(pattern, w_start) >= tau - 1e-12 {
                    let found = (0..=text.len().saturating_sub(w_len)).any(|k| {
                        &text[k..k + w_len] == pattern
                            && (0..w_len).all(|d| t.source_pos(k + d) == Some(w_start + d))
                    });
                    prop_assert!(found, "window {}..{} lost", w_start, w_start + w_len);
                }
            }
        }
    }

    /// The expansion of the transform stays within the paper's
    /// O((1/τmin)²·n) bound (loose sanity check with the constant 4).
    #[test]
    fn transform_expansion_is_bounded(rows in uncertain_rows()) {
        let s = UncertainString::from_rows(rows).unwrap();
        let tau = 0.25f64;
        let t = transform(&s, tau).unwrap();
        let bound = 4.0 * (1.0 / tau) * (1.0 / tau) * (s.len() as f64) + 16.0;
        prop_assert!(
            (t.len() as f64) <= bound,
            "expansion {} exceeds bound {}",
            t.len(),
            bound
        );
    }
}
