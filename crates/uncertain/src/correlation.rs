//! Pairwise correlation between string positions (§3.3 of the paper).
//!
//! A character `c_k` at position `i` may be correlated with character `c_l`
//! at position `j`: its probability is `pr⁺` when the conditioning character
//! is taken at `j` and `pr⁻` otherwise. When position `j` falls *outside*
//! the substring window under consideration, the law of total probability
//! applies: `pr = pr(c_l at j)·pr⁺ + (1 − pr(c_l at j))·pr⁻`.
//!
//! (The paper's Case 2 displays `pr(c)⁺` in both terms — an evident typo; we
//! implement the total-probability form its example in Figure 4 actually
//! uses: for substring `qz`, `pr(z₃) = .6·.3 + .4·.4`.)

use std::collections::HashMap;

use crate::error::ModelError;

/// One pairwise correlation: the probability of `subject_char` at
/// `subject_pos` depends on whether `cond_char` occurs at `cond_pos`.
#[derive(Debug, Clone, PartialEq)]
pub struct Correlation {
    /// Position whose character probability is modified.
    pub subject_pos: usize,
    /// The character at `subject_pos` the correlation applies to.
    pub subject_char: u8,
    /// The conditioning position.
    pub cond_pos: usize,
    /// The conditioning character at `cond_pos`.
    pub cond_char: u8,
    /// Probability of the subject when the conditioning character occurs.
    pub p_present: f64,
    /// Probability of the subject when the conditioning character does not.
    pub p_absent: f64,
}

impl Correlation {
    /// Probability of the subject character given full knowledge of the
    /// window: `cond_choice` is the character chosen at `cond_pos` when that
    /// position lies inside the window, `None` when it lies outside (in
    /// which case `cond_marginal` = `pr(cond_char at cond_pos)` is used).
    #[inline]
    pub fn effective_prob(&self, cond_choice: Option<u8>, cond_marginal: f64) -> f64 {
        match cond_choice {
            Some(c) if c == self.cond_char => self.p_present,
            Some(_) => self.p_absent,
            None => cond_marginal * self.p_present + (1.0 - cond_marginal) * self.p_absent,
        }
    }

    /// Largest probability this correlation can assign to the subject under
    /// any conditioning outcome (the marginal is a convex combination, so
    /// the max of the two conditionals bounds it).
    #[inline]
    pub fn max_prob(&self) -> f64 {
        self.p_present.max(self.p_absent)
    }
}

/// A set of correlations indexed by `(subject position, subject character)`.
///
/// At most one correlation per subject is supported (matching the paper's
/// presentation); self-correlations are rejected.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CorrelationSet {
    by_subject: HashMap<(usize, u8), Correlation>,
}

impl CorrelationSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a correlation, validating its probabilities and rejecting
    /// duplicates or self-references.
    pub fn add(&mut self, corr: Correlation) -> Result<(), ModelError> {
        if corr.subject_pos == corr.cond_pos {
            return Err(ModelError::InvalidCorrelation {
                detail: format!("position {} conditions on itself", corr.subject_pos),
            });
        }
        for (name, p) in [("pr+", corr.p_present), ("pr-", corr.p_absent)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(ModelError::InvalidCorrelation {
                    detail: format!("{name} = {p} is outside [0, 1]"),
                });
            }
        }
        let key = (corr.subject_pos, corr.subject_char);
        if self.by_subject.contains_key(&key) {
            return Err(ModelError::InvalidCorrelation {
                detail: format!(
                    "duplicate correlation for character {:?} at position {}",
                    corr.subject_char as char, corr.subject_pos
                ),
            });
        }
        self.by_subject.insert(key, corr);
        Ok(())
    }

    /// The correlation whose subject is `(pos, ch)`, if any.
    #[inline]
    pub fn get(&self, pos: usize, ch: u8) -> Option<&Correlation> {
        self.by_subject.get(&(pos, ch))
    }

    /// Returns `true` when no correlations are registered.
    pub fn is_empty(&self) -> bool {
        self.by_subject.is_empty()
    }

    /// Number of registered correlations.
    pub fn len(&self) -> usize {
        self.by_subject.len()
    }

    /// Iterates over all correlations (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Correlation> {
        self.by_subject.values()
    }

    /// Returns `true` when any correlation's subject lies at `pos`.
    pub fn has_subject_at(&self, pos: usize) -> bool {
        self.by_subject.keys().any(|&(p, _)| p == pos)
    }

    /// Subjects at `pos` (used by the verification step of §4.1).
    pub fn subjects_at(&self, pos: usize) -> impl Iterator<Item = &Correlation> {
        self.by_subject
            .iter()
            .filter(move |&(&(p, _), _)| p == pos)
            .map(|(_, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corr() -> Correlation {
        Correlation {
            subject_pos: 2,
            subject_char: b'z',
            cond_pos: 0,
            cond_char: b'e',
            p_present: 0.3,
            p_absent: 0.4,
        }
    }

    #[test]
    fn figure_4_example() {
        // S[1]=e:.6,f:.4  S[2]=q:1  S[3]=z correlated with e1.
        let c = corr();
        // Substring "eqz": e chosen at the conditioning position.
        assert_eq!(c.effective_prob(Some(b'e'), 0.6), 0.3);
        // Substring "fqz": e not chosen.
        assert_eq!(c.effective_prob(Some(b'f'), 0.6), 0.4);
        // Substring "qz": conditioning position outside the window.
        let marginal = c.effective_prob(None, 0.6);
        assert!((marginal - (0.6 * 0.3 + 0.4 * 0.4)).abs() < 1e-12);
    }

    #[test]
    fn max_prob_bounds_every_outcome() {
        let c = corr();
        assert_eq!(c.max_prob(), 0.4);
        for choice in [Some(b'e'), Some(b'f'), None] {
            assert!(c.effective_prob(choice, 0.6) <= c.max_prob() + 1e-12);
        }
    }

    #[test]
    fn set_rejects_bad_correlations() {
        let mut set = CorrelationSet::new();
        let mut self_ref = corr();
        self_ref.cond_pos = 2;
        assert!(set.add(self_ref).is_err());
        let mut bad_prob = corr();
        bad_prob.p_present = 1.5;
        assert!(set.add(bad_prob).is_err());
        set.add(corr()).unwrap();
        assert!(set.add(corr()).is_err(), "duplicate subject rejected");
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn lookup_by_subject() {
        let mut set = CorrelationSet::new();
        set.add(corr()).unwrap();
        assert!(set.get(2, b'z').is_some());
        assert!(set.get(2, b'y').is_none());
        assert!(set.get(1, b'z').is_none());
        assert!(set.has_subject_at(2));
        assert!(!set.has_subject_at(0));
        assert_eq!(set.subjects_at(2).count(), 1);
    }
}
