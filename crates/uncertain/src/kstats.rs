//! Process-global kernel counters: how much candidate enumeration and
//! verification work the [`MatchKernel`](crate::MatchKernel) callers have
//! done, mirroring the paper's cost model (candidate count vs.
//! verification work, Biswas et al. §5).
//!
//! Plain relaxed atomics, zero dependencies. Hot loops batch their local
//! counts and call [`record_scan`] **once per scan**, so the per-candidate
//! cost of instrumentation is zero. Counters are cumulative for the
//! process lifetime; telemetry layers surface them via
//! [`kernel_totals`] (e.g. merged into an exposition snapshot under
//! `kernel.*` names).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static CANDIDATES: AtomicU64 = AtomicU64::new(0);
static VERIFIED: AtomicU64 = AtomicU64::new(0);
static KERNEL_NS: AtomicU64 = AtomicU64::new(0);
static PLANE_SCANS: AtomicU64 = AtomicU64::new(0);
static COLD_SCANS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Per-thread mirror of the same counts. `Cell` adds, no atomics: a
    // worker can delta [`thread_totals`] around one segment answer and
    // attribute exactly its own kernel work (e.g. to a trace span)
    // without any cross-thread traffic in the hot loop.
    static TL_CANDIDATES: Cell<u64> = const { Cell::new(0) };
    static TL_VERIFIED: Cell<u64> = const { Cell::new(0) };
    static TL_KERNEL_NS: Cell<u64> = const { Cell::new(0) };
    static TL_PLANE_SCANS: Cell<u64> = const { Cell::new(0) };
    static TL_COLD_SCANS: Cell<u64> = const { Cell::new(0) };
}

/// Which execution path performed a scan: the precomputed flat
/// probability plane, or the cold per-candidate DP fallback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanPath {
    /// Plane-backed verification (the paper's indexed fast path).
    Plane,
    /// Cold scan without plane reuse.
    Cold,
}

/// Cumulative kernel work since process start (or, via
/// [`thread_totals`], since the calling thread started).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelTotals {
    /// Candidate windows handed to the kernel for evaluation.
    pub candidates: u64,
    /// Candidates that survived verification (reported as hits).
    pub verified: u64,
    /// Nanoseconds spent inside instrumented kernel loops.
    pub kernel_ns: u64,
    /// Scans answered via the plane fast path.
    pub plane_scans: u64,
    /// Scans answered via the cold path.
    pub cold_scans: u64,
}

/// Adds one scan's batched counts: `candidates` windows evaluated,
/// `verified` of them kept, `ns` spent in the loop, attributed to `path`.
#[inline]
pub fn record_scan_on(path: ScanPath, candidates: u64, verified: u64, ns: u64) {
    // ordering: Relaxed — process-wide monotone counters; nothing synchronizes on them.
    CANDIDATES.fetch_add(candidates, Ordering::Relaxed);
    VERIFIED.fetch_add(verified, Ordering::Relaxed);
    KERNEL_NS.fetch_add(ns, Ordering::Relaxed);
    let path_cell = match path {
        ScanPath::Plane => &PLANE_SCANS,
        ScanPath::Cold => &COLD_SCANS,
    };
    // ordering: Relaxed — see above.
    path_cell.fetch_add(1, Ordering::Relaxed);
    TL_CANDIDATES.with(|c| c.set(c.get() + candidates));
    TL_VERIFIED.with(|c| c.set(c.get() + verified));
    TL_KERNEL_NS.with(|c| c.set(c.get().saturating_add(ns)));
    match path {
        ScanPath::Plane => TL_PLANE_SCANS.with(|c| c.set(c.get() + 1)),
        ScanPath::Cold => TL_COLD_SCANS.with(|c| c.set(c.get() + 1)),
    }
}

/// [`record_scan_on`] for callers that predate the plane/cold split;
/// attributed to the cold path.
#[inline]
pub fn record_scan(candidates: u64, verified: u64, ns: u64) {
    record_scan_on(ScanPath::Cold, candidates, verified, ns);
}

/// Current process-wide totals.
pub fn kernel_totals() -> KernelTotals {
    KernelTotals {
        // ordering: Relaxed — a racy snapshot is fine; each cell is a monotone reading.
        candidates: CANDIDATES.load(Ordering::Relaxed),
        verified: VERIFIED.load(Ordering::Relaxed),
        kernel_ns: KERNEL_NS.load(Ordering::Relaxed),
        // ordering: Relaxed — same racy-snapshot reasoning as the cells above.
        plane_scans: PLANE_SCANS.load(Ordering::Relaxed),
        cold_scans: COLD_SCANS.load(Ordering::Relaxed),
    }
}

/// The calling thread's cumulative totals. Deltas around a unit of work
/// executed on one thread attribute exactly that unit's kernel counts —
/// the scratch-passed handle trick that keeps hot loops atomic-free while
/// still feeding per-segment trace spans.
pub fn thread_totals() -> KernelTotals {
    KernelTotals {
        candidates: TL_CANDIDATES.with(Cell::get),
        verified: TL_VERIFIED.with(Cell::get),
        kernel_ns: TL_KERNEL_NS.with(Cell::get),
        plane_scans: TL_PLANE_SCANS.with(Cell::get),
        cold_scans: TL_COLD_SCANS.with(Cell::get),
    }
}

impl KernelTotals {
    /// Component-wise saturating difference (`self - earlier`): the work
    /// done between two [`thread_totals`] / [`kernel_totals`] readings.
    pub fn since(&self, earlier: &KernelTotals) -> KernelTotals {
        KernelTotals {
            candidates: self.candidates.saturating_sub(earlier.candidates),
            verified: self.verified.saturating_sub(earlier.verified),
            kernel_ns: self.kernel_ns.saturating_sub(earlier.kernel_ns),
            plane_scans: self.plane_scans.saturating_sub(earlier.plane_scans),
            cold_scans: self.cold_scans.saturating_sub(earlier.cold_scans),
        }
    }
}

/// Helper for callers that want wall-time in the batched record: elapsed
/// nanoseconds since `start`, saturated into a `u64`.
#[inline]
pub fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_scan_accumulates() {
        let before = kernel_totals();
        record_scan(10, 3, 1_000);
        record_scan(5, 5, 500);
        let after = kernel_totals();
        assert_eq!(after.candidates - before.candidates, 15);
        assert_eq!(after.verified - before.verified, 8);
        assert_eq!(after.kernel_ns - before.kernel_ns, 1_500);
    }

    #[test]
    fn scan_paths_split_plane_and_cold_counts() {
        let before = kernel_totals();
        record_scan_on(ScanPath::Plane, 4, 1, 10);
        record_scan_on(ScanPath::Cold, 6, 2, 20);
        record_scan_on(ScanPath::Plane, 2, 2, 30);
        let d = kernel_totals().since(&before);
        assert_eq!(d.plane_scans, 2);
        assert_eq!(d.cold_scans, 1);
        assert_eq!(d.candidates, 12);
        assert_eq!(d.verified, 5);
        assert_eq!(d.kernel_ns, 60);
    }

    #[test]
    fn thread_totals_are_isolated_per_thread() {
        let base = thread_totals();
        record_scan_on(ScanPath::Plane, 7, 3, 100);
        let mine = thread_totals().since(&base);
        assert_eq!(mine.candidates, 7);
        assert_eq!(mine.plane_scans, 1);
        // Another thread's work never shows up in this thread's cells.
        std::thread::spawn(|| {
            let base = thread_totals();
            record_scan_on(ScanPath::Cold, 100, 50, 1_000);
            let theirs = thread_totals().since(&base);
            assert_eq!(theirs.candidates, 100);
            assert_eq!(theirs.cold_scans, 1);
            assert_eq!(theirs.plane_scans, 0);
        })
        .join()
        .unwrap();
        let after = thread_totals().since(&base);
        assert_eq!(after.candidates, 7);
        assert_eq!(after.cold_scans, 0);
    }
}
