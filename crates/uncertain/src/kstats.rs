//! Process-global kernel counters: how much candidate enumeration and
//! verification work the [`MatchKernel`](crate::MatchKernel) callers have
//! done, mirroring the paper's cost model (candidate count vs.
//! verification work, Biswas et al. §5).
//!
//! Plain relaxed atomics, zero dependencies. Hot loops batch their local
//! counts and call [`record_scan`] **once per scan**, so the per-candidate
//! cost of instrumentation is zero. Counters are cumulative for the
//! process lifetime; telemetry layers surface them via
//! [`kernel_totals`] (e.g. merged into an exposition snapshot under
//! `kernel.*` names).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static CANDIDATES: AtomicU64 = AtomicU64::new(0);
static VERIFIED: AtomicU64 = AtomicU64::new(0);
static KERNEL_NS: AtomicU64 = AtomicU64::new(0);

/// Cumulative kernel work since process start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelTotals {
    /// Candidate windows handed to the kernel for evaluation.
    pub candidates: u64,
    /// Candidates that survived verification (reported as hits).
    pub verified: u64,
    /// Nanoseconds spent inside instrumented kernel loops.
    pub kernel_ns: u64,
}

/// Adds one scan's batched counts: `candidates` windows evaluated,
/// `verified` of them kept, `ns` spent in the loop.
#[inline]
pub fn record_scan(candidates: u64, verified: u64, ns: u64) {
    // ordering: Relaxed — process-wide monotone counters; nothing synchronizes on them.
    CANDIDATES.fetch_add(candidates, Ordering::Relaxed);
    VERIFIED.fetch_add(verified, Ordering::Relaxed);
    KERNEL_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Current totals.
pub fn kernel_totals() -> KernelTotals {
    KernelTotals {
        // ordering: Relaxed — a racy snapshot is fine; each cell is a monotone reading.
        candidates: CANDIDATES.load(Ordering::Relaxed),
        verified: VERIFIED.load(Ordering::Relaxed),
        kernel_ns: KERNEL_NS.load(Ordering::Relaxed),
    }
}

/// Helper for callers that want wall-time in the batched record: elapsed
/// nanoseconds since `start`, saturated into a `u64`.
#[inline]
pub fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_scan_accumulates() {
        let before = kernel_totals();
        record_scan(10, 3, 1_000);
        record_scan(5, 5, 500);
        let after = kernel_totals();
        assert_eq!(after.candidates - before.candidates, 15);
        assert_eq!(after.verified - before.verified, 8);
        assert_eq!(after.kernel_ns - before.kernel_ns, 1_500);
    }
}
