//! The general uncertain string (§3.1) with exact probability evaluation.

use std::fmt;

use crate::{
    chars::UncertainChar, correlation::CorrelationSet, error::ModelError,
    special::SpecialUncertainString,
};

/// A character-level uncertain string: a sequence of per-position character
/// distributions, optionally with pairwise correlations between positions.
///
/// ```
/// use ustr_uncertain::UncertainString;
/// let s = UncertainString::parse("A:.3,B:.4,D:.3 | A:.6,C:.4 | D | A:.5,C:.5 | A").unwrap();
/// assert_eq!(s.len(), 5);
/// // Figure 1: world "aadaa" has probability .3*.6*1*.5*1 = .09
/// assert!((s.match_probability(b"ADAA", 1) - 0.3).abs() < 1e-12);
/// assert!((s.match_probability(b"BAD", 0) - 0.24).abs() < 1e-12);
/// assert_eq!(s.match_probability(b"Z", 0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainString {
    positions: Vec<UncertainChar>,
    correlations: CorrelationSet,
}

impl UncertainString {
    /// Builds an uncertain string from validated positions.
    pub fn new(positions: Vec<UncertainChar>) -> Self {
        Self {
            positions,
            correlations: CorrelationSet::new(),
        }
    }

    /// Builds a fully deterministic uncertain string from plain bytes.
    pub fn deterministic(text: &[u8]) -> Self {
        Self::new(
            text.iter()
                .map(|&b| UncertainChar::deterministic(b))
                .collect(),
        )
    }

    /// Builds from raw `(char, prob)` rows, validating each position.
    pub fn from_rows(rows: Vec<Vec<(u8, f64)>>) -> Result<Self, ModelError> {
        let positions = rows
            .into_iter()
            .enumerate()
            .map(|(i, row)| UncertainChar::new(row, i))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::new(positions))
    }

    /// Attaches correlations, validating that every referenced position and
    /// character exists.
    pub fn set_correlations(&mut self, correlations: CorrelationSet) -> Result<(), ModelError> {
        for c in correlations.iter() {
            for (pos, ch, role) in [
                (c.subject_pos, c.subject_char, "subject"),
                (c.cond_pos, c.cond_char, "condition"),
            ] {
                let valid = self.positions.get(pos).is_some_and(|u| u.prob_of(ch) > 0.0);
                if !valid {
                    return Err(ModelError::InvalidCorrelation {
                        detail: format!(
                            "{role} character {:?} does not occur at position {pos}",
                            ch as char
                        ),
                    });
                }
            }
        }
        self.correlations = correlations;
        Ok(())
    }

    /// The attached correlations.
    pub fn correlations(&self) -> &CorrelationSet {
        &self.correlations
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` for a zero-length string.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The distribution at position `i`.
    pub fn position(&self, i: usize) -> &UncertainChar {
        &self.positions[i]
    }

    /// All positions.
    pub fn positions(&self) -> &[UncertainChar] {
        &self.positions
    }

    /// Total number of `(char, prob)` pairs across all positions (the
    /// paper's "total number of characters", which can exceed `len`).
    pub fn total_choices(&self) -> usize {
        self.positions.iter().map(|p| p.num_choices()).sum()
    }

    /// Fraction of positions with more than one choice (the θ of §8.1).
    pub fn uncertain_fraction(&self) -> f64 {
        if self.positions.is_empty() {
            return 0.0;
        }
        let uncertain = self
            .positions
            .iter()
            .filter(|p| p.num_choices() > 1)
            .count();
        uncertain as f64 / self.positions.len() as f64
    }

    /// `true` when position `i` is deterministic *and* not the subject of any
    /// correlation (so its contribution to any window is exactly 1). The
    /// factor transform uses this to extend factors through deterministic
    /// runs instead of restarting at every position.
    pub fn is_effectively_deterministic(&self, i: usize) -> bool {
        let p = &self.positions[i];
        p.is_deterministic() && !self.correlations.has_subject_at(i)
    }

    /// Exact probability that the deterministic `pattern` occurs at `pos`
    /// (§3.2), honoring correlations per §3.3: conditioning characters inside
    /// the window `[pos, pos + |pattern|)` use the pattern's choice; those
    /// outside use the law of total probability. Returns 0 when the window
    /// leaves the string.
    pub fn match_probability(&self, pattern: &[u8], pos: usize) -> f64 {
        self.log_match_probability(pattern, pos).exp()
    }

    /// Natural logarithm of [`Self::match_probability`] (−∞ for impossible
    /// matches); products over long windows stay representable in log space.
    pub fn log_match_probability(&self, pattern: &[u8], pos: usize) -> f64 {
        let m = pattern.len();
        if pos + m > self.positions.len() {
            return f64::NEG_INFINITY;
        }
        if m == 0 {
            return 0.0;
        }
        let mut log_p = 0.0;
        for (k, &ch) in pattern.iter().enumerate() {
            let i = pos + k;
            let base = self.positions[i].prob_of(ch);
            if base <= 0.0 {
                return f64::NEG_INFINITY;
            }
            let p = match self.correlations.get(i, ch) {
                Some(corr) => {
                    let j = corr.cond_pos;
                    let in_window = j >= pos && j < pos + m;
                    if in_window {
                        corr.effective_prob(Some(pattern[j - pos]), 0.0)
                    } else {
                        let marginal = self.positions[j].prob_of(corr.cond_char);
                        corr.effective_prob(None, marginal)
                    }
                }
                None => base,
            };
            if p <= 0.0 {
                return f64::NEG_INFINITY;
            }
            log_p += p.ln();
        }
        log_p
    }

    /// The single most probable character at every position.
    pub fn most_probable_world(&self) -> Vec<u8> {
        self.positions.iter().map(|p| p.most_probable().0).collect()
    }

    /// Converts to a [`SpecialUncertainString`] when every position has
    /// exactly one choice (Definition 1), or `None` otherwise.
    pub fn to_special(&self) -> Option<SpecialUncertainString> {
        let mut chars = Vec::with_capacity(self.positions.len());
        let mut probs = Vec::with_capacity(self.positions.len());
        for p in &self.positions {
            if p.num_choices() != 1 {
                return None;
            }
            let (c, pr) = p.choices()[0];
            chars.push(c);
            probs.push(pr);
        }
        Some(SpecialUncertainString::from_raw(chars, probs))
    }

    /// Parses the text format: positions separated by `|`, choices by `,`,
    /// each choice `CHAR:PROB` or a bare `CHAR` (probability 1). Whitespace
    /// around tokens is ignored; probabilities accept the `.5` shorthand.
    pub fn parse(input: &str) -> Result<Self, ModelError> {
        let mut rows = Vec::new();
        for (idx, chunk) in input.split('|').enumerate() {
            let chunk = chunk.trim();
            if chunk.is_empty() {
                return Err(ModelError::Parse {
                    detail: format!("position {idx} is empty"),
                });
            }
            let mut row = Vec::new();
            for token in chunk.split(',') {
                let token = token.trim();
                let (ch_str, prob) = match token.split_once(':') {
                    Some((c, p)) => {
                        let p = p.trim();
                        let normalized = if p.starts_with('.') {
                            format!("0{p}")
                        } else {
                            p.to_string()
                        };
                        let prob: f64 = normalized.parse().map_err(|_| ModelError::Parse {
                            detail: format!("bad probability {p:?} at position {idx}"),
                        })?;
                        (c.trim(), prob)
                    }
                    None => (token, 1.0),
                };
                let bytes = ch_str.as_bytes();
                if bytes.len() != 1 {
                    return Err(ModelError::Parse {
                        detail: format!(
                            "expected a single character, got {ch_str:?} at position {idx}"
                        ),
                    });
                }
                row.push((bytes[0], prob));
            }
            rows.push(row);
        }
        Self::from_rows(rows)
    }
}

impl fmt::Display for UncertainString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.positions.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            for (k, &(c, pr)) in p.choices().iter().enumerate() {
                if k > 0 {
                    write!(f, ",")?;
                }
                if pr >= 1.0 - crate::PROB_EPS && p.choices().len() == 1 {
                    write!(f, "{}", c as char)?;
                } else {
                    write!(f, "{}:{}", c as char, pr)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::Correlation;

    /// The string of Figure 1.
    fn figure_1() -> UncertainString {
        UncertainString::parse("a:.3,b:.4,d:.3 | a:.6,c:.4 | d | a:.5,c:.5 | a").unwrap()
    }

    #[test]
    fn parse_round_trips() {
        let s = figure_1();
        let text = s.to_string();
        let s2 = UncertainString::parse(&text).unwrap();
        assert_eq!(s2.len(), s.len());
        for i in 0..s.len() {
            assert_eq!(s.position(i), s2.position(i));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(UncertainString::parse("").is_err());
        assert!(UncertainString::parse("A | | B").is_err());
        assert!(UncertainString::parse("AB:0.5").is_err());
        assert!(UncertainString::parse("A:x").is_err());
        assert!(UncertainString::parse("A:1.5").is_err());
    }

    #[test]
    fn figure_1_world_probabilities() {
        let s = figure_1();
        // w1 = aadaa: .3*.6*1*.5*1 = .09
        assert!((s.match_probability(b"aadaa", 0) - 0.09).abs() < 1e-12);
        // w6 = badca? Figure labels aside: badca = .4*.6*1*.5*1 = .12
        assert!((s.match_probability(b"badaa", 0) - 0.12).abs() < 1e-12);
        // dcdca = .3*.4*1*.5*1 = .06
        assert!((s.match_probability(b"dcdca", 0) - 0.06).abs() < 1e-12);
    }

    #[test]
    fn figure_3_at_query() {
        // The motivating example: "AT" at positions 7 and 9 (1-based) of the
        // At4g15440 fragment; position 9 has probability 0.5, position 7 only
        // 0.4 * 0.3 = 0.12.
        let s = UncertainString::parse(
            "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 | \
             I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
        )
        .unwrap();
        // 0-based positions 6 and 8.
        assert!((s.match_probability(b"AT", 6) - 0.4 * 0.1).abs() < 1e-12);
        assert!((s.match_probability(b"AT", 8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_bounds_window_has_zero_probability() {
        let s = figure_1();
        assert_eq!(s.match_probability(b"aa", 4), 0.0);
        assert_eq!(s.match_probability(b"a", 5), 0.0);
        assert_eq!(s.match_probability(b"", 5), 1.0);
    }

    #[test]
    fn sfpq_example_from_section_3_2() {
        let s = UncertainString::parse(
            "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 | \
             I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
        )
        .unwrap();
        // "SFPQ has probability of occurrence 0.7 × 1 × 1 × 0.5 = 0.35 at
        // position 2" (1-based) — 0-based position 1.
        assert!((s.match_probability(b"SFPQ", 1) - 0.35).abs() < 1e-12);
    }

    #[test]
    fn correlation_inside_and_outside_window() {
        // Figure 4: S[1]=e:.6,f:.4; S[2]=q:1; S[3]=z with base prob
        // (placeholder .36 = marginal) correlated with e at S[1].
        let mut s = UncertainString::parse("e:.6,f:.4 | q | z:.36").unwrap();
        let mut corrs = CorrelationSet::new();
        corrs
            .add(Correlation {
                subject_pos: 2,
                subject_char: b'z',
                cond_pos: 0,
                cond_char: b'e',
                p_present: 0.3,
                p_absent: 0.4,
            })
            .unwrap();
        s.set_correlations(corrs).unwrap();
        // eqz: conditioning char chosen.
        assert!((s.match_probability(b"eqz", 0) - 0.6 * 1.0 * 0.3).abs() < 1e-12);
        // fqz: conditioning char not chosen.
        assert!((s.match_probability(b"fqz", 0) - 0.4 * 1.0 * 0.4).abs() < 1e-12);
        // qz: conditioning position outside the window → total probability.
        let expected = 1.0 * (0.6 * 0.3 + 0.4 * 0.4);
        assert!((s.match_probability(b"qz", 1) - expected).abs() < 1e-12);
    }

    #[test]
    fn correlation_validation() {
        let mut s = UncertainString::parse("a:.5,b:.5 | c").unwrap();
        let mut corrs = CorrelationSet::new();
        corrs
            .add(Correlation {
                subject_pos: 1,
                subject_char: b'c',
                cond_pos: 0,
                cond_char: b'z', // not a choice at position 0
                p_present: 0.5,
                p_absent: 0.5,
            })
            .unwrap();
        assert!(s.set_correlations(corrs).is_err());
    }

    #[test]
    fn effectively_deterministic_accounts_for_correlations() {
        let mut s = UncertainString::parse("a:.5,b:.5 | c | d").unwrap();
        assert!(!s.is_effectively_deterministic(0));
        assert!(s.is_effectively_deterministic(1));
        let mut corrs = CorrelationSet::new();
        corrs
            .add(Correlation {
                subject_pos: 1,
                subject_char: b'c',
                cond_pos: 0,
                cond_char: b'a',
                p_present: 0.9,
                p_absent: 0.8,
            })
            .unwrap();
        s.set_correlations(corrs).unwrap();
        assert!(!s.is_effectively_deterministic(1), "correlation subject");
        assert!(s.is_effectively_deterministic(2));
    }

    #[test]
    fn deterministic_constructor() {
        let s = UncertainString::deterministic(b"banana");
        assert_eq!(s.len(), 6);
        assert!((s.match_probability(b"nan", 2) - 1.0).abs() < 1e-12);
        assert_eq!(s.match_probability(b"nab", 2), 0.0);
        assert_eq!(s.uncertain_fraction(), 0.0);
        assert_eq!(s.most_probable_world(), b"banana");
    }

    #[test]
    fn to_special_requires_single_choices() {
        let s = UncertainString::parse("a:.4 | b:.9 | c").unwrap();
        let sp = s.to_special().unwrap();
        assert_eq!(sp.chars(), b"abc");
        assert_eq!(sp.probs(), &[0.4, 0.9, 1.0]);
        assert!(figure_1().to_special().is_none());
    }

    #[test]
    fn total_choices_counts_pairs() {
        assert_eq!(figure_1().total_choices(), 9); // the paper's example: 9 characters, 5 positions
    }
}
