//! A single uncertain position: a pdf over characters.

use crate::{error::ModelError, transform::SENTINEL, PROB_EPS};

/// One position of an uncertain string: a non-empty set of
/// `(character, probability)` choices with probabilities in `(0, 1]` summing
/// to at most 1 (strictly-less sums model unenumerated rare characters,
/// which real annotation pipelines produce; see
/// [`UncertainChar::validate_strict`] for the exact-sum check).
///
/// Choices are kept sorted by character byte.
///
/// ```
/// use ustr_uncertain::UncertainChar;
/// let c = UncertainChar::new(vec![(b'B', 0.3), (b'A', 0.7)], 0).unwrap();
/// assert_eq!(c.prob_of(b'A'), 0.7);
/// assert_eq!(c.prob_of(b'Z'), 0.0);
/// assert_eq!(c.most_probable(), (b'A', 0.7));
/// assert!(!c.is_deterministic());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainChar {
    choices: Vec<(u8, f64)>,
}

impl UncertainChar {
    /// Builds a validated uncertain character. `position` is only used in
    /// error messages.
    pub fn new(mut choices: Vec<(u8, f64)>, position: usize) -> Result<Self, ModelError> {
        if choices.is_empty() {
            return Err(ModelError::NoChoices { position });
        }
        choices.sort_unstable_by_key(|&(c, _)| c);
        let mut sum = 0.0;
        for w in choices.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(ModelError::DuplicateChar {
                    position,
                    ch: w[0].0,
                });
            }
        }
        for &(c, p) in &choices {
            if c == SENTINEL {
                return Err(ModelError::ReservedByte { position });
            }
            if !(p > 0.0 && p <= 1.0 + PROB_EPS) {
                return Err(ModelError::InvalidProbability {
                    position,
                    ch: c,
                    prob: p,
                });
            }
            sum += p;
        }
        if sum > 1.0 + 1e-6 {
            return Err(ModelError::ProbabilitySumExceedsOne { position, sum });
        }
        Ok(Self { choices })
    }

    /// A deterministic position: one character with probability 1.
    pub fn deterministic(ch: u8) -> Self {
        debug_assert_ne!(ch, SENTINEL, "sentinel byte is reserved");
        Self {
            choices: vec![(ch, 1.0)],
        }
    }

    /// Checks that the probabilities sum to exactly 1 (within tolerance), as
    /// §3.1 of the paper requires.
    pub fn validate_strict(&self, position: usize) -> Result<(), ModelError> {
        let sum: f64 = self.choices.iter().map(|&(_, p)| p).sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(ModelError::ProbabilitySumExceedsOne { position, sum });
        }
        Ok(())
    }

    /// The choices, sorted by character byte.
    pub fn choices(&self) -> &[(u8, f64)] {
        &self.choices
    }

    /// Number of character choices.
    pub fn num_choices(&self) -> usize {
        self.choices.len()
    }

    /// Probability of `ch` at this position (0 when absent).
    pub fn prob_of(&self, ch: u8) -> f64 {
        match self.choices.binary_search_by_key(&ch, |&(c, _)| c) {
            Ok(i) => self.choices[i].1,
            Err(_) => 0.0,
        }
    }

    /// The most probable choice (leftmost byte on ties).
    pub fn most_probable(&self) -> (u8, f64) {
        let mut best = self.choices[0];
        for &(c, p) in &self.choices[1..] {
            if p > best.1 {
                best = (c, p);
            }
        }
        best
    }

    /// A position is deterministic when it has exactly one choice with
    /// probability 1.
    pub fn is_deterministic(&self) -> bool {
        self.choices.len() == 1 && self.choices[0].1 >= 1.0 - PROB_EPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_inputs() {
        assert!(matches!(
            UncertainChar::new(vec![], 2),
            Err(ModelError::NoChoices { position: 2 })
        ));
        assert!(matches!(
            UncertainChar::new(vec![(b'A', 0.0)], 0),
            Err(ModelError::InvalidProbability { .. })
        ));
        assert!(matches!(
            UncertainChar::new(vec![(b'A', -0.1)], 0),
            Err(ModelError::InvalidProbability { .. })
        ));
        assert!(matches!(
            UncertainChar::new(vec![(b'A', 1.2)], 0),
            Err(ModelError::InvalidProbability { .. })
        ));
        assert!(matches!(
            UncertainChar::new(vec![(b'A', 0.5), (b'A', 0.5)], 1),
            Err(ModelError::DuplicateChar { .. })
        ));
        assert!(matches!(
            UncertainChar::new(vec![(b'A', 0.7), (b'B', 0.7)], 0),
            Err(ModelError::ProbabilitySumExceedsOne { .. })
        ));
        assert!(matches!(
            UncertainChar::new(vec![(0u8, 1.0)], 0),
            Err(ModelError::ReservedByte { .. })
        ));
    }

    #[test]
    fn accepts_under_unit_sums_but_strict_rejects() {
        let c = UncertainChar::new(vec![(b'A', 0.4), (b'B', 0.3)], 0).unwrap();
        assert!(c.validate_strict(0).is_err());
        let c = UncertainChar::new(vec![(b'A', 0.4), (b'B', 0.6)], 0).unwrap();
        assert!(c.validate_strict(0).is_ok());
    }

    #[test]
    fn determinism() {
        assert!(UncertainChar::deterministic(b'X').is_deterministic());
        let c = UncertainChar::new(vec![(b'A', 0.999999999999)], 0).unwrap();
        assert!(c.is_deterministic());
        let c = UncertainChar::new(vec![(b'A', 0.9)], 0).unwrap();
        assert!(!c.is_deterministic());
    }

    #[test]
    fn choices_sorted_and_queryable() {
        let c = UncertainChar::new(vec![(b'C', 0.2), (b'A', 0.5), (b'B', 0.3)], 0).unwrap();
        let bytes: Vec<u8> = c.choices().iter().map(|&(b, _)| b).collect();
        assert_eq!(bytes, vec![b'A', b'B', b'C']);
        assert_eq!(c.prob_of(b'B'), 0.3);
        assert_eq!(c.num_choices(), 3);
    }

    #[test]
    fn most_probable_breaks_ties_leftmost() {
        let c = UncertainChar::new(vec![(b'B', 0.5), (b'A', 0.5)], 0).unwrap();
        assert_eq!(c.most_probable(), (b'A', 0.5));
    }
}
