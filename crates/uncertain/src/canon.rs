//! Canonical floating-point operations for the probability domain.
//!
//! Every executor in this workspace promises **bit-identical** answers
//! (see `INVARIANTS.md`): the indexed path, the plane-backed scan, and the
//! sequential reference all report the same `f64`s for the same query.
//! That only holds if the underlying float operations are written once.
//! This module is that single home: threshold validation, log-domain
//! conversion, tolerance comparison, and multi-occurrence combination all
//! live here, and the `float-determinism` lint (`ustr-lint`) rejects raw
//! float arithmetic against literals anywhere else outside
//! `ustr-uncertain`'s model modules.
//!
//! Everything here is `#[inline]` and delegates straight to the `f64`
//! primitive — the point is one definition, not a different numeric
//! result. Changing any formula in this file is a determinism-contract
//! change and must be called out as such.

use crate::PROB_EPS;

/// Absolute tolerance for comparing query thresholds themselves (e.g.
/// τ against the construction-time floor). Distinct from [`PROB_EPS`],
/// which absorbs rounding in *computed* probabilities; thresholds come in
/// exact but may be re-derived (quantized, serialized) along the way.
pub const TAU_TOLERANCE: f64 = 1e-12;

/// Natural log of a probability. The one sanctioned entry into the log
/// domain: probability products are evaluated as sums of these.
#[inline]
pub fn ln(p: f64) -> f64 {
    p.ln()
}

/// Inverse of [`ln`]: back from the log domain to a linear probability.
#[inline]
pub fn exp(log_p: f64) -> f64 {
    log_p.exp()
}

/// A query (or construction) threshold is valid iff it lies in `(0, 1]`.
#[inline]
pub fn valid_tau(tau: f64) -> bool {
    tau > 0.0 && tau <= 1.0
}

/// An approximation parameter ε is valid iff it lies in `(0, 1)` (ε = 1
/// would retain nothing; ε = 0 is the exact index).
#[inline]
pub fn valid_epsilon(epsilon: f64) -> bool {
    epsilon > 0.0 && epsilon < 1.0
}

/// Whether τ falls below the construction-time floor, up to
/// [`TAU_TOLERANCE`] (a τ exactly at the floor is allowed).
#[inline]
pub fn below_floor(tau: f64, tau_min: f64) -> bool {
    tau < tau_min - TAU_TOLERANCE
}

/// Combined check used by executors whose floor is baked in: τ is at or
/// above `tau_min` (up to [`TAU_TOLERANCE`]) and at most 1.
#[inline]
pub fn tau_in_range(tau: f64, tau_min: f64) -> bool {
    tau >= tau_min - TAU_TOLERANCE && tau <= 1.0
}

/// Linear-domain threshold test with the canonical tolerance: `p ≥ τ` up
/// to [`PROB_EPS`]. The log-domain twin is
/// [`log_meets_threshold`](crate::log_meets_threshold).
#[inline]
pub fn meets_threshold(p: f64, tau: f64) -> bool {
    p >= tau - PROB_EPS
}

/// Whether a probability contribution is strictly positive (a zero factor
/// annihilates a product, so scanners prune on this).
#[inline]
pub fn is_positive_prob(p: f64) -> bool {
    p > 0.0
}

/// Whether a stored probability weight is negative (snapshot validation:
/// `NaN` is deliberately *not* negative — it is caught by finiteness
/// checks so corrupt-state diagnostics stay precise).
#[inline]
pub fn is_negative(p: f64) -> bool {
    p < 0.0
}

/// Independent-event OR over occurrence probabilities: `1 − Π(1 − pᵢ)`.
#[inline]
pub fn independent_or(probs: impl Iterator<Item = f64>) -> f64 {
    1.0 - probs.map(|p| 1.0 - p).product::<f64>()
}

/// Bytes → mebibytes for telemetry display. Lives here so display math
/// cannot be confused with probability math: the divisor is an exact
/// power of two, so the conversion is lossless in the exponent.
#[inline]
pub fn bytes_to_mib(bytes: usize) -> f64 {
    const BYTES_PER_MIB: f64 = (1u64 << 20) as f64;
    bytes as f64 / BYTES_PER_MIB
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_validation_bounds() {
        assert!(valid_tau(1.0));
        assert!(valid_tau(f64::MIN_POSITIVE));
        assert!(!valid_tau(0.0));
        assert!(!valid_tau(1.0 + f64::EPSILON));
        assert!(!valid_tau(f64::NAN));
    }

    #[test]
    fn epsilon_validation_bounds() {
        assert!(valid_epsilon(0.5));
        assert!(!valid_epsilon(0.0));
        assert!(!valid_epsilon(1.0));
        assert!(!valid_epsilon(f64::NAN));
    }

    #[test]
    fn floor_checks_tolerate_exact_floor() {
        assert!(!below_floor(0.1, 0.1));
        assert!(below_floor(0.0999, 0.1));
        assert!(tau_in_range(0.1, 0.1));
        assert!(!tau_in_range(0.0999, 0.1));
        assert!(!tau_in_range(1.0 + f64::EPSILON, 0.1));
    }

    #[test]
    fn log_domain_round_trip_is_the_primitive() {
        // Bit-identity with the raw primitives, not approximate equality:
        // call sites were rewritten to route through canon and must not
        // change a single result bit.
        for &p in &[0.3, 0.5, 1.0, 1e-12] {
            assert_eq!(ln(p).to_bits(), p.ln().to_bits());
            assert_eq!(exp(ln(p)).to_bits(), p.ln().exp().to_bits());
        }
    }

    #[test]
    fn independent_or_matches_closed_form() {
        let probs = [0.5, 0.5];
        assert_eq!(independent_or(probs.iter().copied()), 0.75);
        assert_eq!(independent_or(std::iter::empty()), 0.0);
    }

    #[test]
    fn mib_conversion_is_exact_for_whole_mib() {
        assert_eq!(bytes_to_mib(1 << 20), 1.0);
        assert_eq!(bytes_to_mib(3 << 19), 1.5);
        assert_eq!(bytes_to_mib(0), 0.0);
    }
}
