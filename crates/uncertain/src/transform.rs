//! The Lemma-2 transformation (§5.1): reduce a general uncertain string to a
//! special uncertain string by concatenating *extended maximal factors*.
//!
//! A **maximal factor** at position `i` w.r.t. `τmin` (Definition 2) is a
//! maximal-length deterministic string that, aligned at `i`, has occurrence
//! probability ≥ `τmin`. Concatenating, for enough start positions, all
//! maximal factors — each followed by a separator — yields a special
//! uncertain string `X` such that every deterministic substring of `S` with
//! occurrence probability ≥ `τmin` occurs inside `X`, with the `Pos` array
//! mapping `X`-offsets back to `S`-offsets.
//!
//! **Extension optimization** (our realisation of Amir et al.'s *extended*
//! maximal factors): a factor start is only placed at position `i` when
//! `i = 0` or position `i−1` is not effectively deterministic (single
//! character, probability 1, not a correlation subject). Runs of
//! deterministic characters thus extend factors leftwards instead of
//! spawning suffix-sharing restarts. Soundness: if `p` matches at `j` with
//! probability ≥ τmin and `r ≤ j` is the latest start, every character in
//! `[r, j)` has probability exactly 1, so the factor at `r` following `p`'s
//! choices keeps all its prefixes at probability ≥ τmin and extends through
//! the whole occurrence.
//!
//! **Correlation handling**: during enumeration a correlated character
//! contributes `max(pr⁺, pr⁻)` — an upper bound on every conditioning
//! outcome (the marginal is a convex combination). Stored factor
//! probabilities are therefore *upper bounds* on true window probabilities;
//! the index layer uses them for RMQ ordering/pruning (never missing a true
//! match) and re-verifies candidates exactly against the original string.

use crate::{
    error::ModelError, log_meets_threshold, special::SpecialUncertainString,
    string::UncertainString,
};

/// Separator byte between factors in the transformed string. Reserved: it
/// may not appear as an uncertain-string character.
pub const SENTINEL: u8 = 0;

/// `Pos` value marking separator positions.
pub const NO_POSITION: u32 = u32::MAX;

/// Options controlling the transformation.
#[derive(Debug, Clone, Default)]
pub struct TransformOptions {
    /// Abort with [`ModelError::TransformTooLarge`] when the output exceeds
    /// this many characters (`None` = unbounded). The paper bounds the
    /// output by O((1/τmin)²·n); this guard catches pathological inputs.
    pub max_output_len: Option<usize>,
}

/// Result of the Lemma-2 transformation.
#[derive(Debug, Clone)]
pub struct Transformed {
    /// The special uncertain string `X` (factors joined by [`SENTINEL`]
    /// positions carrying probability 1).
    pub special: SpecialUncertainString,
    /// `pos[k]` = position in the source string of the k-th character of
    /// `X`; [`NO_POSITION`] at separators.
    pub pos: Vec<u32>,
    /// The construction-time threshold.
    pub tau_min: f64,
    /// Number of factors emitted.
    pub num_factors: usize,
    /// Length of the source uncertain string.
    pub source_len: usize,
}

impl Transformed {
    /// Output length (characters of `X`, separators included).
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Returns `true` when no factors were emitted.
    pub fn is_empty(&self) -> bool {
        self.num_factors == 0
    }

    /// Source position of `X`-offset `k`, or `None` at separators.
    #[inline]
    pub fn source_pos(&self, k: usize) -> Option<usize> {
        match self.pos[k] {
            NO_POSITION => None,
            p => Some(p as usize),
        }
    }

    /// Expansion ratio |X| / |S| (the space constant of §8.7).
    pub fn expansion(&self) -> f64 {
        if self.source_len == 0 {
            return 0.0;
        }
        self.pos.len() as f64 / self.source_len as f64
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        self.special.chars().len()
            + std::mem::size_of_val(self.special.probs())
            + self.pos.capacity() * std::mem::size_of::<u32>()
    }
}

/// Transforms `s` into a special uncertain string w.r.t. `tau_min`
/// (see the module documentation). `tau_min` must lie in `(0, 1]`.
///
/// ```
/// use ustr_uncertain::{transform, UncertainString};
/// let s = UncertainString::parse("Q:.7,S:.3 | Q:.3,P:.7 | P | A:.4,F:.3,P:.2,Q:.1").unwrap();
/// let t = transform(&s, 0.1).unwrap();
/// // Every probable substring of s occurs in the transformed text, e.g. "QPP".
/// let text = t.special.chars();
/// assert!(text.windows(3).any(|w| w == b"QPP"));
/// ```
pub fn transform(s: &UncertainString, tau_min: f64) -> Result<Transformed, ModelError> {
    transform_with_options(s, tau_min, &TransformOptions::default())
}

/// [`transform`] with explicit [`TransformOptions`].
pub fn transform_with_options(
    s: &UncertainString,
    tau_min: f64,
    options: &TransformOptions,
) -> Result<Transformed, ModelError> {
    if !(tau_min > 0.0 && tau_min <= 1.0) {
        return Err(ModelError::InvalidThreshold { value: tau_min });
    }
    let n = s.len();
    let log_tau = tau_min.ln();
    let mut out_chars: Vec<u8> = Vec::new();
    let mut out_probs: Vec<f64> = Vec::new();
    let mut out_pos: Vec<u32> = Vec::new();
    let mut num_factors = 0usize;

    // Upper-bound probability of choosing `ch` at position `q` (see module
    // docs for why correlated characters use max(pr+, pr-)).
    let upper_prob = |q: usize, ch: u8, base: f64| -> f64 {
        match s.correlations().get(q, ch) {
            Some(corr) => corr.max_prob(),
            None => base,
        }
    };

    let mut emit = |start: usize,
                    chosen: &[(u8, f64)],
                    out_chars: &mut Vec<u8>,
                    out_probs: &mut Vec<f64>,
                    out_pos: &mut Vec<u32>|
     -> Result<(), ModelError> {
        for (k, &(c, p)) in chosen.iter().enumerate() {
            out_chars.push(c);
            out_probs.push(p);
            out_pos.push((start + k) as u32);
        }
        out_chars.push(SENTINEL);
        out_probs.push(1.0);
        out_pos.push(NO_POSITION);
        num_factors += 1;
        if let Some(limit) = options.max_output_len {
            if out_chars.len() > limit {
                return Err(ModelError::TransformTooLarge {
                    produced: out_chars.len(),
                    limit,
                });
            }
        }
        Ok(())
    };

    for start in 0..n {
        if start > 0 && s.is_effectively_deterministic(start - 1) {
            continue; // covered by the factor extending through position start-1
        }
        // Iterative DFS over viable character choices. `chosen` is the
        // current path; `levels[k]` holds the untried siblings at depth k.
        let mut chosen: Vec<(u8, f64)> = Vec::new();
        let mut levels: Vec<Vec<(u8, f64)>> = Vec::new();
        let mut log_p = 0.0f64;

        'dfs: loop {
            let q = start + chosen.len();
            let mut next: Vec<(u8, f64)> = Vec::new();
            if q < n {
                for &(c, base) in s.position(q).choices() {
                    let p = upper_prob(q, c, base);
                    if p > 0.0 && log_meets_threshold(log_p + p.ln(), log_tau) {
                        next.push((c, p));
                    }
                }
            }
            if let Some(&(c, p)) = next.last() {
                next.pop();
                levels.push(next);
                chosen.push((c, p));
                log_p += p.ln();
                continue;
            }
            // No viable extension: the current path is a maximal factor.
            if !chosen.is_empty() {
                emit(start, &chosen, &mut out_chars, &mut out_probs, &mut out_pos)?;
            }
            // Backtrack to the deepest level with an untried sibling.
            loop {
                let Some((_, p)) = chosen.pop() else {
                    break 'dfs;
                };
                log_p -= p.ln();
                let siblings = levels.last_mut().expect("levels track chosen");
                if let Some(&(c2, p2)) = siblings.last() {
                    siblings.pop();
                    chosen.push((c2, p2));
                    log_p += p2.ln();
                    continue 'dfs;
                }
                levels.pop();
            }
        }
    }

    Ok(Transformed {
        special: SpecialUncertainString::from_raw(out_chars, out_probs),
        pos: out_pos,
        tau_min,
        num_factors,
        source_len: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every substring of every world with probability ≥ τmin must occur in
    /// the transformed text at a matching `Pos` alignment (Lemma 2).
    fn assert_conservation(s: &UncertainString, tau_min: f64) {
        let t = transform(s, tau_min).unwrap();
        let text = t.special.chars();
        for start in 0..s.len() {
            for len in 1..=s.len() - start {
                // Enumerate all deterministic strings for this window.
                let window_rows: Vec<Vec<u8>> = (start..start + len)
                    .map(|i| s.position(i).choices().iter().map(|&(c, _)| c).collect())
                    .collect();
                let mut stack = vec![Vec::<u8>::new()];
                while let Some(prefix) = stack.pop() {
                    if prefix.len() == len {
                        let p = s.match_probability(&prefix, start);
                        if p >= tau_min - 1e-12 {
                            // Must appear in X aligned at source position `start`.
                            let found = (0..text.len().saturating_sub(len - 1)).any(|k| {
                                text[k..k + len] == prefix[..]
                                    && t.source_pos(k) == Some(start)
                                    && (0..len).all(|d| t.source_pos(k + d) == Some(start + d))
                            });
                            assert!(
                                found,
                                "substring {:?} at {} (prob {}) missing from transform",
                                String::from_utf8_lossy(&prefix),
                                start,
                                p
                            );
                        }
                        continue;
                    }
                    for &c in &window_rows[prefix.len()] {
                        let mut next = prefix.clone();
                        next.push(c);
                        stack.push(next);
                    }
                }
            }
        }
    }

    #[test]
    fn conservation_on_paper_figure_10_string() {
        // S = Q:.7,S:.3 | Q:.3,P:.7 | P | A:.4,F:.3,P:.2,Q:.1
        let s = UncertainString::parse("Q:.7,S:.3 | Q:.3,P:.7 | P | A:.4,F:.3,P:.2,Q:.1").unwrap();
        assert_conservation(&s, 0.1);
        assert_conservation(&s, 0.3);
    }

    #[test]
    fn conservation_on_deterministic_runs() {
        let s = UncertainString::parse("A | B | C:.5,D:.5 | E | F | G:.9,H:.1").unwrap();
        assert_conservation(&s, 0.2);
    }

    #[test]
    fn deterministic_string_transforms_to_itself() {
        let s = UncertainString::deterministic(b"banana");
        let t = transform(&s, 0.5).unwrap();
        assert_eq!(t.num_factors, 1);
        assert_eq!(t.special.chars(), b"banana\0");
        assert_eq!(t.pos, vec![0, 1, 2, 3, 4, 5, NO_POSITION]);
        assert_eq!(t.expansion(), 7.0 / 6.0);
    }

    #[test]
    fn factors_are_prefix_free_per_start() {
        // Maximal factors starting at one position can never be prefixes of
        // each other (maximality), hence they are ≤ 1/τmin many.
        let s = UncertainString::parse("A:.5,B:.5 | C:.5,D:.5 | E:.5,F:.5 | G:.5,H:.5").unwrap();
        let t = transform(&s, 0.25).unwrap();
        // From position 0: prefixes of length 2 have prob .25 ≥ τ; length 3
        // drops to .125 < τ. So factors from start 0 are the 4 two-char
        // combos; similar for starts 1, 2; start 3: single chars.
        let text = t.special.chars();
        let factors: Vec<&[u8]> = text
            .split(|&b| b == SENTINEL)
            .filter(|f| !f.is_empty())
            .collect();
        assert_eq!(t.num_factors, factors.len());
        for f in &factors {
            assert!(f.len() <= 2);
        }
        assert_eq!(factors.iter().filter(|f| f.len() == 2).count(), 12);
    }

    #[test]
    fn no_factor_when_probability_below_threshold() {
        let s = UncertainString::parse("A:.1,B:.1 | C:.05,D:.05").unwrap();
        let t = transform(&s, 0.2).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn invalid_threshold_rejected() {
        let s = UncertainString::deterministic(b"x");
        assert!(matches!(
            transform(&s, 0.0),
            Err(ModelError::InvalidThreshold { .. })
        ));
        assert!(matches!(
            transform(&s, 1.5),
            Err(ModelError::InvalidThreshold { .. })
        ));
    }

    #[test]
    fn output_limit_enforced() {
        let s = UncertainString::parse("A:.5,B:.5 | C:.5,D:.5 | E:.5,F:.5").unwrap();
        let opts = TransformOptions {
            max_output_len: Some(4),
        };
        assert!(matches!(
            transform_with_options(&s, 0.1, &opts),
            Err(ModelError::TransformTooLarge { .. })
        ));
    }

    #[test]
    fn deterministic_interior_positions_do_not_restart_factors() {
        // "A B C" fully deterministic: only one start (position 0).
        let s = UncertainString::deterministic(b"ABC");
        let t = transform(&s, 0.9).unwrap();
        assert_eq!(t.num_factors, 1);
        // Prefixing with an uncertain position adds starts at 0 and 1 only.
        let s = UncertainString::parse("X:.5,Y:.5 | A | B | C").unwrap();
        let t = transform(&s, 0.4).unwrap();
        // Start 0: factors XABC and YABC; start 1: ABC (positions 2,3 are
        // covered by the factor through the deterministic run).
        let text = t.special.chars();
        let factors: Vec<&[u8]> = text
            .split(|&b| b == SENTINEL)
            .filter(|f| !f.is_empty())
            .collect();
        assert_eq!(factors.len(), 3);
        assert!(factors.contains(&&b"XABC"[..]));
        assert!(factors.contains(&&b"YABC"[..]));
        assert!(factors.contains(&&b"ABC"[..]));
    }

    #[test]
    fn empty_string() {
        let s = UncertainString::new(Vec::new());
        let t = transform(&s, 0.5).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.expansion(), 0.0);
    }

    #[test]
    fn pos_maps_every_character() {
        let s = UncertainString::parse("A:.6,B:.4 | C | D:.5,E:.5").unwrap();
        let t = transform(&s, 0.2).unwrap();
        for k in 0..t.len() {
            match t.source_pos(k) {
                Some(p) => {
                    assert!(p < s.len());
                    // The character at X[k] must be a choice at S[p].
                    let c = t.special.char_at(k);
                    assert!(s.position(p).prob_of(c) > 0.0);
                }
                None => assert_eq!(t.special.char_at(k), SENTINEL),
            }
        }
    }

    #[test]
    fn correlated_subjects_use_upper_bound() {
        use crate::correlation::{Correlation, CorrelationSet};
        let mut s = UncertainString::parse("e:.6,f:.4 | q | z:.36").unwrap();
        let mut corrs = CorrelationSet::new();
        corrs
            .add(Correlation {
                subject_pos: 2,
                subject_char: b'z',
                cond_pos: 0,
                cond_char: b'e',
                p_present: 0.3,
                p_absent: 0.4,
            })
            .unwrap();
        s.set_correlations(corrs).unwrap();
        let t = transform(&s, 0.2).unwrap();
        // z's upper bound is .4: the factor "eqz" survives τ=.2 via
        // .6*1*.4 = .24 even though the true conditional is .6*1*.3 = .18.
        let text = t.special.chars();
        assert!(text.windows(3).any(|w| w == b"eqz"));
        // The stored probability for z inside that factor is the bound .4.
        let k = (0..text.len() - 2)
            .find(|&k| &text[k..k + 3] == b"eqz")
            .unwrap();
        assert!((t.special.prob_at(k + 2) - 0.4).abs() < 1e-12);
    }
}
