//! Flat probability planes: the zero-allocation verification kernel behind
//! every query hot path.
//!
//! Per-candidate verification (`UncertainString::log_match_probability`)
//! walks a `Vec<UncertainChar>` of per-position heap `Vec<(u8, f64)>`
//! choices, binary-searching each pattern character and probing the
//! correlation hash map at every window position. On the alphabets real
//! workloads use (DNA/IUPAC σ ≤ 16, protein σ ≤ 25) that walk dominates
//! query time. This module lays the same model out flat, the way related
//! work on weighted sequences stores position × character probabilities:
//!
//! * [`ProbPlane`] — built once per document. The live alphabet is remapped
//!   to ranks `0..σ` and the **natural-log** probabilities are stored as one
//!   contiguous row-major `pos × σ` table (a CSR layout is used instead
//!   when σ is large and the rows are sparse). Sidecars: per-character
//!   *presence bitmaps* (which positions can produce a character at all),
//!   a *deterministic-position* bitmask with the flattened deterministic
//!   bytes, and a *correlation-subject* bitmask over the handful of
//!   correlated positions.
//! * [`MatchKernel`] — a per-query view that remaps the pattern to ranks
//!   **once**, then evaluates every candidate window as a tight flat-array
//!   loop with first-impossible-factor early exit. Pattern rank scratch
//!   lives in a thread-local buffer, so steady-state verification allocates
//!   nothing per candidate (and nothing per query once the buffer is warm).
//!
//! **Bit-identity contract.** For every `(pattern, pos)`,
//! [`MatchKernel::log_match`] returns *exactly* the `f64`
//! [`UncertainString::log_match_probability`] returns — not merely a close
//! value. The kernel preserves the naive evaluator's summation order and
//! adds precomputed `ln` values of the *same* `f64` inputs the naive path
//! feeds to `ln` at query time; the deterministic fast path only triggers
//! when every factor is exactly `ln 1 = 0.0`. This is what lets every
//! executor in the workspace (built index, scan, snapshot-loaded, TCP) keep
//! reporting bit-identical canonical probabilities while verifying through
//! the plane. The differential property test in `tests/prop_kernel.rs`
//! pins the contract down to `f64::to_bits` equality.

use std::cell::RefCell;

use crate::{log_meets_threshold, string::UncertainString};

/// Rank value meaning "this byte never occurs in the document".
pub const RANK_NONE: u16 = u16::MAX;

/// Dense layout is always used up to this alphabet size (covers IUPAC DNA
/// at σ ≤ 16 and protein at σ ≤ 25 — the workloads the kernel targets; a
/// dense row costs one indexed load where CSR costs a chain of them, and
/// CSR measured slower on protein windows even with the deterministic
/// byte sidecar absorbing the single-choice positions). The deliberate
/// trade: up to `32 × 8 = 256` bytes of mostly-`−∞` cells per position on
/// sparse documents, bounded by this cap, in exchange for one-load
/// verification at the uncertain positions.
const DENSE_SIGMA_MAX: usize = 32;
/// Dense layout is always used when the whole table stays below this many
/// cells (512 KiB of `f64`) — small documents never pay CSR indirection.
const DENSE_CELLS_SMALL: usize = 1 << 16;

/// One flattened pairwise correlation, with every probability outcome the
/// naive evaluator could compute already resolved to its `ln` at build time.
#[derive(Debug, Clone)]
struct PlaneCorrelation {
    /// Subject position.
    pos: u32,
    /// Subject character byte.
    ch: u8,
    /// Conditioning position.
    cond_pos: u32,
    /// Conditioning character byte.
    cond_char: u8,
    /// `ln pr⁺` — conditioning character chosen inside the window.
    ln_present: f64,
    /// `ln pr⁻` — a different character chosen at the conditioning position.
    ln_absent: f64,
    /// `ln` of the total-probability marginal — conditioning position
    /// outside the window.
    ln_outside: f64,
}

/// Probability storage: dense row-major `pos × σ`, or CSR rows when the
/// dense table would be large *and* mostly `−∞`.
#[derive(Debug, Clone)]
enum Storage {
    /// `logs[pos * sigma + rank]` = `ln pr(char(rank) at pos)`, `−∞` absent.
    Dense(Vec<f64>),
    /// Compressed sparse rows: `row_start[pos]..row_start[pos + 1]` indexes
    /// `ranks`/`logs`, ranks ascending within a row.
    Csr {
        row_start: Vec<u32>,
        ranks: Vec<u16>,
        logs: Vec<f64>,
    },
}

/// A flat, rank-remapped view of one [`UncertainString`]'s probabilities,
/// built once per document and shared by every query against it.
///
/// Purely *derived* state: rebuilt from the model on construction and on
/// snapshot load, never persisted.
///
/// ```
/// use ustr_uncertain::{ProbPlane, UncertainString};
/// let s = UncertainString::parse("A:.3,B:.7 | C | A:.5,C:.5").unwrap();
/// let plane = ProbPlane::build(&s);
/// assert_eq!(plane.sigma(), 3);
/// plane.with_kernel(b"AC", |kernel| {
///     assert_eq!(
///         kernel.log_match(0).to_bits(),
///         s.log_match_probability(b"AC", 0).to_bits(),
///     );
/// });
/// ```
#[derive(Debug, Clone)]
pub struct ProbPlane {
    /// Number of positions (the document length).
    len: usize,
    /// Live alphabet size.
    sigma: usize,
    /// Byte → rank (`RANK_NONE` when the byte never occurs).
    rank_of: Box<[u16; 256]>,
    /// Rank → byte, ascending.
    alphabet: Vec<u8>,
    storage: Storage,
    /// `sigma` presence rows of `words_per_row` words each: bit `p` of row
    /// `r` is set when `char(r)` has nonzero probability at position `p`.
    presence: Vec<u64>,
    words_per_row: usize,
    /// Bit `p` set when position `p` is deterministic *for the kernel*:
    /// a single choice with probability exactly `1.0` and no correlation
    /// subject (so its factor is exactly `ln 1 = 0.0`).
    det_mask: Vec<u64>,
    /// Length of the maximal all-deterministic run starting at each
    /// position — the O(1) form of the `det_mask` window test the kernel
    /// actually loads (one `u32` per candidate instead of a word fold).
    det_run: Vec<u32>,
    /// The deterministic byte at det positions (`0`, the reserved sentinel,
    /// elsewhere) — lets an all-deterministic window verify by byte compare.
    det_chars: Vec<u8>,
    /// Bit `p` set when any correlation subject lives at position `p`.
    corr_mask: Vec<u64>,
    /// Length of the maximal correlation-free run starting at each position
    /// (empty when the document has no correlations at all).
    corr_run: Vec<u32>,
    /// Flattened correlations, sorted by `(pos, ch)` for binary search.
    corr: Vec<PlaneCorrelation>,
}

thread_local! {
    /// Reusable pattern→rank scratch. Taken (not borrowed) around kernel
    /// use so nested kernels degrade to a fresh allocation instead of a
    /// re-borrow panic.
    static RANK_SCRATCH: RefCell<Vec<u16>> = const { RefCell::new(Vec::new()) };
}

impl ProbPlane {
    /// Flattens `source` into a plane. Layout (dense vs CSR) is chosen from
    /// the alphabet size and choice density; both answer identically.
    pub fn build(source: &UncertainString) -> Self {
        let n = source.len();
        let mut rank_of: Box<[u16; 256]> = Box::new([RANK_NONE; 256]);
        let mut seen = [false; 256];
        let mut entries = 0usize;
        for p in source.positions() {
            for &(c, _) in p.choices() {
                seen[c as usize] = true;
                entries += 1;
            }
        }
        let alphabet: Vec<u8> = (0u16..256)
            .filter(|&c| seen[c as usize])
            .map(|c| c as u8)
            .collect();
        let sigma = alphabet.len();
        for (r, &c) in alphabet.iter().enumerate() {
            rank_of[c as usize] = r as u16;
        }

        let cells = n * sigma;
        let dense = sigma <= DENSE_SIGMA_MAX || cells <= DENSE_CELLS_SMALL || entries * 2 >= cells;
        let storage = if dense {
            let mut logs = vec![f64::NEG_INFINITY; cells];
            for (i, p) in source.positions().iter().enumerate() {
                let row = &mut logs[i * sigma..(i + 1) * sigma];
                for &(c, pr) in p.choices() {
                    row[rank_of[c as usize] as usize] = pr.ln();
                }
            }
            Storage::Dense(logs)
        } else {
            let mut row_start = Vec::with_capacity(n + 1);
            let mut ranks = Vec::with_capacity(entries);
            let mut logs = Vec::with_capacity(entries);
            row_start.push(0u32);
            for p in source.positions() {
                // Choices are sorted by byte, and rank order is byte order,
                // so each CSR row comes out rank-ascending for free.
                for &(c, pr) in p.choices() {
                    ranks.push(rank_of[c as usize]);
                    logs.push(pr.ln());
                }
                row_start.push(ranks.len() as u32);
            }
            Storage::Csr {
                row_start,
                ranks,
                logs,
            }
        };

        let words_per_row = n.div_ceil(64);
        let mut presence = vec![0u64; sigma * words_per_row];
        for (i, p) in source.positions().iter().enumerate() {
            for &(c, _) in p.choices() {
                let r = rank_of[c as usize] as usize;
                presence[r * words_per_row + i / 64] |= 1u64 << (i % 64);
            }
        }

        let corrs = source.correlations();
        let mut det_mask = vec![0u64; words_per_row];
        let mut det_chars = vec![0u8; n];
        for (i, p) in source.positions().iter().enumerate() {
            let choices = p.choices();
            if choices.len() == 1
                && choices[0].1.to_bits() == 1.0f64.to_bits()
                && !corrs.has_subject_at(i)
            {
                det_mask[i / 64] |= 1u64 << (i % 64);
                det_chars[i] = choices[0].0;
            }
        }

        let mut det_run = vec![0u32; n];
        let mut run = 0u32;
        for i in (0..n).rev() {
            run = if det_mask[i / 64] >> (i % 64) & 1 == 1 {
                run.saturating_add(1)
            } else {
                0
            };
            det_run[i] = run;
        }

        let mut corr_mask = vec![0u64; words_per_row];
        let mut corr: Vec<PlaneCorrelation> = corrs
            .iter()
            .map(|c| {
                let marginal = source.position(c.cond_pos).prob_of(c.cond_char);
                // Same formula (and the same f64 inputs) the naive
                // evaluator feeds through `effective_prob` at query time,
                // so the precomputed ln values are bit-identical.
                let outside = c.effective_prob(None, marginal);
                PlaneCorrelation {
                    pos: c.subject_pos as u32,
                    ch: c.subject_char,
                    cond_pos: c.cond_pos as u32,
                    cond_char: c.cond_char,
                    ln_present: c.p_present.ln(),
                    ln_absent: c.p_absent.ln(),
                    ln_outside: outside.ln(),
                }
            })
            .collect();
        corr.sort_unstable_by_key(|c| (c.pos, c.ch));
        for c in &corr {
            corr_mask[c.pos as usize / 64] |= 1u64 << (c.pos % 64);
        }
        let corr_run = if corr.is_empty() {
            Vec::new()
        } else {
            let mut corr_run = vec![0u32; n];
            let mut run = 0u32;
            for i in (0..n).rev() {
                run = if corr_mask[i / 64] >> (i % 64) & 1 == 1 {
                    0
                } else {
                    run.saturating_add(1)
                };
                corr_run[i] = run;
            }
            corr_run
        };

        Self {
            len: n,
            sigma,
            rank_of,
            alphabet,
            storage,
            presence,
            words_per_row,
            det_mask,
            det_run,
            det_chars,
            corr_mask,
            corr_run,
            corr,
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for a zero-length document.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Live alphabet size σ.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// The live alphabet, ascending by byte.
    pub fn alphabet(&self) -> &[u8] {
        &self.alphabet
    }

    /// Rank of `ch`, or `None` when the byte never occurs in the document.
    #[inline]
    pub fn rank(&self, ch: u8) -> Option<u16> {
        match self.rank_of[ch as usize] {
            RANK_NONE => None,
            r => Some(r),
        }
    }

    /// `true` when the plane uses the dense row-major table (as opposed to
    /// the CSR fallback for large sparse alphabets).
    pub fn is_dense(&self) -> bool {
        matches!(self.storage, Storage::Dense(_))
    }

    /// `ln pr(char(rank) at pos)`; `−∞` when absent (or `rank` is
    /// [`RANK_NONE`]).
    #[inline]
    pub fn log_prob(&self, pos: usize, rank: u16) -> f64 {
        if rank == RANK_NONE {
            return f64::NEG_INFINITY;
        }
        match &self.storage {
            Storage::Dense(logs) => logs[pos * self.sigma + rank as usize],
            Storage::Csr {
                row_start,
                ranks,
                logs,
            } => {
                let lo = row_start[pos] as usize;
                let hi = row_start[pos + 1] as usize;
                // Rows hold a handful of ascending ranks; a linear scan with
                // early break beats binary search at these sizes.
                for i in lo..hi {
                    match ranks[i] {
                        r if r == rank => return logs[i],
                        r if r > rank => return f64::NEG_INFINITY,
                        _ => {}
                    }
                }
                f64::NEG_INFINITY
            }
        }
    }

    /// `true` when position `pos` is deterministic for the kernel (single
    /// choice with probability exactly 1 and no correlation subject).
    #[inline]
    pub fn is_deterministic_at(&self, pos: usize) -> bool {
        self.det_mask[pos / 64] >> (pos % 64) & 1 == 1
    }

    /// Iterates the positions `< limit` where `ch` has nonzero probability,
    /// ascending — the first-pattern-character candidate prefilter used by
    /// the scan executors.
    pub fn positions_with(&self, ch: u8, limit: usize) -> PresenceIter<'_> {
        let words = match self.rank(ch) {
            Some(r) => {
                let r = r as usize;
                &self.presence[r * self.words_per_row..(r + 1) * self.words_per_row]
            }
            None => &[],
        };
        PresenceIter::new(words, None, limit.min(self.len))
    }

    /// Remaps `pattern` to plane ranks (one small allocation per call; the
    /// hot paths use [`ProbPlane::with_kernel`], which reuses a
    /// thread-local buffer instead).
    pub fn compile(&self, pattern: &[u8]) -> PatternRanks {
        let mut ranks = Vec::new();
        let impossible = self.remap_into(pattern, &mut ranks);
        PatternRanks { ranks, impossible }
    }

    /// A kernel over previously [`compile`](Self::compile)d ranks.
    pub fn kernel<'a>(&'a self, pattern: &'a [u8], compiled: &'a PatternRanks) -> MatchKernel<'a> {
        debug_assert_eq!(pattern.len(), compiled.ranks.len());
        MatchKernel {
            plane: self,
            pattern,
            ranks: &compiled.ranks,
            first_row: self.first_char_row(pattern),
            impossible: compiled.impossible,
            any_corr: !self.corr.is_empty(),
        }
    }

    /// Runs `f` with a [`MatchKernel`] for `pattern`, remapping the pattern
    /// into a reusable thread-local rank buffer: once the buffer is warm, a
    /// query allocates nothing here no matter how many candidates it
    /// verifies.
    pub fn with_kernel<R>(&self, pattern: &[u8], f: impl FnOnce(&MatchKernel<'_>) -> R) -> R {
        let mut buf = RANK_SCRATCH.with(RefCell::take);
        let impossible = self.remap_into(pattern, &mut buf);
        let kernel = MatchKernel {
            plane: self,
            pattern,
            ranks: &buf,
            first_row: self.first_char_row(pattern),
            impossible,
            any_corr: !self.corr.is_empty(),
        };
        let out = f(&kernel);
        RANK_SCRATCH.with(|cell| cell.replace(buf));
        out
    }

    /// Fills `ranks` with the pattern's plane ranks; returns `true` when
    /// some pattern byte never occurs in the document (every window is then
    /// impossible).
    fn remap_into(&self, pattern: &[u8], ranks: &mut Vec<u16>) -> bool {
        ranks.clear();
        let mut impossible = false;
        ranks.extend(pattern.iter().map(|&c| {
            let r = self.rank_of[c as usize];
            impossible |= r == RANK_NONE;
            r
        }));
        impossible
    }

    /// The correlation whose subject is `(pos, ch)`, if any.
    #[inline]
    fn corr_at(&self, pos: usize, ch: u8) -> Option<&PlaneCorrelation> {
        let key = (pos as u32, ch);
        self.corr
            .binary_search_by_key(&key, |c| (c.pos, c.ch))
            .ok()
            .map(|i| &self.corr[i])
    }

    /// The presence row of `pattern`'s first character — the kernel's
    /// one-load candidate reject (empty for empty/impossible patterns, in
    /// which case the kernel never consults it).
    fn first_char_row(&self, pattern: &[u8]) -> &[u64] {
        match pattern.first().map(|&c| self.rank_of[c as usize]) {
            Some(r) if r != RANK_NONE => {
                let r = r as usize;
                &self.presence[r * self.words_per_row..(r + 1) * self.words_per_row]
            }
            _ => &[],
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        use std::mem::size_of;
        let storage = match &self.storage {
            Storage::Dense(logs) => logs.capacity() * size_of::<f64>(),
            Storage::Csr {
                row_start,
                ranks,
                logs,
            } => {
                row_start.capacity() * size_of::<u32>()
                    + ranks.capacity() * size_of::<u16>()
                    + logs.capacity() * size_of::<f64>()
            }
        };
        storage
            + size_of::<[u16; 256]>()
            + self.alphabet.capacity()
            + (self.presence.capacity() + self.det_mask.capacity() + self.corr_mask.capacity())
                * size_of::<u64>()
            + (self.det_run.capacity() + self.corr_run.capacity()) * size_of::<u32>()
            + self.det_chars.capacity()
            + self.corr.capacity() * size_of::<PlaneCorrelation>()
    }
}

/// A pattern remapped to one plane's ranks (see [`ProbPlane::compile`]).
#[derive(Debug, Clone)]
pub struct PatternRanks {
    ranks: Vec<u16>,
    impossible: bool,
}

impl PatternRanks {
    /// `true` when some pattern byte never occurs in the document.
    pub fn is_impossible(&self) -> bool {
        self.impossible
    }
}

/// Ascending iterator over candidate start positions, driven by presence
/// bitmaps: the set bits of one presence row, optionally ANDed word-by-word
/// with a second row shifted left by one (candidates whose *second*
/// character is also possible at `pos + 1` — dropped starts fail their
/// first or second factor, so the filter never changes the survivor set).
pub struct PresenceIter<'a> {
    words: &'a [u64],
    /// Second-character row, tested at `pos + 1` via the shifted AND.
    next_words: Option<&'a [u64]>,
    word_idx: usize,
    current: u64,
    limit: usize,
}

impl<'a> PresenceIter<'a> {
    fn new(words: &'a [u64], next_words: Option<&'a [u64]>, limit: usize) -> Self {
        let mut it = Self {
            words,
            next_words,
            word_idx: 0,
            current: 0,
            limit,
        };
        it.current = it.load_word(0);
        it
    }

    /// The candidate bits of word `w`: first-char presence, masked by the
    /// second-char presence at the next position when available.
    #[inline]
    fn load_word(&self, w: usize) -> u64 {
        let Some(&x) = self.words.get(w) else {
            return 0;
        };
        match self.next_words {
            Some(next) => {
                let lo = next.get(w).copied().unwrap_or(0) >> 1;
                let hi = next.get(w + 1).copied().unwrap_or(0) << 63;
                x & (lo | hi)
            }
            None => x,
        }
    }
}

impl Iterator for PresenceIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                let pos = self.word_idx * 64 + bit;
                if pos >= self.limit {
                    return None;
                }
                self.current &= self.current - 1;
                return Some(pos);
            }
            self.word_idx += 1;
            if self.word_idx * 64 >= self.limit || self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.load_word(self.word_idx);
        }
    }
}

/// The per-query verification kernel: `pattern` remapped to ranks once,
/// candidate windows evaluated as flat-array loops.
///
/// Obtained from [`ProbPlane::with_kernel`] (thread-local scratch, the hot
/// path) or [`ProbPlane::kernel`] over a [`PatternRanks`].
pub struct MatchKernel<'a> {
    plane: &'a ProbPlane,
    pattern: &'a [u8],
    ranks: &'a [u16],
    /// Presence row of the first pattern character (empty iff the pattern
    /// is empty or impossible — never consulted in those cases).
    first_row: &'a [u64],
    impossible: bool,
    any_corr: bool,
}

impl<'a> MatchKernel<'a> {
    /// The plane this kernel verifies against.
    pub fn plane(&self) -> &'a ProbPlane {
        self.plane
    }

    /// `true` when some pattern byte never occurs in the document — every
    /// window is impossible and callers may skip candidate enumeration.
    pub fn is_impossible(&self) -> bool {
        self.impossible
    }

    /// Candidate start positions for a scan: every `pos < limit` where the
    /// *first* pattern character has nonzero probability — ANDed with the
    /// second character's presence at `pos + 1` when the pattern has one.
    /// All other starts evaluate to `−∞` within their first two factors,
    /// so the filter never changes a scan's survivor set. Empty for an
    /// empty or impossible pattern.
    pub fn candidates(&self, limit: usize) -> PresenceIter<'a> {
        if self.impossible || self.pattern.is_empty() {
            return PresenceIter::new(&[], None, 0);
        }
        let next = (self.pattern.len() > 1)
            .then(|| self.plane.first_char_row(&self.pattern[1..]))
            .filter(|row| !row.is_empty());
        PresenceIter::new(self.first_row, next, limit.min(self.plane.len))
    }

    /// Bit-identical to
    /// [`UncertainString::log_match_probability`]`(pattern, pos)`.
    ///
    /// Fast-path structure, cheapest test first: (1) one presence-bitmap
    /// bit decides most candidates — the first factor is 0, exactly the
    /// naive walk's first early exit, from an L1-resident row instead of
    /// the probability table; (2) an O(1) `det_run` load turns windows that
    /// lie entirely in a deterministic run into a byte compare (every
    /// factor is exactly `ln 1 = 0.0`, so the naive sum is `0.0` on match,
    /// `−∞` on mismatch); (3) everything else takes the flat loop, with the
    /// rare correlated windows (O(1) `corr_run` gate) on a cold path that
    /// mirrors the naive branch structure.
    #[inline]
    pub fn log_match(&self, pos: usize) -> f64 {
        let m = self.pattern.len();
        let plane = self.plane;
        if pos + m > plane.len {
            return f64::NEG_INFINITY;
        }
        if m == 0 {
            return 0.0;
        }
        if self.impossible {
            return f64::NEG_INFINITY;
        }
        if self.first_row[pos / 64] >> (pos % 64) & 1 == 0 {
            return f64::NEG_INFINITY;
        }
        if self.any_corr && (plane.corr_run[pos] as usize) < m {
            return self.log_match_correlated(pos, f64::NEG_INFINITY);
        }
        if plane.det_run[pos] as usize >= m {
            // Byte loop instead of a slice `==` (runtime-length `bcmp`
            // call): windows this short reject at their first differing
            // byte.
            let window = &plane.det_chars[pos..pos + m];
            return if window.iter().zip(self.pattern).all(|(a, b)| a == b) {
                0.0
            } else {
                f64::NEG_INFINITY
            };
        }
        let mut log_p = 0.0;
        for k in 0..m {
            let i = pos + k;
            // Deterministic positions resolve from the byte sidecar: their
            // factor is exactly 1, and `log_p + ln 1` is `log_p` bit for
            // bit, so the probability-table load is skipped entirely.
            let d = plane.det_chars[i];
            if d != 0 {
                if d == self.pattern[k] {
                    continue;
                }
                return f64::NEG_INFINITY;
            }
            let lp = plane.log_prob(i, self.ranks[k]);
            if lp == f64::NEG_INFINITY {
                return f64::NEG_INFINITY;
            }
            log_p += lp;
        }
        log_p
    }

    /// `exp` of [`Self::log_match`] — bit-identical to
    /// [`UncertainString::match_probability`].
    #[inline]
    pub fn match_probability(&self, pos: usize) -> f64 {
        self.log_match(pos).exp()
    }

    /// Scan-style evaluation with the per-factor threshold early exit of
    /// `NaiveScanner`: `Some(log_p)` exactly when the running product never
    /// drops below `log_tau` (within [`crate::PROB_EPS`]); the returned
    /// value is bit-identical to [`Self::log_match`]. Because factors never
    /// exceed 1, the early exit can only skip windows whose final value
    /// fails the threshold too.
    #[inline]
    pub fn log_match_bounded(&self, pos: usize, log_tau: f64) -> Option<f64> {
        let m = self.pattern.len();
        let plane = self.plane;
        if m == 0 || pos + m > plane.len || self.impossible {
            return None;
        }
        if self.first_row[pos / 64] >> (pos % 64) & 1 == 0 {
            return None;
        }
        if self.any_corr && (plane.corr_run[pos] as usize) < m {
            let v = self.log_match_correlated(pos, log_tau);
            return if v == f64::NEG_INFINITY {
                None
            } else {
                Some(v)
            };
        }
        if plane.det_run[pos] as usize >= m {
            // All factors are exactly 0.0, so every intermediate threshold
            // check reduces to `0 ≥ log_tau − eps`, which holds for τ ≤ 1.
            let window = &plane.det_chars[pos..pos + m];
            return window
                .iter()
                .zip(self.pattern)
                .all(|(a, b)| a == b)
                .then_some(0.0);
        }
        let mut log_p = 0.0;
        for k in 0..m {
            let i = pos + k;
            // Factor exactly 1: running product and threshold check are
            // both unchanged, so the table load and the check are skipped.
            let d = plane.det_chars[i];
            if d != 0 {
                if d == self.pattern[k] {
                    continue;
                }
                return None;
            }
            let lp = plane.log_prob(i, self.ranks[k]);
            if lp == f64::NEG_INFINITY {
                return None;
            }
            log_p += lp;
            if !log_meets_threshold(log_p, log_tau) {
                return None;
            }
        }
        Some(log_p)
    }

    /// The correlation-aware cold path, mirroring the naive evaluator's
    /// branch structure factor by factor. `log_tau` = `−∞` disables the
    /// per-factor threshold exit (plain `log_match` semantics).
    #[cold]
    fn log_match_correlated(&self, pos: usize, log_tau: f64) -> f64 {
        let m = self.pattern.len();
        let plane = self.plane;
        let mut log_p = 0.0;
        for k in 0..m {
            let i = pos + k;
            let lp = plane.log_prob(i, self.ranks[k]);
            if lp == f64::NEG_INFINITY {
                return f64::NEG_INFINITY;
            }
            let in_corr = plane.corr_mask[i / 64] >> (i % 64) & 1 == 1;
            let v = if in_corr {
                match plane.corr_at(i, self.pattern[k]) {
                    Some(c) => {
                        let j = c.cond_pos as usize;
                        if j >= pos && j < pos + m {
                            if self.pattern[j - pos] == c.cond_char {
                                c.ln_present
                            } else {
                                c.ln_absent
                            }
                        } else {
                            c.ln_outside
                        }
                    }
                    None => lp,
                }
            } else {
                lp
            };
            if v == f64::NEG_INFINITY {
                return f64::NEG_INFINITY;
            }
            log_p += v;
            if log_tau != f64::NEG_INFINITY && !log_meets_threshold(log_p, log_tau) {
                return f64::NEG_INFINITY;
            }
        }
        log_p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Correlation, CorrelationSet};

    fn assert_bit_identical(s: &UncertainString, pattern: &[u8]) {
        let plane = ProbPlane::build(s);
        plane.with_kernel(pattern, |k| {
            for pos in 0..=s.len() + 1 {
                let naive = s.log_match_probability(pattern, pos);
                let fast = k.log_match(pos);
                assert_eq!(
                    naive.to_bits(),
                    fast.to_bits(),
                    "pattern {:?} pos {pos}: naive {naive} kernel {fast}",
                    String::from_utf8_lossy(pattern)
                );
            }
        });
    }

    #[test]
    fn matches_naive_on_figure_1() {
        let s = UncertainString::parse("a:.3,b:.4,d:.3 | a:.6,c:.4 | d | a:.5,c:.5 | a").unwrap();
        for pattern in [&b"aadaa"[..], b"ad", b"da", b"z", b"az", b"", b"dca"] {
            assert_bit_identical(&s, pattern);
        }
    }

    #[test]
    fn deterministic_fast_path_is_exact() {
        let s = UncertainString::deterministic(b"banana");
        let plane = ProbPlane::build(&s);
        assert!(plane.is_deterministic_at(0));
        for pattern in [&b"ana"[..], b"nan", b"banana", b"band", b"x"] {
            assert_bit_identical(&s, pattern);
        }
        plane.with_kernel(b"ana", |k| {
            assert_eq!(k.log_match(1), 0.0);
            assert_eq!(k.match_probability(1), 1.0);
            assert_eq!(k.log_match(0), f64::NEG_INFINITY);
        });
    }

    #[test]
    fn near_one_probability_is_not_deterministic_for_the_kernel() {
        // 0.999999999999 is "deterministic" for the model's tolerance-based
        // predicate but must NOT take the exact-1.0 fast path.
        let s = UncertainString::parse("a:.999999999999 | b").unwrap();
        let plane = ProbPlane::build(&s);
        assert!(!plane.is_deterministic_at(0));
        assert!(plane.is_deterministic_at(1));
        assert_bit_identical(&s, b"ab");
    }

    #[test]
    fn correlations_in_and_out_of_window() {
        let mut s = UncertainString::parse("e:.6,f:.4 | q | z:.36").unwrap();
        let mut corrs = CorrelationSet::new();
        corrs
            .add(Correlation {
                subject_pos: 2,
                subject_char: b'z',
                cond_pos: 0,
                cond_char: b'e',
                p_present: 0.3,
                p_absent: 0.4,
            })
            .unwrap();
        s.set_correlations(corrs).unwrap();
        for pattern in [&b"eqz"[..], b"fqz", b"qz", b"z", b"eq"] {
            assert_bit_identical(&s, pattern);
        }
    }

    #[test]
    fn zero_probability_correlation_outcome() {
        let mut s = UncertainString::parse("a:.5,b:.5 | c").unwrap();
        let mut corrs = CorrelationSet::new();
        corrs
            .add(Correlation {
                subject_pos: 1,
                subject_char: b'c',
                cond_pos: 0,
                cond_char: b'a',
                p_present: 0.0, // impossible when 'a' chosen
                p_absent: 1.0,
            })
            .unwrap();
        s.set_correlations(corrs).unwrap();
        for pattern in [&b"ac"[..], b"bc", b"c"] {
            assert_bit_identical(&s, pattern);
        }
    }

    #[test]
    fn csr_fallback_answers_identically() {
        // A wide, sparse alphabet (every position a distinct pair of bytes)
        // pushed past the dense thresholds.
        let mut rows = Vec::new();
        for i in 0..3000usize {
            let a = 1 + (i * 7 % 200) as u8;
            let b = 201 + (i % 50) as u8;
            rows.push(vec![(a, 0.6), (b, 0.4)]);
        }
        let s = UncertainString::from_rows(rows).unwrap();
        let plane = ProbPlane::build(&s);
        assert!(!plane.is_dense(), "sparse wide alphabet should pick CSR");
        let world = s.most_probable_world();
        for start in [0usize, 17, 1234] {
            assert_bit_identical(&s, &world[start..start + 5]);
        }
    }

    #[test]
    fn small_strings_stay_dense() {
        let s = UncertainString::parse("A:.5,B:.5 | C | D").unwrap();
        assert!(ProbPlane::build(&s).is_dense());
    }

    #[test]
    fn presence_prefilter_enumerates_first_char_starts() {
        let s = UncertainString::parse("a:.5,b:.5 | c | a | c:.9,d:.1 | a:.2,c:.8").unwrap();
        let plane = ProbPlane::build(&s);
        let got: Vec<usize> = plane.positions_with(b'a', 5).collect();
        assert_eq!(got, vec![0, 2, 4]);
        let got: Vec<usize> = plane.positions_with(b'a', 3).collect();
        assert_eq!(got, vec![0, 2], "limit is exclusive");
        assert_eq!(plane.positions_with(b'z', 5).count(), 0);
        plane.with_kernel(b"ac", |k| {
            let got: Vec<usize> = k.candidates(4).collect();
            assert_eq!(got, vec![0, 2]);
        });
        plane.with_kernel(b"az", |k| {
            assert!(k.is_impossible());
            assert_eq!(k.candidates(5).count(), 0);
        });
    }

    #[test]
    fn bounded_matches_full_evaluation_when_passing() {
        let s = UncertainString::parse("a:.9,b:.1 | a:.8,b:.2 | a:.7,b:.3").unwrap();
        let plane = ProbPlane::build(&s);
        plane.with_kernel(b"aa", |k| {
            let full = k.log_match(0);
            assert_eq!(k.log_match_bounded(0, 0.5f64.ln()), Some(full));
            // .9 * .8 = .72 < .8: dropped by the threshold.
            assert_eq!(k.log_match_bounded(0, 0.8f64.ln()), None);
            // Out of bounds and absent chars are dropped, not −∞-summed.
            assert_eq!(k.log_match_bounded(2, 0.1f64.ln()), None);
        });
    }

    #[test]
    fn empty_pattern_and_empty_string() {
        let s = UncertainString::parse("a:.5,b:.5").unwrap();
        assert_bit_identical(&s, b"");
        let empty = UncertainString::new(Vec::new());
        let plane = ProbPlane::build(&empty);
        assert_eq!(plane.sigma(), 0);
        assert!(plane.is_empty());
        plane.with_kernel(b"a", |k| {
            assert_eq!(k.log_match(0), f64::NEG_INFINITY);
            assert_eq!(k.candidates(0).count(), 0);
        });
    }

    #[test]
    fn long_window_masks_cross_word_boundaries() {
        // 130 deterministic positions: the det-window fold spans 3 words.
        let text: Vec<u8> = (0..130u32).map(|i| b'a' + (i % 3) as u8).collect();
        let s = UncertainString::deterministic(&text);
        let plane = ProbPlane::build(&s);
        plane.with_kernel(&text, |k| {
            assert_eq!(k.log_match(0), 0.0);
        });
        let mut wrong = text.clone();
        wrong[129] = b'z';
        assert_bit_identical(&s, &wrong);
        assert_bit_identical(&s, &text[1..128]);
    }

    #[test]
    fn nested_kernels_do_not_panic() {
        let a = UncertainString::parse("a:.5,b:.5 | c").unwrap();
        let b = UncertainString::parse("x:.5,y:.5 | z").unwrap();
        let pa = ProbPlane::build(&a);
        let pb = ProbPlane::build(&b);
        pa.with_kernel(b"ac", |ka| {
            pb.with_kernel(b"xz", |kb| {
                assert_eq!(
                    ka.log_match(0).to_bits(),
                    a.log_match_probability(b"ac", 0).to_bits()
                );
                assert_eq!(
                    kb.log_match(0).to_bits(),
                    b.log_match_probability(b"xz", 0).to_bits()
                );
            });
        });
    }

    #[test]
    fn compiled_ranks_reusable_across_calls() {
        let s = UncertainString::parse("a:.4,b:.6 | b | a:.9,c:.1").unwrap();
        let plane = ProbPlane::build(&s);
        let compiled = plane.compile(b"ab");
        assert!(!compiled.is_impossible());
        let k = plane.kernel(b"ab", &compiled);
        assert_eq!(
            k.log_match(0).to_bits(),
            s.log_match_probability(b"ab", 0).to_bits()
        );
        assert!(plane.compile(b"aq").is_impossible());
    }

    #[test]
    fn heap_size_is_positive_and_layout_reported() {
        let s = UncertainString::parse("A:.5,C:.5 | G | T:.9,A:.1").unwrap();
        let plane = ProbPlane::build(&s);
        assert!(plane.heap_size() > 0);
        assert_eq!(plane.alphabet(), b"ACGT");
        assert_eq!(plane.rank(b'G'), Some(2));
        assert_eq!(plane.rank(b'z'), None);
        assert_eq!(plane.log_prob(1, RANK_NONE), f64::NEG_INFINITY);
    }
}
