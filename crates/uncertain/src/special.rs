//! Special uncertain strings (Definition 1): one probabilistic character per
//! position.

use crate::{correlation::CorrelationSet, error::ModelError, PROB_EPS};

/// A special uncertain string `X = (c₁, pr₁) … (c_N, pr_N)`.
///
/// Byte 0 is the factor separator in transformed strings; positions holding
/// it carry probability 1 and are ignored by window evaluations (windows
/// crossing a separator have probability 0 — enforced by the index layer).
///
/// ```
/// use ustr_uncertain::SpecialUncertainString;
/// // Figure 5: X = (b,.4)(a,.7)(n,.5)(a,.8)(n,.9)(a,.6)
/// let x = SpecialUncertainString::new(
///     b"banana".to_vec(),
///     vec![0.4, 0.7, 0.5, 0.8, 0.9, 0.6],
/// ).unwrap();
/// // "ana" at position 1 (0-based): .7*.5*.8 = .28
/// assert!((x.window_prob(1, 3) - 0.28).abs() < 1e-12);
/// // "ana" at position 3: .8*.9*.6 = .432
/// assert!((x.window_prob(3, 3) - 0.432).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpecialUncertainString {
    chars: Vec<u8>,
    probs: Vec<f64>,
}

impl SpecialUncertainString {
    /// Builds a validated special uncertain string: probabilities in `(0, 1]`.
    pub fn new(chars: Vec<u8>, probs: Vec<f64>) -> Result<Self, ModelError> {
        if chars.len() != probs.len() {
            return Err(ModelError::Parse {
                detail: format!(
                    "character count {} does not match probability count {}",
                    chars.len(),
                    probs.len()
                ),
            });
        }
        for (i, &p) in probs.iter().enumerate() {
            if !(p > 0.0 && p <= 1.0 + PROB_EPS) {
                return Err(ModelError::InvalidProbability {
                    position: i,
                    ch: chars[i],
                    prob: p,
                });
            }
        }
        Ok(Self { chars, probs })
    }

    /// Internal constructor bypassing validation (used by the transform,
    /// whose outputs are valid by construction and contain separator bytes).
    pub(crate) fn from_raw(chars: Vec<u8>, probs: Vec<f64>) -> Self {
        debug_assert_eq!(chars.len(), probs.len());
        Self { chars, probs }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.chars.len()
    }

    /// Returns `true` for the empty string.
    pub fn is_empty(&self) -> bool {
        self.chars.is_empty()
    }

    /// The deterministic character sequence.
    pub fn chars(&self) -> &[u8] {
        &self.chars
    }

    /// The per-position probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Character at position `i`.
    #[inline]
    pub fn char_at(&self, i: usize) -> u8 {
        self.chars[i]
    }

    /// Probability at position `i`.
    #[inline]
    pub fn prob_at(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// Product of probabilities over the window `[start, start + len)`;
    /// 0 when the window leaves the string. Uses plain multiplication — for
    /// long windows prefer the index layer's cumulative log array.
    pub fn window_prob(&self, start: usize, len: usize) -> f64 {
        if start + len > self.probs.len() {
            return 0.0;
        }
        self.probs[start..start + len].iter().product()
    }

    /// Window probability honoring correlations (§4.1's verification rule):
    /// a correlated character inside the window conditions on the actual
    /// character stored at the conditioning position; outside, the law of
    /// total probability applies with the stored probability as the marginal.
    pub fn window_prob_with(&self, correlations: &CorrelationSet, start: usize, len: usize) -> f64 {
        if start + len > self.probs.len() {
            return 0.0;
        }
        let mut prob = 1.0;
        for i in start..start + len {
            let base = self.probs[i];
            let p = match correlations.get(i, self.chars[i]) {
                Some(corr) => {
                    let j = corr.cond_pos;
                    if j >= start && j < start + len {
                        corr.effective_prob(Some(self.chars[j]), 0.0)
                    } else {
                        // Marginal of the conditioning character: its stored
                        // probability if that character is the one present,
                        // else it can never occur in a special string.
                        let marginal = if self.chars.get(j) == Some(&corr.cond_char) {
                            self.probs[j]
                        } else {
                            0.0
                        };
                        corr.effective_prob(None, marginal)
                    }
                }
                None => base,
            };
            prob *= p;
        }
        prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::Correlation;

    fn banana() -> SpecialUncertainString {
        SpecialUncertainString::new(b"banana".to_vec(), vec![0.4, 0.7, 0.5, 0.8, 0.9, 0.6]).unwrap()
    }

    #[test]
    fn validation() {
        assert!(SpecialUncertainString::new(b"ab".to_vec(), vec![0.5]).is_err());
        assert!(SpecialUncertainString::new(b"a".to_vec(), vec![0.0]).is_err());
        assert!(SpecialUncertainString::new(b"a".to_vec(), vec![1.1]).is_err());
        assert!(SpecialUncertainString::new(Vec::new(), Vec::new())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn figure_5_cumulative_products() {
        // C = 0.4, 0.28, 0.14, 0.112, 0.1008, 0.06048 (paper rounds to 2dp).
        let x = banana();
        let mut c = 1.0;
        let expected = [0.4, 0.28, 0.14, 0.112, 0.1008, 0.060_48];
        for (i, e) in expected.iter().enumerate() {
            c *= x.prob_at(i);
            assert!((c - e).abs() < 1e-9, "C[{i}]");
        }
    }

    #[test]
    fn out_of_bounds_window() {
        let x = banana();
        assert_eq!(x.window_prob(4, 3), 0.0);
        assert_eq!(x.window_prob(6, 1), 0.0);
        assert_eq!(x.window_prob(0, 0), 1.0);
    }

    #[test]
    fn correlated_window_prob() {
        // X = (e,.6)(q,1)(z,.36); z conditioned on e at position 0.
        let x = SpecialUncertainString::new(b"eqz".to_vec(), vec![0.6, 1.0, 0.36]).unwrap();
        let mut corrs = CorrelationSet::new();
        corrs
            .add(Correlation {
                subject_pos: 2,
                subject_char: b'z',
                cond_pos: 0,
                cond_char: b'e',
                p_present: 0.3,
                p_absent: 0.4,
            })
            .unwrap();
        // Window covering the conditioning position: e is present.
        assert!((x.window_prob_with(&corrs, 0, 3) - 0.6 * 1.0 * 0.3).abs() < 1e-12);
        // Window "qz": marginal = .6*.3 + .4*.4 = .34.
        assert!((x.window_prob_with(&corrs, 1, 2) - 0.34).abs() < 1e-12);
        // No correlation involved.
        assert!((x.window_prob_with(&corrs, 0, 2) - 0.6).abs() < 1e-12);
    }
}
