//! Error type for model construction and validation.

use std::fmt;

/// Errors raised while constructing or validating uncertain strings.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A position was given no character choices.
    NoChoices { position: usize },
    /// A probability was outside `(0, 1]`.
    InvalidProbability { position: usize, ch: u8, prob: f64 },
    /// The same character appeared twice at one position.
    DuplicateChar { position: usize, ch: u8 },
    /// Probabilities at a position sum to more than 1.
    ProbabilitySumExceedsOne { position: usize, sum: f64 },
    /// The reserved sentinel byte (0) was used as a character.
    ReservedByte { position: usize },
    /// A threshold parameter was outside `(0, 1]`.
    InvalidThreshold { value: f64 },
    /// A query pattern was empty.
    EmptyPattern,
    /// A correlation referenced a position/character that does not exist.
    InvalidCorrelation { detail: String },
    /// Possible-world enumeration would exceed the safety limit.
    WorldExplosion { worlds_at_least: u128, limit: u128 },
    /// The transformed string would exceed the configured size limit.
    TransformTooLarge { produced: usize, limit: usize },
    /// Failure while parsing the text format.
    Parse { detail: String },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoChoices { position } => {
                write!(f, "position {position} has no character choices")
            }
            ModelError::InvalidProbability { position, ch, prob } => write!(
                f,
                "character {:?} at position {position} has probability {prob} outside (0, 1]",
                *ch as char
            ),
            ModelError::DuplicateChar { position, ch } => write!(
                f,
                "character {:?} appears twice at position {position}",
                *ch as char
            ),
            ModelError::ProbabilitySumExceedsOne { position, sum } => write!(
                f,
                "probabilities at position {position} sum to {sum} > 1"
            ),
            ModelError::ReservedByte { position } => write!(
                f,
                "byte 0 at position {position} is reserved as the factor separator"
            ),
            ModelError::InvalidThreshold { value } => {
                write!(f, "threshold {value} is outside (0, 1]")
            }
            ModelError::EmptyPattern => write!(f, "query pattern is empty"),
            ModelError::InvalidCorrelation { detail } => {
                write!(f, "invalid correlation: {detail}")
            }
            ModelError::WorldExplosion { worlds_at_least, limit } => write!(
                f,
                "possible-world enumeration needs at least {worlds_at_least} worlds (limit {limit})"
            ),
            ModelError::TransformTooLarge { produced, limit } => write!(
                f,
                "maximal-factor transform produced {produced} characters, exceeding the limit {limit}"
            ),
            ModelError::Parse { detail } => write!(f, "parse error: {detail}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::InvalidProbability {
            position: 3,
            ch: b'A',
            prob: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("'A'") && msg.contains("1.5") && msg.contains("position 3"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&ModelError::NoChoices { position: 0 });
    }
}
