//! Possible-world semantics (§1): exhaustive enumeration of the
//! deterministic strings an uncertain string can generate.
//!
//! The number of worlds grows exponentially, so enumeration is only suitable
//! for small strings — the workspace uses it as the ground-truth oracle in
//! tests, exactly the role "possible worlds" play in the paper's semantics.

use crate::{error::ModelError, string::UncertainString};

/// Default cap on enumerated worlds (≈ one million).
pub const DEFAULT_WORLD_LIMIT: u128 = 1 << 20;

/// Iterator over `(world, probability)` pairs in odometer order (the choice
/// at the last position varies fastest).
pub struct WorldIter<'a> {
    s: &'a UncertainString,
    /// Current choice index at each position; `None` once exhausted.
    state: Option<Vec<usize>>,
}

impl<'a> WorldIter<'a> {
    fn new(s: &'a UncertainString) -> Self {
        let state = if s.is_empty() {
            Some(Vec::new())
        } else {
            Some(vec![0; s.len()])
        };
        Self { s, state }
    }
}

impl Iterator for WorldIter<'_> {
    type Item = (Vec<u8>, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let state = self.state.as_mut()?;
        let result = {
            let chars: Vec<u8> = state
                .iter()
                .enumerate()
                .map(|(i, &k)| self.s.position(i).choices()[k].0)
                .collect();
            let prob = self.s.match_probability(&chars, 0);
            (chars, prob)
        };
        // Advance the odometer.
        let mut i = state.len();
        loop {
            if i == 0 {
                self.state = None;
                break;
            }
            i -= 1;
            state[i] += 1;
            if state[i] < self.s.position(i).num_choices() {
                break;
            }
            state[i] = 0;
        }
        Some(result)
    }
}

impl UncertainString {
    /// Number of possible worlds (product of per-position choice counts),
    /// saturating at `u128::MAX`.
    pub fn num_worlds(&self) -> u128 {
        self.positions()
            .iter()
            .fold(1u128, |acc, p| acc.saturating_mul(p.num_choices() as u128))
    }

    /// Enumerates every possible world with its probability, failing when
    /// more than [`DEFAULT_WORLD_LIMIT`] worlds would be produced.
    pub fn possible_worlds(&self) -> Result<Vec<(Vec<u8>, f64)>, ModelError> {
        self.possible_worlds_with_limit(DEFAULT_WORLD_LIMIT)
    }

    /// Enumerates every possible world with an explicit safety limit.
    pub fn possible_worlds_with_limit(
        &self,
        limit: u128,
    ) -> Result<Vec<(Vec<u8>, f64)>, ModelError> {
        let count = self.num_worlds();
        if count > limit {
            return Err(ModelError::WorldExplosion {
                worlds_at_least: count,
                limit,
            });
        }
        Ok(WorldIter::new(self).collect())
    }

    /// Iterator form of [`Self::possible_worlds`] without the safety check.
    pub fn worlds_iter(&self) -> WorldIter<'_> {
        WorldIter::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_has_twelve_worlds() {
        let s = UncertainString::parse("a:.3,b:.4,d:.3 | a:.6,c:.4 | d | a:.5,c:.5 | a").unwrap();
        assert_eq!(s.num_worlds(), 12);
        let worlds = s.possible_worlds().unwrap();
        assert_eq!(worlds.len(), 12);
        let total: f64 = worlds.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9, "world probabilities sum to 1");
        // Spot-check the figure: aadaa = .09, badaa = .12, dcdca = .06.
        let lookup = |w: &[u8]| {
            worlds
                .iter()
                .find(|(chars, _)| chars == w)
                .map(|&(_, p)| p)
                .unwrap()
        };
        assert!((lookup(b"aadaa") - 0.09).abs() < 1e-12);
        assert!((lookup(b"badaa") - 0.12).abs() < 1e-12);
        assert!((lookup(b"dcdca") - 0.06).abs() < 1e-12);
    }

    #[test]
    fn deterministic_string_has_one_world() {
        let s = UncertainString::deterministic(b"abc");
        let worlds = s.possible_worlds().unwrap();
        assert_eq!(worlds, vec![(b"abc".to_vec(), 1.0)]);
    }

    #[test]
    fn empty_string_has_one_empty_world() {
        let s = UncertainString::new(Vec::new());
        let worlds = s.possible_worlds().unwrap();
        assert_eq!(worlds.len(), 1);
        assert!(worlds[0].0.is_empty());
        assert_eq!(worlds[0].1, 1.0);
    }

    #[test]
    fn explosion_guard() {
        // 4^40 worlds blows past any reasonable limit.
        let rows: Vec<Vec<(u8, f64)>> = (0..40)
            .map(|_| vec![(b'a', 0.25), (b'b', 0.25), (b'c', 0.25), (b'd', 0.25)])
            .collect();
        let s = UncertainString::from_rows(rows).unwrap();
        assert!(matches!(
            s.possible_worlds(),
            Err(ModelError::WorldExplosion { .. })
        ));
        // Iterator access still works if the caller insists.
        assert!(s.worlds_iter().next().is_some());
    }

    #[test]
    fn worlds_are_distinct() {
        let s = UncertainString::parse("a:.5,b:.5 | c:.4,d:.6").unwrap();
        let worlds = s.possible_worlds().unwrap();
        let mut seen: Vec<Vec<u8>> = worlds.iter().map(|(w, _)| w.clone()).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 4);
    }
}
