//! Character-level uncertain string model (Sections 1, 3, 5.1 of
//! Thankachan et al., EDBT 2016).
//!
//! An *uncertain string* assigns, at every position, a set of
//! `(character, probability)` choices. This crate provides:
//!
//! * [`UncertainChar`] / [`UncertainString`] — the model, with parsing,
//!   validation, and exact occurrence-probability evaluation
//!   ([`UncertainString::match_probability`]).
//! * [`Correlation`] / [`CorrelationSet`] — the pairwise correlation model of
//!   §3.3 (`pr⁺` when the conditioning character is present, `pr⁻` when
//!   absent, total-probability marginal when outside the window).
//! * Possible-world semantics ([`UncertainString::possible_worlds`]) used as
//!   the ground-truth oracle in tests.
//! * [`SpecialUncertainString`] — Definition 1: one probabilistic character
//!   per position.
//! * [`transform`] — the Lemma-2 reduction from a general uncertain string to
//!   a special one by concatenating *extended maximal factors* with respect
//!   to a construction-time threshold `τmin`, together with the position
//!   mapping `Pos` used to report original offsets.
//! * [`ProbPlane`] / [`MatchKernel`] — the flat `pos × σ` probability plane
//!   and its zero-allocation verification kernel: bit-identical to
//!   [`UncertainString::log_match_probability`], but evaluated as a tight
//!   flat-array loop (see [`plane`]). Every query executor in the workspace
//!   verifies candidates through it.

#![forbid(unsafe_code)]

pub mod canon;
mod chars;
mod correlation;
mod error;
pub mod kstats;
pub mod plane;
mod special;
mod string;
mod transform;
mod worlds;

pub use chars::UncertainChar;
pub use correlation::{Correlation, CorrelationSet};
pub use error::ModelError;
pub use plane::{MatchKernel, PatternRanks, ProbPlane};
pub use special::SpecialUncertainString;
pub use string::UncertainString;
pub use transform::{
    transform, transform_with_options, TransformOptions, Transformed, NO_POSITION, SENTINEL,
};
pub use worlds::{WorldIter, DEFAULT_WORLD_LIMIT};

/// Relative tolerance used for probability comparisons throughout the
/// workspace (products of hundreds of floats accumulate rounding error).
pub const PROB_EPS: f64 = 1e-9;

/// Natural-log threshold comparison with tolerance: `log_p >= log_tau` up to
/// [`PROB_EPS`].
#[inline]
pub fn log_meets_threshold(log_p: f64, log_tau: f64) -> bool {
    log_p >= log_tau - PROB_EPS
}
