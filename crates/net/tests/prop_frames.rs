//! Wire-protocol robustness: truncated, corrupted, and oversize frames fed
//! to a **live server** must each end in a clean error frame or a clean
//! disconnect — never a panic, a hang, or a partial answer — and must never
//! poison the server for the next, well-behaved client. (The WAL
//! truncation-fuzz style of `ustr-store/tests/prop_wal.rs`, aimed at a
//! socket instead of a log file.)

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;
use ustr_net::proto::{
    self, err_code, frame_bytes, Frame, DEFAULT_MAX_FRAME_LEN, NET_MAGIC, PROTOCOL_VERSION,
};
use ustr_net::{NetClient, NetServer, QueryRequest, ServerConfig};
use ustr_service::{QueryService, ServiceConfig};
use ustr_uncertain::UncertainString;

/// Frame-length cap the fuzz server enforces (small, so oversize cases are
/// cheap to construct).
const MAX_FRAME: usize = 4096;

fn fuzz_server() -> &'static NetServer {
    static SERVER: OnceLock<NetServer> = OnceLock::new();
    SERVER.get_or_init(|| {
        let docs = vec![
            UncertainString::parse("A:.9,B:.1 | B | C").unwrap(),
            UncertainString::parse("A:.5,B:.5 | B | C").unwrap(),
        ];
        let service = QueryService::build(
            &docs,
            0.05,
            ServiceConfig {
                threads: 2,
                shards: 2,
                cache_capacity: 8,
                epsilon: None,
            },
        )
        .unwrap();
        NetServer::serve(
            "127.0.0.1:0",
            Arc::new(service),
            ServerConfig {
                threads: 2,
                max_frame_len: MAX_FRAME,
                inflight: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap()
    })
}

/// Writes `bytes` to a fresh connection, half-closes, and reads whatever
/// the server sends until EOF (or a 2-second stall, which would mean a
/// hang). Returns the server's reply frames — panics if the reply stream
/// is not a well-formed frame sequence.
fn raw_session(bytes: &[u8]) -> Vec<Frame> {
    let stream = TcpStream::connect(fuzz_server().local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    // The server may close mid-write on malformed input: broken pipes are
    // part of the contract, not a failure.
    let _ = writer.write_all(bytes);
    let _ = stream.shutdown(Shutdown::Write);

    let mut reply = Vec::new();
    let mut reader = stream;
    reader
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let mut chunk = [0u8; 1024];
    loop {
        match reader.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => reply.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                panic!("server stalled for 2s instead of answering or closing")
            }
            Err(_) => break, // reset by peer: a clean disconnect for us
        }
    }

    // Whatever came back must parse as complete frames: a partial answer
    // on the wire is a protocol bug.
    let mut frames = Vec::new();
    let mut cursor = &reply[..];
    loop {
        match proto::read_message(&mut cursor, DEFAULT_MAX_FRAME_LEN) {
            Ok(Some(frame)) => frames.push(frame),
            Ok(None) => break,
            Err(e) => panic!("server sent a malformed frame: {e}"),
        }
    }
    frames
}

/// Every reply frame a fuzzed session may legally contain.
fn assert_legal_replies(frames: &[Frame]) {
    for frame in frames {
        match frame {
            Frame::HelloAck { version, .. } => assert_eq!(*version, PROTOCOL_VERSION),
            Frame::Response { result, .. } => {
                // A response only ever answers a decoded request; errors
                // inside it are per-query validation failures.
                if let Err(e) = result {
                    assert!(!e.message.is_empty());
                }
            }
            Frame::Error { code, .. } => assert!(
                matches!(
                    *code,
                    err_code::BAD_HANDSHAKE
                        | err_code::UNSUPPORTED_VERSION
                        | err_code::MALFORMED_FRAME
                ),
                "unknown error code {code}"
            ),
            Frame::Goodbye => {}
            other => panic!("server must never send {other:?}"),
        }
    }
}

/// The server still serves a fresh, well-behaved client.
fn assert_server_healthy() {
    let mut client = NetClient::connect(fuzz_server().local_addr()).unwrap();
    let answers = client
        .query_requests(&[QueryRequest::Threshold {
            pattern: b"AB".to_vec(),
            tau: 0.3,
        }])
        .unwrap();
    assert!(answers[0].is_ok(), "healthy client must get an answer");
}

/// A well-formed session prefix: handshake plus `n` valid requests.
fn valid_session_bytes(n: usize) -> Vec<u8> {
    let mut bytes = frame_bytes(&Frame::Hello {
        magic: NET_MAGIC,
        version: PROTOCOL_VERSION,
    });
    for id in 0..n as u64 {
        bytes.extend_from_slice(&frame_bytes(&Frame::Request {
            id,
            request: QueryRequest::Threshold {
                pattern: b"AB".to_vec(),
                tau: 0.3,
            },
        }));
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary byte blobs: the server answers with well-formed frames (if
    /// anything) and never wedges.
    #[test]
    fn random_garbage_is_answered_or_dropped_cleanly(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let frames = raw_session(&bytes);
        assert_legal_replies(&frames);
        assert_server_healthy();
    }

    /// A valid session truncated at an arbitrary byte boundary: every reply
    /// is a complete HelloAck/Response/Error frame — answered requests are
    /// answered whole, the torn tail is an error or a silent close.
    #[test]
    fn truncated_sessions_never_yield_partial_answers(
        nreq in 1usize..4,
        cut_seed in 0usize..10_000,
    ) {
        let bytes = valid_session_bytes(nreq);
        let cut = cut_seed % (bytes.len() + 1);
        let frames = raw_session(&bytes[..cut]);
        assert_legal_replies(&frames);
        // Every fully delivered request is answered exactly once, whole.
        let hello_len = frame_bytes(&Frame::Hello {
            magic: NET_MAGIC,
            version: PROTOCOL_VERSION,
        })
        .len();
        if cut >= hello_len {
            prop_assert!(
                matches!(frames.first(), Some(Frame::HelloAck { .. })),
                "complete handshake must be acknowledged: {frames:?}"
            );
            let req_len = (bytes.len() - hello_len) / nreq;
            let delivered = (cut - hello_len) / req_len;
            let answers = frames
                .iter()
                .filter(|f| matches!(f, Frame::Response { .. }))
                .count();
            prop_assert_eq!(answers, delivered, "one whole answer per whole request");
        }
        assert_server_healthy();
    }

    /// A flipped byte anywhere in a valid session: the checksum (or the
    /// decoder) catches it; replies stay well-formed; the server survives.
    #[test]
    fn corrupted_sessions_fail_cleanly(
        nreq in 1usize..4,
        flip_seed in 0usize..10_000,
        mask in 1u8..255,
    ) {
        let mut bytes = valid_session_bytes(nreq);
        let at = flip_seed % bytes.len();
        bytes[at] ^= mask;
        let frames = raw_session(&bytes);
        assert_legal_replies(&frames);
        assert_server_healthy();
    }
}

#[test]
fn oversize_frames_are_refused_before_the_body_is_read() {
    // As the handshake: a declared length just above the server's cap.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&((MAX_FRAME + 1) as u32).to_le_bytes());
    let frames = raw_session(&bytes);
    assert!(
        frames
            .iter()
            .any(|f| matches!(f, Frame::Error { code, .. } if *code == err_code::MALFORMED_FRAME)),
        "oversize handshake frame must be answered with MALFORMED_FRAME: {frames:?}"
    );

    // Mid-session: a healthy handshake, then an oversize request frame.
    let mut bytes = frame_bytes(&Frame::Hello {
        magic: NET_MAGIC,
        version: PROTOCOL_VERSION,
    });
    bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
    let frames = raw_session(&bytes);
    assert!(matches!(frames.first(), Some(Frame::HelloAck { .. })));
    assert!(
        frames
            .iter()
            .any(|f| matches!(f, Frame::Error { code, .. } if *code == err_code::MALFORMED_FRAME)),
        "oversize request frame must be answered with MALFORMED_FRAME: {frames:?}"
    );
    assert_server_healthy();
}

#[test]
fn wrong_magic_is_a_bad_handshake() {
    let frames = raw_session(&frame_bytes(&Frame::Hello {
        magic: *b"NOTUSTR!",
        version: PROTOCOL_VERSION,
    }));
    assert!(
        frames
            .iter()
            .any(|f| matches!(f, Frame::Error { code, .. } if *code == err_code::BAD_HANDSHAKE)),
        "{frames:?}"
    );
    assert_server_healthy();
}

#[test]
fn out_of_state_frames_mid_session_are_fatal_but_answered() {
    // Handshake, one valid request, then a HelloAck (a frame only servers
    // send): the request is answered, the stray frame is a clean error.
    let mut bytes = valid_session_bytes(1);
    bytes.extend_from_slice(&frame_bytes(&Frame::HelloAck {
        version: PROTOCOL_VERSION,
        num_docs: 0,
        tau_min: 0.0,
    }));
    let frames = raw_session(&bytes);
    assert_legal_replies(&frames);
    assert!(frames.iter().any(|f| matches!(f, Frame::Response { .. })));
    assert!(frames
        .iter()
        .any(|f| matches!(f, Frame::Error { code, .. } if *code == err_code::MALFORMED_FRAME)));
    assert_server_healthy();
}
