//! Server/client equivalence: answers received over TCP are byte-identical
//! to in-process `Engine` answers for all four query modes — from a `.coll`
//! collection snapshot, from a live directory (including while ingest is
//! racing the queries), and with both served concurrently to 8+
//! connections.

use std::sync::Arc;

use ustr_live::{LiveConfig, LiveService};
use ustr_net::proto::{encode_frame, Frame};
use ustr_net::{NetClient, NetServer, QueryBackend, QueryRequest, QueryResponse, ServerConfig};
use ustr_service::{QueryService, ServiceConfig};
use ustr_uncertain::UncertainString;
use ustr_workload::{generate_collection, DatasetConfig};

const CONNS: usize = 8;

fn mixed_batch() -> Vec<QueryRequest> {
    let mut out = Vec::new();
    for pattern in [&b"ab"[..], b"ba", b"aab"] {
        out.push(QueryRequest::Threshold {
            pattern: pattern.to_vec(),
            tau: 0.3,
        });
        out.push(QueryRequest::TopK {
            pattern: pattern.to_vec(),
            k: 5,
        });
        out.push(QueryRequest::Listing {
            pattern: pattern.to_vec(),
            tau: 0.2,
        });
        out.push(QueryRequest::Approx {
            pattern: pattern.to_vec(),
            tau: 0.3,
        });
    }
    out
}

/// Bitwise identity, checked on the wire encoding: two responses are
/// byte-identical when their encoded frames are equal byte for byte (f64s
/// compare as IEEE-754 bit patterns, not approximately).
fn assert_byte_identical(remote: &QueryResponse, local: &QueryResponse, what: &str) {
    let r = encode_frame(&Frame::Response {
        id: 0,
        result: Ok(remote.clone()),
    });
    let l = encode_frame(&Frame::Response {
        id: 0,
        result: Ok(local.clone()),
    });
    assert_eq!(r, l, "{what}: TCP answer is not byte-identical");
}

/// Runs `CONNS` concurrent clients against `addr`, each comparing `rounds`
/// full mixed-mode batches against the in-process reference answers.
fn assert_clients_match(addr: std::net::SocketAddr, reference: &dyn QueryBackend, rounds: usize) {
    let batch = mixed_batch();
    let local = reference.query_requests(&batch);
    std::thread::scope(|scope| {
        for conn in 0..CONNS {
            let batch = &batch;
            let local = &local;
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                for round in 0..rounds {
                    let remote = client.query_requests(batch).expect("batch");
                    for (q, (r, l)) in remote.iter().zip(local.iter()).enumerate() {
                        let r = r.as_ref().expect("remote answer");
                        let l = l.as_ref().expect("local answer");
                        assert_eq!(r, l, "conn {conn} round {round} query {q}");
                        assert_byte_identical(
                            r,
                            l,
                            &format!("conn {conn} round {round} query {q}"),
                        );
                    }
                }
                let _ = client.goodbye();
            });
        }
    });
}

#[test]
fn coll_snapshot_over_tcp_matches_in_process_for_all_modes() {
    let docs = generate_collection(&DatasetConfig::new(600, 0.25, 17));
    let built = QueryService::build(
        &docs,
        0.1,
        ServiceConfig {
            threads: 2,
            shards: 3,
            cache_capacity: 32,
            epsilon: Some(0.05),
        },
    )
    .unwrap();
    let path = std::env::temp_dir().join("ustr_net_equiv.coll");
    built.save_collection(&path).unwrap();
    let service = Arc::new(QueryService::load_collection(&path, ServiceConfig::default()).unwrap());
    let server = NetServer::serve(
        "127.0.0.1:0",
        Arc::clone(&service) as Arc<dyn QueryBackend>,
        ServerConfig::default(),
    )
    .unwrap();
    assert_clients_match(server.local_addr(), service.as_ref(), 3);
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn live_directory_over_tcp_matches_in_process_under_concurrent_ingest() {
    let dir = std::env::temp_dir().join("ustr_net_equiv_live");
    let _ = std::fs::remove_dir_all(&dir);
    let live = Arc::new(
        LiveService::open(
            &dir,
            LiveConfig {
                threads: 2,
                cache_capacity: 16,
                tau_min: 0.1,
                epsilon: None,
                seal_threshold: 8,
                compact_min_segments: 3,
            },
        )
        .unwrap(),
    );
    let seed_docs = generate_collection(&DatasetConfig::new(200, 0.25, 19));
    for d in &seed_docs {
        live.insert(d.clone()).unwrap();
    }

    let server = NetServer::serve(
        "127.0.0.1:0",
        Arc::clone(&live) as Arc<dyn QueryBackend>,
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    // Phase 1 — churn: ingest (and delete) while 8 connections query. Every
    // answer must be a whole, valid response for *some* consistent state;
    // seals and deletes racing the batch must never surface as errors,
    // hangs, or torn answers.
    let churn_docs = generate_collection(&DatasetConfig::new(150, 0.3, 23));
    let ingest_live = Arc::clone(&live);
    let ingest = std::thread::spawn(move || {
        for (i, d) in churn_docs.into_iter().enumerate() {
            let id = ingest_live.insert(d).expect("insert");
            if i % 5 == 4 {
                ingest_live.delete(id).expect("delete");
            }
            std::thread::sleep(std::time::Duration::from_micros(300));
        }
    });
    let batch = mixed_batch();
    std::thread::scope(|scope| {
        for _ in 0..CONNS {
            let batch = &batch;
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                for _ in 0..20 {
                    let remote = client.query_requests(batch).expect("batch under churn");
                    for r in &remote {
                        assert!(r.is_ok(), "churn answers cleanly: {r:?}");
                    }
                }
                let _ = client.goodbye();
            });
        }
    });
    ingest.join().unwrap();
    live.wait_idle().unwrap();

    // Phase 2 — quiesced: TCP answers are byte-identical to in-process
    // dispatch on the settled state.
    assert_clients_match(addr, live.as_ref(), 2);
    server.shutdown();
    drop(live);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn coll_and_live_directories_are_served_concurrently() {
    // One process, two servers: a static .coll snapshot and a live
    // directory, each answering 8 concurrent connections at once — the
    // serve-net deployment shape.
    let docs = generate_collection(&DatasetConfig::new(400, 0.25, 29));
    let built = QueryService::build(
        &docs,
        0.1,
        ServiceConfig {
            threads: 2,
            shards: 2,
            cache_capacity: 0,
            epsilon: Some(0.05),
        },
    )
    .unwrap();
    let path = std::env::temp_dir().join("ustr_net_dual.coll");
    built.save_collection(&path).unwrap();
    let coll = Arc::new(QueryService::load_collection(&path, ServiceConfig::default()).unwrap());

    let dir = std::env::temp_dir().join("ustr_net_dual_live");
    let _ = std::fs::remove_dir_all(&dir);
    let live = Arc::new(
        LiveService::open(
            &dir,
            LiveConfig {
                tau_min: 0.1,
                seal_threshold: 16,
                ..LiveConfig::default()
            },
        )
        .unwrap(),
    );
    for line in [
        "a | b:.6,a:.4 | a",
        "b | a | b:.7,c:.3",
        "a:.5,b:.5 | a | b",
    ] {
        live.insert(UncertainString::parse(line).unwrap()).unwrap();
    }
    live.wait_idle().unwrap();

    let coll_server = NetServer::serve(
        "127.0.0.1:0",
        Arc::clone(&coll) as Arc<dyn QueryBackend>,
        ServerConfig::default(),
    )
    .unwrap();
    let live_server = NetServer::serve(
        "127.0.0.1:0",
        Arc::clone(&live) as Arc<dyn QueryBackend>,
        ServerConfig::default(),
    )
    .unwrap();

    std::thread::scope(|scope| {
        let coll_addr = coll_server.local_addr();
        let live_addr = live_server.local_addr();
        let coll = Arc::clone(&coll);
        let live = Arc::clone(&live);
        scope.spawn(move || assert_clients_match(coll_addr, coll.as_ref(), 2));
        scope.spawn(move || assert_clients_match(live_addr, live.as_ref(), 2));
    });

    coll_server.shutdown();
    live_server.shutdown();
    drop(live);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&dir);
}
