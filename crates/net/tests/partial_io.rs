//! Partial-delivery robustness at the TCP level: sessions whose bytes
//! arrive one at a time, or split at every possible frame-boundary offset
//! (mid-header, mid-payload, mid-checksum), produce a response stream
//! byte-identical to whole-frame delivery; malformed frames are answered
//! with exactly one clean error frame before the connection closes; and
//! shutdown with many idle connections completes promptly.

use std::io::{Cursor, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ustr_net::proto::{
    err_code, frame_bytes, read_message, Frame, DEFAULT_MAX_FRAME_LEN, NET_MAGIC, PROTOCOL_VERSION,
};
use ustr_net::{NetClient, NetServer, QueryBackend, QueryRequest, ServerConfig};
use ustr_service::{QueryService, ServiceConfig};
use ustr_workload::{generate_collection, DatasetConfig};

/// One query worker so pipelined responses come back in request order and
/// the response byte stream is deterministic across deliveries.
fn serve(config: ServerConfig) -> (NetServer, Arc<QueryService>) {
    let docs = generate_collection(&DatasetConfig::new(120, 0.25, 41));
    let service = Arc::new(
        QueryService::build(
            &docs,
            0.1,
            ServiceConfig {
                threads: 1,
                shards: 2,
                cache_capacity: 16,
                epsilon: Some(0.05),
            },
        )
        .unwrap(),
    );
    let server = NetServer::serve(
        "127.0.0.1:0",
        Arc::clone(&service) as Arc<dyn QueryBackend>,
        config,
    )
    .unwrap();
    (server, service)
}

fn ordered_server() -> (NetServer, Arc<QueryService>) {
    serve(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    })
}

/// Hello + each request (ids 0..) + Goodbye, as raw wire bytes.
fn session_bytes(requests: &[QueryRequest]) -> Vec<u8> {
    let mut out = frame_bytes(&Frame::Hello {
        magic: NET_MAGIC,
        version: PROTOCOL_VERSION,
    });
    for (id, request) in requests.iter().enumerate() {
        out.extend_from_slice(&frame_bytes(&Frame::Request {
            id: id as u64,
            request: request.clone(),
        }));
    }
    out.extend_from_slice(&frame_bytes(&Frame::Goodbye));
    out
}

fn sample_requests() -> Vec<QueryRequest> {
    vec![
        QueryRequest::Threshold {
            pattern: b"ab".to_vec(),
            tau: 0.3,
        },
        QueryRequest::TopK {
            pattern: b"ba".to_vec(),
            k: 5,
        },
        QueryRequest::Listing {
            pattern: b"aab".to_vec(),
            tau: 0.2,
        },
    ]
}

/// Writes `pieces` to a fresh connection in order (flushing between them),
/// then reads the server's entire response stream until it closes.
fn deliver(addr: SocketAddr, pieces: &mut dyn Iterator<Item = &[u8]>) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    for piece in pieces {
        stream.write_all(piece).expect("write piece");
        stream.flush().expect("flush piece");
        std::thread::yield_now();
    }
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read replies");
    reply
}

/// Decodes a raw response stream into frames (errors if any bytes are torn).
fn decode_stream(bytes: &[u8]) -> Vec<Frame> {
    let mut cursor = Cursor::new(bytes);
    let mut frames = Vec::new();
    while let Some(frame) = read_message(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect("clean frame") {
        frames.push(frame);
    }
    frames
}

#[test]
fn byte_at_a_time_sessions_match_whole_frame_delivery() {
    let (server, _service) = ordered_server();
    let addr = server.local_addr();
    let bytes = session_bytes(&sample_requests());

    let whole = deliver(addr, &mut std::iter::once(&bytes[..]));
    let frames = decode_stream(&whole);
    assert_eq!(
        frames.len(),
        1 + sample_requests().len(),
        "HelloAck plus one response per request: {frames:?}"
    );
    assert!(matches!(frames[0], Frame::HelloAck { .. }));

    let dribbled = deliver(addr, &mut bytes.chunks(1));
    assert_eq!(
        whole, dribbled,
        "byte-at-a-time delivery changed the response stream"
    );
    server.shutdown();
}

#[test]
fn every_split_point_matches_whole_frame_delivery() {
    let (server, _service) = ordered_server();
    let addr = server.local_addr();
    // One request keeps the session short enough to try *every* cut: each
    // split lands mid-header, mid-payload, or mid-checksum of some frame.
    let bytes = session_bytes(&sample_requests()[..1]);

    let whole = deliver(addr, &mut std::iter::once(&bytes[..]));
    assert!(!whole.is_empty(), "whole-frame session got no replies");
    for cut in 1..bytes.len() {
        let (head, tail) = bytes.split_at(cut);
        let split = deliver(addr, &mut [head, tail].into_iter());
        assert_eq!(whole, split, "split at byte {cut} changed the responses");
    }
    server.shutdown();
}

/// Expects `reply` to be a handshake ack followed by exactly one error
/// frame with `code`, then end-of-stream (the `ack` flag drops the
/// HelloAck expectation for pre-handshake failures).
fn assert_single_error(reply: &[u8], ack: bool, code: u32, what: &str) {
    let frames = decode_stream(reply);
    let mut frames = frames.into_iter();
    if ack {
        assert!(
            matches!(frames.next(), Some(Frame::HelloAck { .. })),
            "{what}: expected HelloAck first"
        );
    }
    match frames.next() {
        Some(Frame::Error { code: got, message }) => {
            assert_eq!(got, code, "{what}: wrong error code ({message})");
            assert!(!message.is_empty(), "{what}: empty error message");
        }
        other => panic!("{what}: expected an error frame, got {other:?}"),
    }
    assert!(
        frames.next().is_none(),
        "{what}: frames after the fatal error"
    );
}

#[test]
fn malformed_frames_yield_one_clean_error_frame() {
    let (server, _service) = ordered_server();
    let addr = server.local_addr();
    let hello = frame_bytes(&Frame::Hello {
        magic: NET_MAGIC,
        version: PROTOCOL_VERSION,
    });

    // A corrupt frame mid-session: flip the last byte (checksum) of a
    // valid request.
    let mut corrupt = hello.clone();
    let mut request = frame_bytes(&Frame::Request {
        id: 7,
        request: sample_requests()[0].clone(),
    });
    let last = request.len() - 1;
    request[last] ^= 0xff;
    corrupt.extend_from_slice(&request);
    assert_single_error(
        &deliver(addr, &mut std::iter::once(&corrupt[..])),
        true,
        err_code::MALFORMED_FRAME,
        "corrupt checksum",
    );

    // An oversize header is refused from the 4 length bytes alone — the
    // claimed body never arrives, yet the error frame does.
    let mut oversize = hello.clone();
    oversize.extend_from_slice(&(u32::MAX - 8).to_le_bytes());
    oversize.extend_from_slice(&[0u8; 32]);
    assert_single_error(
        &deliver(addr, &mut std::iter::once(&oversize[..])),
        true,
        err_code::MALFORMED_FRAME,
        "oversize header",
    );

    // Garbage instead of a handshake: one error frame, no ack.
    let garbage = frame_bytes(&Frame::Goodbye);
    assert_single_error(
        &deliver(addr, &mut std::iter::once(&garbage[..])),
        false,
        err_code::BAD_HANDSHAKE,
        "handshake garbage",
    );
    server.shutdown();
}

#[test]
fn shutdown_with_many_idle_connections_is_fast() {
    let (server, _service) = serve(ServerConfig {
        threads: 1,
        io_threads: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let clients: Vec<NetClient> = (0..128)
        .map(|i| NetClient::connect(addr).unwrap_or_else(|e| panic!("connect {i}: {e}")))
        .collect();
    assert_eq!(server.active_connections(), 128);

    let start = Instant::now();
    server.shutdown();
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(1),
        "shutdown with 128 idle connections took {elapsed:?}"
    );
    drop(clients);
}
