//! The concurrent TCP server: readiness-driven event loops, per-connection
//! state machines, bounded in-flight backpressure, graceful drain.
//!
//! # Threading model
//!
//! A small fixed set of event-loop threads ([`ServerConfig::io_threads`])
//! drives every connection through a readiness poller
//! ([`ustr_poll::Poller`]: epoll on Linux, poll(2) elsewhere). Loop 0 owns
//! the non-blocking listener and deals accepted connections across the
//! loops round-robin; each loop owns its connections outright — their
//! partial-read buffers, write queues, and phase machines
//! (`Handshake → Serving → Draining`, see `crate::conn`) — so no
//! per-connection state is ever locked. Query execution still fans onto
//! the shared [`ThreadPool`] — the same `ustr-service` pool type the
//! in-process engine uses — so `N` connections pipelining requests share
//! one fixed set of workers. (Each worker drives
//! `backend.query_requests`, which in turn fans shards onto the backend
//! engine's own pool — the server pool bounds concurrent *requests*, the
//! engine pool bounds per-request index parallelism.) A finished worker
//! pushes the framed response into the owning loop's wake queue and rings
//! its waker; the loop flushes it on the next pass. Pool workers never
//! touch a socket: a slow or non-reading client backs up only its own
//! write queue (bounded by the in-flight window), never a shared query
//! worker, so one bad client cannot starve the other connections.
//!
//! # Backpressure
//!
//! Every connection has a bounded in-flight window
//! ([`ServerConfig::inflight`]): requests decoded but not yet fully
//! answered *on the wire*. At the bound the loop stops reading and parsing
//! that connection — its unread bytes stay in the kernel and TCP flow
//! control propagates the stall to the client. Memory per connection is
//! therefore bounded by `inflight × max_frame_len` (plus one read chunk)
//! regardless of how aggressively a client pipelines. A slot is released
//! only when its response frame has completely reached the socket, exactly
//! like the old per-connection writer releasing its permit after
//! `write_all`.
//!
//! # Shutdown
//!
//! [`NetServer::shutdown`] (also run on drop) is a drain, not an abort:
//! the listener retires, every connection stops *reading* (no new
//! requests), all in-flight queries run to completion and their responses
//! flush, then each handshaken connection receives [`crate::proto::Frame::Goodbye`] and
//! closes. A client that stops reading its responses cannot be drained;
//! after [`ServerConfig::drain_timeout`] its socket is force-closed so
//! shutdown always terminates. With only idle connections the drain is
//! just a Goodbye per socket — shutdown completes in milliseconds even
//! with hundreds of them. `shutdown` returns only after every event loop
//! has exited.

use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ustr_core::Error;
use ustr_obs::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, Tracer};
use ustr_poll::{Poller, Waker};
use ustr_service::{
    lock_clean, wait_clean, QueryRequest, QueryResponse, QueryService, ThreadPool, TraceSummary,
    WakeQueue,
};

use crate::event_loop::{EventLoop, LoopHandle, LoopMsg, LoopStats, LoopStatsSnapshot};
use crate::proto::DEFAULT_MAX_FRAME_LEN;

/// Anything the server can answer queries from: the static
/// [`QueryService`], the mutable [`ustr_live::LiveService`], or any other
/// implementor of the engine's typed dispatch path.
pub trait QueryBackend: Send + Sync {
    /// Answers a typed batch (positionally aligned with `requests`).
    fn query_requests(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse, Error>>;

    /// Documents currently served (point-in-time for mutable backends).
    fn num_docs(&self) -> usize;

    /// The serving threshold floor advertised in the handshake.
    fn tau_min(&self) -> f64;

    /// Point-in-time engine telemetry, folded into `Stats` answers.
    /// Backends without instrumentation report nothing.
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Rendered slow-query lines, worst first, folded into `Stats`
    /// answers. Backends without a slow-query log report nothing.
    fn slow_queries(&self, _n: usize) -> Vec<String> {
        Vec::new()
    }

    /// Answers a typed batch with tracing: `parents[q]`, when present, is a
    /// propagated client trace context the request's root span continues.
    /// The default (untraced backends) answers normally with no summaries.
    fn query_requests_traced(
        &self,
        requests: &[QueryRequest],
        _parents: &[Option<ustr_obs::TraceContext>],
    ) -> Vec<(Result<QueryResponse, Error>, Option<TraceSummary>)> {
        self.query_requests(requests)
            .into_iter()
            .map(|result| (result, None))
            .collect()
    }

    /// The backend's tracer, when it has one — lets the server expose
    /// trace export without knowing the concrete backend type.
    fn tracer(&self) -> Option<Arc<Tracer>> {
        None
    }

    /// `None` when fully healthy, or a description of a degraded-but-
    /// serving state (e.g. a live collection whose background maintenance
    /// halted on a storage fault: queries still answer from memory, but
    /// sealing/compaction stopped until recovery). Answers the protocol-v4
    /// [`crate::proto::Frame::HealthRequest`]. Static backends are always
    /// healthy.
    fn health(&self) -> Option<String> {
        None
    }
}

impl QueryBackend for QueryService {
    fn query_requests(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse, Error>> {
        QueryService::query_requests(self, requests)
    }

    fn num_docs(&self) -> usize {
        QueryService::num_docs(self)
    }

    fn tau_min(&self) -> f64 {
        QueryService::tau_min(self)
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        QueryService::metrics_snapshot(self)
    }

    fn slow_queries(&self, n: usize) -> Vec<String> {
        self.slow_log()
            .worst(n)
            .iter()
            .map(|e| e.render())
            .collect()
    }

    fn query_requests_traced(
        &self,
        requests: &[QueryRequest],
        parents: &[Option<ustr_obs::TraceContext>],
    ) -> Vec<(Result<QueryResponse, Error>, Option<TraceSummary>)> {
        QueryService::query_requests_traced(self, requests, parents)
    }

    fn tracer(&self) -> Option<Arc<Tracer>> {
        Some(Arc::clone(QueryService::tracer(self)))
    }
}

impl QueryBackend for ustr_live::LiveService {
    fn query_requests(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse, Error>> {
        ustr_live::LiveService::query_requests(self, requests)
    }

    fn num_docs(&self) -> usize {
        ustr_live::LiveService::num_docs(self)
    }

    fn tau_min(&self) -> f64 {
        ustr_live::LiveService::tau_min(self)
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        ustr_live::LiveService::metrics_snapshot(self)
    }

    fn slow_queries(&self, n: usize) -> Vec<String> {
        self.slow_log()
            .worst(n)
            .iter()
            .map(|e| e.render())
            .collect()
    }

    fn query_requests_traced(
        &self,
        requests: &[QueryRequest],
        parents: &[Option<ustr_obs::TraceContext>],
    ) -> Vec<(Result<QueryResponse, Error>, Option<TraceSummary>)> {
        ustr_live::LiveService::query_requests_traced(self, requests, parents)
    }

    fn tracer(&self) -> Option<Arc<Tracer>> {
        Some(Arc::clone(ustr_live::LiveService::tracer(self)))
    }

    fn health(&self) -> Option<String> {
        self.background_health()
    }
}

/// Per-server-instance telemetry. Instance-scoped (not the process-global
/// registry) so that parallel servers in one process — the test suite, or
/// a benchmark harness — never bleed into each other's `Stats` answers.
pub(crate) struct NetMetrics {
    pub(crate) registry: MetricsRegistry,
    pub(crate) conns_accepted: Counter,
    pub(crate) conns_open: Gauge,
    pub(crate) frames_in: Counter,
    pub(crate) frames_out: Counter,
    pub(crate) bytes_in: Counter,
    pub(crate) bytes_out: Counter,
    pub(crate) requests: Counter,
    rtt_threshold: Histogram,
    rtt_top_k: Histogram,
    rtt_listing: Histogram,
    rtt_approx: Histogram,
}

impl NetMetrics {
    fn new() -> Self {
        let registry = MetricsRegistry::default();
        Self {
            conns_accepted: registry.counter("net.conns_accepted"),
            conns_open: registry.gauge("net.conns_open"),
            frames_in: registry.counter("net.frames_in"),
            frames_out: registry.counter("net.frames_out"),
            bytes_in: registry.counter("net.bytes_in"),
            bytes_out: registry.counter("net.bytes_out"),
            requests: registry.counter("net.requests"),
            rtt_threshold: registry.histogram("net.rtt_us.threshold"),
            rtt_top_k: registry.histogram("net.rtt_us.top_k"),
            rtt_listing: registry.histogram("net.rtt_us.listing"),
            rtt_approx: registry.histogram("net.rtt_us.approx"),
            registry,
        }
    }

    pub(crate) fn rtt_for(&self, mode: &str) -> &Histogram {
        match mode {
            "threshold" => &self.rtt_threshold,
            "top_k" => &self.rtt_top_k,
            "listing" => &self.rtt_listing,
            _ => &self.rtt_approx,
        }
    }
}

/// Tuning knobs for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Query worker threads shared by every connection (0 = one per
    /// available core).
    pub threads: usize,
    /// Event-loop (I/O) threads driving connection readiness. Each loop
    /// owns a share of the connections; loop 0 also owns the listener.
    /// `0` picks a small automatic count from the available cores — I/O
    /// readiness is cheap, so a handful of loops drives hundreds of
    /// connections.
    pub io_threads: usize,
    /// Cap on one frame's payload length; larger frames are answered with a
    /// fatal error frame before the body is read.
    pub max_frame_len: usize,
    /// Per-connection bound on pipelined requests being computed or awaiting
    /// write (min 1). The loop stops reading that connection at the bound,
    /// so TCP flow control pushes back on the client.
    pub inflight: usize,
    /// When non-zero, stop accepting after this many connections (the
    /// already-accepted ones are served to completion). `0` accepts until
    /// [`NetServer::shutdown`].
    pub max_conns: usize,
    /// How long [`NetServer::shutdown`] waits for the graceful drain
    /// (in-flight responses flushing to clients) before force-closing the
    /// stragglers' sockets — without this bound, one client that stops
    /// reading its responses would wedge shutdown forever.
    pub drain_timeout: std::time::Duration,
    /// Reap a connection that has been completely quiet — no reads, no
    /// in-flight work, nothing queued to write — for this long. `None`
    /// (the default) never reaps: idle sessions are held open
    /// indefinitely, the pre-resilience behavior.
    pub idle_timeout: Option<std::time::Duration>,
    /// Per-connection budget of *failing* requests. Once a connection has
    /// produced this many error results it is drained with a fatal
    /// [`crate::proto::err_code::ERROR_BUDGET_EXCEEDED`] frame — after its
    /// pending answers are delivered (the answer-first contract). `0`
    /// (the default) disables the budget.
    pub error_budget: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            io_threads: 0,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            inflight: 64,
            max_conns: 0,
            drain_timeout: std::time::Duration::from_secs(5),
            idle_timeout: None,
            error_budget: 0,
        }
    }
}

/// What `wait`/`shutdown` block on: connections still alive anywhere, and
/// whether the accept side has permanently stopped.
#[derive(Default)]
pub(crate) struct Lifecycle {
    /// Accepted connections not yet closed (spans routing and serving).
    pub(crate) active: usize,
    /// The listener has retired (shutdown, or `max_conns` reached).
    pub(crate) accept_done: bool,
}

/// State shared by the event loops, the pool workers, and the server
/// handle.
pub(crate) struct Shared {
    pub(crate) backend: Arc<dyn QueryBackend>,
    pub(crate) pool: ThreadPool,
    pub(crate) config: ServerConfig,
    pub(crate) shutdown: AtomicBool,
    pub(crate) lifecycle: Mutex<Lifecycle>,
    pub(crate) lifecycle_changed: Condvar,
    pub(crate) next_conn: AtomicU64,
    pub(crate) metrics: NetMetrics,
    pub(crate) loop_stats: LoopStats,
    pub(crate) loops: Vec<LoopHandle>,
}

impl Shared {
    /// One more accepted connection is alive (counted at accept time, so a
    /// connection in transit between loops is never invisible to `wait`).
    pub(crate) fn acquire_active(&self) {
        lock_clean(&self.lifecycle).active += 1;
    }

    /// One connection fully closed.
    pub(crate) fn release_active(&self) {
        {
            let mut l = lock_clean(&self.lifecycle);
            l.active = l.active.saturating_sub(1);
        }
        self.lifecycle_changed.notify_all();
    }

    /// The accept side has permanently stopped.
    pub(crate) fn finish_accept(&self) {
        {
            lock_clean(&self.lifecycle).accept_done = true;
        }
        self.lifecycle_changed.notify_all();
    }
}

/// A running TCP query server. See the [module docs](self) for the
/// threading, backpressure, and shutdown guarantees.
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    loops: Mutex<Vec<JoinHandle<()>>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port — read it back with
    /// [`NetServer::local_addr`]) and starts serving `backend`.
    pub fn serve(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn QueryBackend>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let threads = if config.threads > 0 {
            config.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        let io_threads = if config.io_threads > 0 {
            config.io_threads
        } else {
            // Readiness dispatch is cheap: one loop drives hundreds of
            // connections, so even large machines want only a few.
            std::thread::available_parallelism().map_or(1, |n| (n.get() / 2).clamp(1, 4))
        };

        // Build each loop's poller/waker/queue first so every loop (and
        // `shutdown`) can reach every other loop through `Shared.loops`.
        let mut parts = Vec::with_capacity(io_threads);
        let mut handles = Vec::with_capacity(io_threads);
        for _ in 0..io_threads {
            let poller = Poller::new()?;
            let waker = Arc::new(Waker::new()?);
            let queue = Arc::new(WakeQueue::new({
                let waker = Arc::clone(&waker);
                move || waker.wake()
            }));
            handles.push(LoopHandle {
                queue: Arc::clone(&queue),
                waker: Arc::clone(&waker),
            });
            parts.push((poller, waker, queue));
        }

        let shared = Arc::new(Shared {
            backend,
            pool: ThreadPool::new(threads),
            config,
            shutdown: AtomicBool::new(false),
            lifecycle: Mutex::new(Lifecycle::default()),
            lifecycle_changed: Condvar::new(),
            next_conn: AtomicU64::new(0),
            metrics: NetMetrics::new(),
            loop_stats: LoopStats::default(),
            loops: handles,
        });

        let mut join = Vec::with_capacity(io_threads);
        let mut listener = Some(listener);
        for (index, (poller, waker, queue)) in parts.into_iter().enumerate() {
            let built = EventLoop::new(
                index,
                Arc::clone(&shared),
                poller,
                waker,
                queue,
                if index == 0 { listener.take() } else { None },
            );
            let spawned = built.and_then(|event_loop| {
                std::thread::Builder::new()
                    .name(format!("ustr-net-io-{index}"))
                    .spawn(move || event_loop.run())
            });
            match spawned {
                Ok(handle) => join.push(handle),
                Err(e) => {
                    // Unwind the loops already running before reporting.
                    // ordering: SeqCst — the shutdown edge (see shutdown()).
                    shared.shutdown.store(true, Ordering::SeqCst);
                    for h in &shared.loops {
                        h.waker.wake();
                    }
                    for handle in join {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(Self {
            addr,
            shared,
            loops: Mutex::new(join),
        })
    }

    /// The bound address (the real port, when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time server telemetry: connection and traffic counters
    /// plus the per-mode round-trip histograms. Server-instance scope only
    /// — fold in [`QueryBackend::metrics_snapshot`] for the full picture.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.registry.snapshot()
    }

    /// Point-in-time event-loop counters: readiness events delivered,
    /// waker firings, connections registered with the pollers. Kept out of
    /// the TCP `Stats` answers on purpose (a scrape over TCP is itself
    /// readiness events, so counting it there would break the answers'
    /// byte-stability); the HTTP [`NetServer::metrics_source`] exposition
    /// carries them as `net.loop.*`.
    pub fn loop_stats(&self) -> LoopStatsSnapshot {
        self.shared.loop_stats.snapshot()
    }

    /// The exact text a [`crate::proto::Frame::StatsRequest`] on this server is answered
    /// with: server + backend telemetry in the exposition format, followed
    /// by any slow-query lines.
    pub fn stats_text(&self) -> String {
        stats_text(&self.shared)
    }

    /// An owning snapshot source (server + backend metrics merged, plus
    /// the `net.loop.*` event-loop counters) for wiring into an exposition
    /// endpoint that must outlive any borrow of the server — e.g.
    /// `ustr_obs::MetricsServer::serve_with`.
    pub fn metrics_source(&self) -> impl Fn() -> MetricsSnapshot + Send + Sync + 'static {
        let shared = Arc::clone(&self.shared);
        move || {
            let mut snap = shared.metrics.registry.snapshot();
            snap.merge(&shared.backend.metrics_snapshot());
            let loops = shared.loop_stats.snapshot();
            snap.counters
                .insert("net.loop.ready_events".into(), loops.ready_events);
            snap.counters
                .insert("net.loop.wakeups".into(), loops.wakeups);
            snap.counters
                .insert("net.loop.reaped_idle".into(), loops.reaped_idle);
            snap.counters
                .insert("net.loop.reaped_draining".into(), loops.reaped_draining);
            snap.counters
                .insert("net.loop.budget_closes".into(), loops.budget_closes);
            snap.gauges.insert(
                "net.loop.conns_registered".into(),
                loops.registered_conns.min(i64::MAX as u64) as i64,
            );
            snap
        }
    }

    /// The backend's finished traces rendered as Chrome `trace_event`
    /// JSON (an empty but valid document when the backend is untraced or
    /// nothing has been sampled).
    pub fn traces_json(&self) -> String {
        traces_json(&self.shared)
    }

    /// An owning trace source for wiring into an exposition endpoint's
    /// `/traces` route (e.g. `ustr_obs::MetricsServer::serve_routes`).
    pub fn trace_source(&self) -> impl Fn() -> String + Send + Sync + 'static {
        let shared = Arc::clone(&self.shared);
        move || traces_json(&shared)
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        lock_clean(&self.shared.lifecycle).active
    }

    /// Blocks until accepting has stopped (shutdown requested, or
    /// [`ServerConfig::max_conns`] reached) **and** every accepted
    /// connection has fully drained. A `max_conns` server is "served to
    /// completion" when this returns.
    pub fn wait(&self) {
        let mut lifecycle = lock_clean(&self.shared.lifecycle);
        while !(lifecycle.accept_done && lifecycle.active == 0) {
            lifecycle = wait_clean(&self.shared.lifecycle_changed, lifecycle);
        }
    }

    /// Graceful shutdown: stop accepting, stop *reading* (no connection
    /// admits another request), let every in-flight query finish and its
    /// response flush, send [`crate::proto::Frame::Goodbye`], close. A connection whose
    /// client stops reading its responses cannot flush; after
    /// [`ServerConfig::drain_timeout`] such stragglers have their sockets
    /// force-closed (their remaining responses are dropped — the
    /// alternative is a shutdown that never returns). Returns when every
    /// event loop has exited. Idempotent.
    pub fn shutdown(&self) {
        // ordering: SeqCst — shutdown is a once-per-server edge whose flag
        // and waker signals must appear in one total order to every loop
        // and pool worker; contention is irrelevant here.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for handle in &self.shared.loops {
            handle.waker.wake();
        }
        let joinable = {
            let mut guard = lock_clean(&self.loops);
            std::mem::take(&mut *guard)
        };
        for handle in joinable {
            let _ = handle.join();
        }
        // Final sweep: a connection routed in the same instant its target
        // loop exited would otherwise leak its lifecycle slot. All loops
        // are gone, so draining here races with nothing.
        for handle in &self.shared.loops {
            for msg in handle.queue.drain() {
                if let LoopMsg::Conn(stream) = msg {
                    drop(stream);
                    self.shared.release_active();
                }
            }
        }
        self.shared.finish_accept();
        self.wait();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How many slow-query lines a `Stats` answer carries at most.
const STATS_SLOW_QUERIES: usize = 8;

/// Renders the `Stats` answer: server + backend telemetry merged into one
/// exposition-format snapshot, then slow-query lines as comments. Every
/// source is instance-scoped and the stats path itself counts nothing, so
/// equal state renders to equal bytes. (The `net.loop.*` counters stay out
/// for the same reason: a TCP scrape is itself readiness events.)
pub(crate) fn stats_text(shared: &Shared) -> String {
    let mut snap = shared.metrics.registry.snapshot();
    snap.merge(&shared.backend.metrics_snapshot());
    let mut text = snap.render_text();
    let slow = shared.backend.slow_queries(STATS_SLOW_QUERIES);
    if !slow.is_empty() {
        text.push_str("# slow queries (worst first)\n");
        for line in slow {
            text.push_str("# ");
            text.push_str(&line);
            text.push('\n');
        }
    }
    text
}

/// Renders the `StatsJson` answer: the same merged server + backend
/// snapshot as [`stats_text`], in the machine-readable JSON rendering
/// (slow-query lines are a text-exposition affordance and stay out).
pub(crate) fn stats_json(shared: &Shared) -> String {
    let mut snap = shared.metrics.registry.snapshot();
    snap.merge(&shared.backend.metrics_snapshot());
    snap.render_json()
}

/// Renders the backend's finished traces as Chrome `trace_event` JSON.
/// Untraced backends render the empty (still valid) document.
fn traces_json(shared: &Shared) -> String {
    match shared.backend.tracer() {
        Some(tracer) => ustr_obs::TraceExporter::new(tracer).chrome_json(),
        None => ustr_obs::chrome_trace_json(&[]),
    }
}
