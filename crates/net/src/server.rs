//! The concurrent TCP server: accept loop, per-connection pipelining,
//! bounded in-flight backpressure, graceful drain.
//!
//! # Threading model
//!
//! One accept thread owns the listener. Each connection gets one reader
//! thread (handshake + frame decode) and one writer thread (response
//! frames, each a single pre-framed buffer, so responses never interleave
//! on the wire); query execution fans onto the shared [`ThreadPool`] — the
//! same `ustr-service` pool type the in-process engine uses — so `N`
//! connections pipelining requests share one fixed set of workers. (Each
//! worker drives `backend.query_requests`, which in turn fans shards onto
//! the backend engine's own pool — the server pool bounds concurrent
//! *requests*, the engine pool bounds per-request index parallelism.)
//! Pool workers only compute and enqueue: a slow or non-reading client
//! stalls its own writer thread, never a shared query worker, so one bad
//! client cannot starve the other connections.
//!
//! # Backpressure
//!
//! Every connection holds a bounded in-flight permit counter
//! ([`ServerConfig::inflight`]). The reader acquires a permit *before*
//! decoding past a request and blocks when the connection already has that
//! many answers outstanding — it simply stops reading, and TCP flow control
//! propagates the stall to the client. Memory per connection is therefore
//! bounded by `inflight × max_frame_len` regardless of how aggressively a
//! client pipelines.
//!
//! # Shutdown
//!
//! [`NetServer::shutdown`] (also run on drop) is a drain, not an abort:
//! the listener stops accepting, every connection's read half is shut down
//! (no *new* requests), all in-flight queries run to completion and their
//! responses are written, then each connection receives [`Frame::Goodbye`]
//! and closes. A client that stops *reading* its responses cannot be
//! drained; after [`ServerConfig::drain_timeout`] its socket is
//! force-closed so shutdown always terminates. `shutdown` returns only
//! after every connection thread has exited.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ustr_core::Error;
use ustr_obs::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, Span, Tracer};
use ustr_service::{
    lock_clean, mode_name, wait_clean, wait_timeout_clean, QueryRequest, QueryResponse,
    QueryService, ThreadPool, TraceSummary,
};

use crate::proto::{
    decode_frame, err_code, frame_bytes, read_message, Frame, RemoteError, DEFAULT_MAX_FRAME_LEN,
    MIN_PROTOCOL_VERSION, NET_MAGIC, PROTOCOL_VERSION,
};

/// Anything the server can answer queries from: the static
/// [`QueryService`], the mutable [`ustr_live::LiveService`], or any other
/// implementor of the engine's typed dispatch path.
pub trait QueryBackend: Send + Sync {
    /// Answers a typed batch (positionally aligned with `requests`).
    fn query_requests(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse, Error>>;

    /// Documents currently served (point-in-time for mutable backends).
    fn num_docs(&self) -> usize;

    /// The serving threshold floor advertised in the handshake.
    fn tau_min(&self) -> f64;

    /// Point-in-time engine telemetry, folded into `Stats` answers.
    /// Backends without instrumentation report nothing.
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Rendered slow-query lines, worst first, folded into `Stats`
    /// answers. Backends without a slow-query log report nothing.
    fn slow_queries(&self, _n: usize) -> Vec<String> {
        Vec::new()
    }

    /// Answers a typed batch with tracing: `parents[q]`, when present, is a
    /// propagated client trace context the request's root span continues.
    /// The default (untraced backends) answers normally with no summaries.
    fn query_requests_traced(
        &self,
        requests: &[QueryRequest],
        _parents: &[Option<ustr_obs::TraceContext>],
    ) -> Vec<(Result<QueryResponse, Error>, Option<TraceSummary>)> {
        self.query_requests(requests)
            .into_iter()
            .map(|result| (result, None))
            .collect()
    }

    /// The backend's tracer, when it has one — lets the server expose
    /// trace export without knowing the concrete backend type.
    fn tracer(&self) -> Option<Arc<Tracer>> {
        None
    }
}

impl QueryBackend for QueryService {
    fn query_requests(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse, Error>> {
        QueryService::query_requests(self, requests)
    }

    fn num_docs(&self) -> usize {
        QueryService::num_docs(self)
    }

    fn tau_min(&self) -> f64 {
        QueryService::tau_min(self)
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        QueryService::metrics_snapshot(self)
    }

    fn slow_queries(&self, n: usize) -> Vec<String> {
        self.slow_log()
            .worst(n)
            .iter()
            .map(|e| e.render())
            .collect()
    }

    fn query_requests_traced(
        &self,
        requests: &[QueryRequest],
        parents: &[Option<ustr_obs::TraceContext>],
    ) -> Vec<(Result<QueryResponse, Error>, Option<TraceSummary>)> {
        QueryService::query_requests_traced(self, requests, parents)
    }

    fn tracer(&self) -> Option<Arc<Tracer>> {
        Some(Arc::clone(QueryService::tracer(self)))
    }
}

impl QueryBackend for ustr_live::LiveService {
    fn query_requests(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse, Error>> {
        ustr_live::LiveService::query_requests(self, requests)
    }

    fn num_docs(&self) -> usize {
        ustr_live::LiveService::num_docs(self)
    }

    fn tau_min(&self) -> f64 {
        ustr_live::LiveService::tau_min(self)
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        ustr_live::LiveService::metrics_snapshot(self)
    }

    fn slow_queries(&self, n: usize) -> Vec<String> {
        self.slow_log()
            .worst(n)
            .iter()
            .map(|e| e.render())
            .collect()
    }

    fn query_requests_traced(
        &self,
        requests: &[QueryRequest],
        parents: &[Option<ustr_obs::TraceContext>],
    ) -> Vec<(Result<QueryResponse, Error>, Option<TraceSummary>)> {
        ustr_live::LiveService::query_requests_traced(self, requests, parents)
    }

    fn tracer(&self) -> Option<Arc<Tracer>> {
        Some(Arc::clone(ustr_live::LiveService::tracer(self)))
    }
}

/// Per-server-instance telemetry. Instance-scoped (not the process-global
/// registry) so that parallel servers in one process — the test suite, or
/// a benchmark harness — never bleed into each other's `Stats` answers.
struct NetMetrics {
    registry: MetricsRegistry,
    conns_accepted: Counter,
    conns_open: Gauge,
    frames_in: Counter,
    frames_out: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    requests: Counter,
    rtt_threshold: Histogram,
    rtt_top_k: Histogram,
    rtt_listing: Histogram,
    rtt_approx: Histogram,
}

impl NetMetrics {
    fn new() -> Self {
        let registry = MetricsRegistry::default();
        Self {
            conns_accepted: registry.counter("net.conns_accepted"),
            conns_open: registry.gauge("net.conns_open"),
            frames_in: registry.counter("net.frames_in"),
            frames_out: registry.counter("net.frames_out"),
            bytes_in: registry.counter("net.bytes_in"),
            bytes_out: registry.counter("net.bytes_out"),
            requests: registry.counter("net.requests"),
            rtt_threshold: registry.histogram("net.rtt_us.threshold"),
            rtt_top_k: registry.histogram("net.rtt_us.top_k"),
            rtt_listing: registry.histogram("net.rtt_us.listing"),
            rtt_approx: registry.histogram("net.rtt_us.approx"),
            registry,
        }
    }

    fn rtt_for(&self, mode: &str) -> &Histogram {
        match mode {
            "threshold" => &self.rtt_threshold,
            "top_k" => &self.rtt_top_k,
            "listing" => &self.rtt_listing,
            _ => &self.rtt_approx,
        }
    }
}

/// Tuning knobs for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Query worker threads shared by every connection (0 = one per
    /// available core).
    pub threads: usize,
    /// Cap on one frame's payload length; larger frames are answered with a
    /// fatal error frame before the body is read.
    pub max_frame_len: usize,
    /// Per-connection bound on pipelined requests being computed or awaiting
    /// write (min 1). The reader stops consuming frames at the bound, so
    /// TCP flow control pushes back on the client.
    pub inflight: usize,
    /// When non-zero, stop accepting after this many connections (the
    /// already-accepted ones are served to completion). `0` accepts until
    /// [`NetServer::shutdown`].
    pub max_conns: usize,
    /// How long [`NetServer::shutdown`] waits for the graceful drain
    /// (in-flight responses flushing to clients) before force-closing the
    /// stragglers' sockets — without this bound, one client that stops
    /// reading its responses would wedge shutdown forever.
    pub drain_timeout: std::time::Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            inflight: 64,
            max_conns: 0,
            drain_timeout: std::time::Duration::from_secs(5),
        }
    }
}

/// Bounded in-flight counter: acquire blocks at the bound; `wait_idle`
/// blocks until every permit is back (the connection's drain barrier).
struct Permits {
    max: usize,
    in_use: Mutex<usize>,
    returned: Condvar,
}

impl Permits {
    fn new(max: usize) -> Self {
        Self {
            max: max.max(1),
            in_use: Mutex::new(0),
            returned: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut n = lock_clean(&self.in_use);
        while *n >= self.max {
            n = wait_clean(&self.returned, n);
        }
        *n += 1;
    }

    fn release(&self) {
        let mut n = lock_clean(&self.in_use);
        *n -= 1;
        self.returned.notify_all();
    }

    fn wait_idle(&self) {
        let mut n = lock_clean(&self.in_use);
        while *n > 0 {
            n = wait_clean(&self.returned, n);
        }
    }
}

/// Connection bookkeeping shared with the accept loop and `shutdown`.
#[derive(Default)]
struct ConnTable {
    /// Socket handles, for unblocking reader threads during shutdown.
    streams: HashMap<u64, TcpStream>,
    /// Reader threads not yet joined. Each exiting thread reaps its own
    /// entry (long-running servers must not accumulate one handle per
    /// connection ever served); `wait` joins whatever remains.
    threads: HashMap<u64, JoinHandle<()>>,
    /// Live connection count (threads still running).
    active: usize,
}

struct Shared {
    backend: Arc<dyn QueryBackend>,
    pool: ThreadPool,
    config: ServerConfig,
    shutdown: AtomicBool,
    conns: Mutex<ConnTable>,
    conns_changed: Condvar,
    next_conn: AtomicU64,
    metrics: NetMetrics,
}

impl Shared {
    /// Writes one pre-framed message; I/O errors are swallowed (a vanished
    /// client is not a server failure).
    fn send(writer: &Mutex<TcpStream>, frame: &Frame) {
        let bytes = frame_bytes(frame);
        let mut stream = lock_clean(writer);
        let _ = stream.write_all(&bytes);
    }
}

/// A running TCP query server. See the [module docs](self) for the
/// threading, backpressure, and shutdown guarantees.
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port — read it back with
    /// [`NetServer::local_addr`]) and starts serving `backend`.
    pub fn serve(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn QueryBackend>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let threads = if config.threads > 0 {
            config.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        let shared = Arc::new(Shared {
            backend,
            pool: ThreadPool::new(threads),
            config,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(ConnTable::default()),
            conns_changed: Condvar::new(),
            next_conn: AtomicU64::new(0),
            metrics: NetMetrics::new(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("ustr-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Self {
            addr,
            shared,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The bound address (the real port, when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time server telemetry: connection and traffic counters
    /// plus the per-mode round-trip histograms. Server-instance scope only
    /// — fold in [`QueryBackend::metrics_snapshot`] for the full picture.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.registry.snapshot()
    }

    /// The exact text a [`Frame::StatsRequest`] on this server is answered
    /// with: server + backend telemetry in the exposition format, followed
    /// by any slow-query lines.
    pub fn stats_text(&self) -> String {
        stats_text(&self.shared)
    }

    /// An owning snapshot source (server + backend metrics merged) for
    /// wiring into an exposition endpoint that must outlive any borrow of
    /// the server — e.g. `ustr_obs::MetricsServer::serve_with`.
    pub fn metrics_source(&self) -> impl Fn() -> MetricsSnapshot + Send + Sync + 'static {
        let shared = Arc::clone(&self.shared);
        move || {
            let mut snap = shared.metrics.registry.snapshot();
            snap.merge(&shared.backend.metrics_snapshot());
            snap
        }
    }

    /// The backend's finished traces rendered as Chrome `trace_event`
    /// JSON (an empty but valid document when the backend is untraced or
    /// nothing has been sampled).
    pub fn traces_json(&self) -> String {
        traces_json(&self.shared)
    }

    /// An owning trace source for wiring into an exposition endpoint's
    /// `/traces` route (e.g. `ustr_obs::MetricsServer::serve_routes`).
    pub fn trace_source(&self) -> impl Fn() -> String + Send + Sync + 'static {
        let shared = Arc::clone(&self.shared);
        move || traces_json(&shared)
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        lock_clean(&self.shared.conns).active
    }

    /// Blocks until the accept loop has stopped (shutdown requested, or
    /// [`ServerConfig::max_conns`] reached) **and** every accepted
    /// connection has fully drained. A `max_conns` server is "served to
    /// completion" when this returns.
    pub fn wait(&self) {
        if let Some(handle) = lock_clean(&self.accept).take() {
            let _ = handle.join();
        }
        let handles = {
            let mut table = lock_clean(&self.shared.conns);
            while table.active > 0 {
                table = wait_clean(&self.shared.conns_changed, table);
            }
            std::mem::take(&mut table.threads)
        };
        for (_, handle) in handles {
            let _ = handle.join();
        }
    }

    /// Graceful shutdown: stop accepting, stop *reading* (each connection's
    /// read half is shut down), let every in-flight query finish and its
    /// response flush, send [`Frame::Goodbye`], close. A connection whose
    /// client stops reading its responses cannot flush; after
    /// [`ServerConfig::drain_timeout`] such stragglers have their sockets
    /// force-closed (their remaining responses are dropped — the
    /// alternative is a shutdown that never returns). Returns when every
    /// connection thread has exited. Idempotent.
    pub fn shutdown(&self) {
        // ordering: SeqCst — shutdown is a once-per-server edge whose flag,
        // socket shutdowns, and condvar signals must appear in one total
        // order to every connection thread; contention is irrelevant here.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection; if the loop
        // already exited (max_conns reached) the connect simply fails.
        let _ = TcpStream::connect(self.addr);
        {
            let table = lock_clean(&self.shared.conns);
            for stream in table.streams.values() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        // Graceful drain window, then force-close whoever is left: a
        // write_all wedged on a non-reading client fails once the socket
        // is fully shut down, releasing its permits and its reader.
        let deadline = std::time::Instant::now() + self.shared.config.drain_timeout;
        {
            let mut table = lock_clean(&self.shared.conns);
            while table.active > 0 {
                let now = std::time::Instant::now();
                if now >= deadline {
                    for stream in table.streams.values() {
                        let _ = stream.shutdown(Shutdown::Both);
                    }
                    break;
                }
                let (t, _) = wait_timeout_clean(&self.shared.conns_changed, table, deadline - now);
                table = t;
            }
        }
        self.wait();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut served = 0usize;
    for stream in listener.incoming() {
        // ordering: SeqCst pairs with the store in shutdown(): the accept
        // loop must not accept after the flag is visible anywhere.
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else {
            // accept() can fail persistently (e.g. EMFILE under fd
            // pressure) without dequeuing anything: back off instead of
            // spinning a core.
            std::thread::sleep(std::time::Duration::from_millis(10));
            continue;
        };
        served += 1;
        spawn_connection(&shared, stream);
        let max = shared.config.max_conns;
        if max > 0 && served >= max {
            break;
        }
    }
}

fn spawn_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // ordering: SeqCst — a unique-id counter on the once-per-connection
    // path; consistency with the shutdown flag's total order is worth
    // more than the cycle Relaxed would save.
    let id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
    let read_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return, // dead socket: nothing to serve
    };
    let conn_shared = Arc::clone(shared);
    let mut table = lock_clean(&shared.conns);
    // Register the read half *before* the thread starts so a racing
    // shutdown can always unblock it.
    table.streams.insert(id, read_half);
    // ordering: SeqCst pairs with the store in shutdown(): a connection
    // registered after the flag is set must close, not serve.
    if conn_shared.shutdown.load(Ordering::SeqCst) {
        let _ = stream.shutdown(Shutdown::Both);
        table.streams.remove(&id);
        return;
    }
    table.active += 1;
    let handle = std::thread::Builder::new()
        .name(format!("ustr-net-conn-{id}"))
        .spawn(move || {
            handle_connection(&conn_shared, stream);
            // Self-reap: the spawner holds the table lock until the handle
            // is stored, so this remove always finds it (or runs after).
            // Dropping one's own JoinHandle just detaches the (already
            // finished) thread; `active` is what liveness waits on.
            let mut table = lock_clean(&conn_shared.conns);
            table.streams.remove(&id);
            table.threads.remove(&id);
            table.active -= 1;
            conn_shared.conns_changed.notify_all();
        });
    match handle {
        Ok(handle) => {
            table.threads.insert(id, handle);
        }
        Err(_) => {
            // Could not spawn: roll the registration back.
            table.streams.remove(&id);
            table.active -= 1;
        }
    }
}

/// Runs one connection to completion: handshake, pipelined request loop,
/// drain, goodbye.
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = std::io::BufReader::new(reader);
    let writer = Arc::new(Mutex::new(stream));
    let max_len = shared.config.max_frame_len;

    // Handshake: the first frame must be a well-formed Hello speaking a
    // supported version (v1 sessions predate the Stats frames, v2 sessions
    // predate the traced frames, but both are otherwise identical, so old
    // clients stay served; the ack echoes the client's version, which
    // becomes the session version gating the version-specific frame
    // kinds below). Anything else is answered with a fatal error frame
    // and close.
    let session_version = match read_message(&mut reader, max_len) {
        Ok(Some(Frame::Hello { magic, version })) if magic == NET_MAGIC => {
            if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
                Shared::send(
                    &writer,
                    &Frame::Error {
                        code: err_code::UNSUPPORTED_VERSION,
                        message: format!(
                            "protocol version {version} is not supported (this server \
                             speaks {MIN_PROTOCOL_VERSION} through {PROTOCOL_VERSION})"
                        ),
                    },
                );
                return;
            }
            Shared::send(
                &writer,
                &Frame::HelloAck {
                    version,
                    num_docs: shared.backend.num_docs() as u64,
                    tau_min: shared.backend.tau_min(),
                },
            );
            version
        }
        Ok(Some(_)) => {
            Shared::send(
                &writer,
                &Frame::Error {
                    code: err_code::BAD_HANDSHAKE,
                    message: "the first frame must be Hello with magic USTRNET1".into(),
                },
            );
            return;
        }
        Ok(None) => return, // connected and left: nothing to answer
        Err(e) => {
            Shared::send(
                &writer,
                &Frame::Error {
                    code: err_code::MALFORMED_FRAME,
                    message: format!("malformed handshake frame: {e}"),
                },
            );
            return;
        }
    };

    // Response writer: one thread per connection owns all response writes,
    // releasing the in-flight permit only after the frame hits the socket
    // (or the socket proves dead). Pool workers just compute and enqueue —
    // a slow or non-reading client stalls *its own* writer thread, never a
    // shared query worker, so one bad client cannot starve the others.
    // Each queued response carries a `counted` flag: query traffic feeds
    // the frames/bytes-out counters, `Stats` answers do not — a scrape
    // that counted its own response would never be byte-stable.
    let permits = Arc::new(Permits::new(shared.config.inflight));
    let (response_tx, response_rx) = std::sync::mpsc::channel::<(Vec<u8>, bool)>();
    let writer_thread = {
        let writer = Arc::clone(&writer);
        let permits = Arc::clone(&permits);
        let frames_out = shared.metrics.frames_out.clone();
        let bytes_out = shared.metrics.bytes_out.clone();
        let spawned = std::thread::Builder::new()
            .name("ustr-net-writer".into())
            .spawn(move || {
                let mut dead = false;
                for (bytes, counted) in response_rx {
                    if !dead {
                        let mut stream = lock_clean(&writer);
                        dead = stream.write_all(&bytes).is_err();
                        if !dead && counted {
                            frames_out.inc();
                            bytes_out.add(bytes.len() as u64);
                        }
                    }
                    // Released even when the client vanished: the reader's
                    // drain barrier must never wedge on a dead socket.
                    permits.release();
                }
            });
        match spawned {
            Ok(handle) => handle,
            Err(_) => return, // cannot serve without a writer
        }
    };

    // Request loop: decode, acquire an in-flight permit (backpressure), fan
    // the query onto the shared pool; the worker computes and enqueues.
    // Frames are read in two steps (raw payload, then decode) so the
    // traffic counters can see the wire length of each request.
    // Connections join the conns_accepted/conns_open counters only once
    // they issue their first query request: a monitoring session that only
    // ever scrapes `Stats` must not perturb the numbers it reads, or two
    // idle scrapes from separate connections could never be byte-equal.
    let mut counted_conn = false;
    let fatal = loop {
        let message = match ustr_store::read_frame(&mut reader, max_len) {
            Ok(None) => Ok(None),
            Ok(Some(payload)) => {
                let wire_len = (payload.len() + ustr_store::FRAME_OVERHEAD) as u64;
                decode_frame(&payload).map(|frame| Some((frame, wire_len)))
            }
            Err(e) => Err(e),
        };
        match message {
            Ok(Some((Frame::Request { id, request }, wire_len))) => {
                if !counted_conn {
                    counted_conn = true;
                    shared.metrics.conns_accepted.inc();
                    shared.metrics.conns_open.add(1);
                }
                shared.metrics.frames_in.inc();
                shared.metrics.bytes_in.add(wire_len);
                shared.metrics.requests.inc();
                permits.acquire();
                let backend = Arc::clone(&shared.backend);
                let response_tx = response_tx.clone();
                let permits = Arc::clone(&permits);
                let rtt = shared.metrics.rtt_for(mode_name(&request)).clone();
                shared.pool.execute(move || {
                    let span = Span::on(rtt);
                    let result = backend
                        .query_requests(std::slice::from_ref(&request))
                        .pop()
                        .unwrap_or_else(|| {
                            Err(Error::internal(
                                "the backend returned no response for a one-request batch",
                            ))
                        })
                        .map_err(|e| RemoteError::from(&e));
                    span.finish();
                    // A send failure means the writer died with the
                    // connection; release the permit here so the reader's
                    // drain barrier cannot wedge.
                    if response_tx
                        .send((frame_bytes(&Frame::Response { id, result }), true))
                        .is_err()
                    {
                        permits.release();
                    }
                });
            }
            Ok(Some((Frame::RequestTraced { id, request, trace }, wire_len))) => {
                // Traced queries are a v3 frame kind: a session that
                // negotiated an older version and sends one anyway is
                // malformed, exactly like an unknown kind byte would be.
                if session_version < 3 {
                    break Some(Frame::Error {
                        code: err_code::MALFORMED_FRAME,
                        message: format!(
                            "RequestTraced requires protocol version 3 \
                             (this session negotiated {session_version})"
                        ),
                    });
                }
                if !counted_conn {
                    counted_conn = true;
                    shared.metrics.conns_accepted.inc();
                    shared.metrics.conns_open.add(1);
                }
                shared.metrics.frames_in.inc();
                shared.metrics.bytes_in.add(wire_len);
                shared.metrics.requests.inc();
                permits.acquire();
                let backend = Arc::clone(&shared.backend);
                let response_tx = response_tx.clone();
                let permits = Arc::clone(&permits);
                let rtt = shared.metrics.rtt_for(mode_name(&request)).clone();
                shared.pool.execute(move || {
                    let span = Span::on(rtt);
                    let parent = ustr_obs::TraceContext::from(trace);
                    let (result, summary) = backend
                        .query_requests_traced(
                            std::slice::from_ref(&request),
                            std::slice::from_ref(&Some(parent)),
                        )
                        .pop()
                        .unwrap_or_else(|| {
                            (
                                Err(Error::internal(
                                    "the backend returned no response for a one-request batch",
                                )),
                                None,
                            )
                        });
                    let result = result.map_err(|e| RemoteError::from(&e));
                    span.finish();
                    // Per-stage server timings ride back on the response;
                    // an untraced backend (or unsampled trace) reports none.
                    let timings = summary
                        .map(|s| {
                            s.stages
                                .into_iter()
                                .map(|(name, us)| (name.to_string(), us))
                                .collect()
                        })
                        .unwrap_or_default();
                    if response_tx
                        .send((
                            frame_bytes(&Frame::ResponseTimed {
                                id,
                                result,
                                timings,
                            }),
                            true,
                        ))
                        .is_err()
                    {
                        permits.release();
                    }
                });
            }
            Ok(Some((Frame::StatsJsonRequest { id }, _))) => {
                if session_version < 3 {
                    break Some(Frame::Error {
                        code: err_code::MALFORMED_FRAME,
                        message: format!(
                            "StatsJsonRequest requires protocol version 3 \
                             (this session negotiated {session_version})"
                        ),
                    });
                }
                // Same inline, uncounted treatment as StatsRequest — the
                // answer reuses StatsResponse with a JSON body.
                permits.acquire();
                let text = stats_json(shared);
                if response_tx
                    .send((frame_bytes(&Frame::StatsResponse { id, text }), false))
                    .is_err()
                {
                    permits.release();
                }
            }
            Ok(Some((Frame::StatsRequest { id }, _))) => {
                // Answered inline (a snapshot render, not a query) but
                // still under a permit and through the writer channel, so
                // it stays ordered with the pipelined responses and the
                // drain barrier accounts for it. Deliberately invisible to
                // every counter: two idle scrapes return identical bytes.
                permits.acquire();
                let text = stats_text(shared);
                if response_tx
                    .send((frame_bytes(&Frame::StatsResponse { id, text }), false))
                    .is_err()
                {
                    permits.release();
                }
            }
            Ok(Some((Frame::Goodbye, _))) | Ok(None) => break None, // client done
            Ok(Some(_)) => {
                break Some(Frame::Error {
                    code: err_code::MALFORMED_FRAME,
                    message: "unexpected frame kind mid-session".into(),
                })
            }
            Err(e) => {
                break Some(Frame::Error {
                    code: err_code::MALFORMED_FRAME,
                    message: format!("malformed frame: {e}"),
                })
            }
        }
    };

    // Drain: every accepted request is answered (its response written, or
    // its client proven gone) before the session ends. The writer is idle
    // once the permits are back, so the final frame cannot interleave.
    permits.wait_idle();
    match fatal {
        Some(error_frame) => Shared::send(&writer, &error_frame),
        None => {
            // ordering: SeqCst pairs with the store in shutdown(): only a
            // server-initiated drain says Goodbye.
            if shared.shutdown.load(Ordering::SeqCst) {
                Shared::send(&writer, &Frame::Goodbye);
            }
        }
    }
    drop(response_tx);
    let _ = writer_thread.join();
    if counted_conn {
        shared.metrics.conns_open.sub(1);
    }
}

/// How many slow-query lines a `Stats` answer carries at most.
const STATS_SLOW_QUERIES: usize = 8;

/// Renders the `Stats` answer: server + backend telemetry merged into one
/// exposition-format snapshot, then slow-query lines as comments. Every
/// source is instance-scoped and the stats path itself counts nothing, so
/// equal state renders to equal bytes.
fn stats_text(shared: &Shared) -> String {
    let mut snap = shared.metrics.registry.snapshot();
    snap.merge(&shared.backend.metrics_snapshot());
    let mut text = snap.render_text();
    let slow = shared.backend.slow_queries(STATS_SLOW_QUERIES);
    if !slow.is_empty() {
        text.push_str("# slow queries (worst first)\n");
        for line in slow {
            text.push_str("# ");
            text.push_str(&line);
            text.push('\n');
        }
    }
    text
}

/// Renders the `StatsJson` answer: the same merged server + backend
/// snapshot as [`stats_text`], in the machine-readable JSON rendering
/// (slow-query lines are a text-exposition affordance and stay out).
fn stats_json(shared: &Shared) -> String {
    let mut snap = shared.metrics.registry.snapshot();
    snap.merge(&shared.backend.metrics_snapshot());
    snap.render_json()
}

/// Renders the backend's finished traces as Chrome `trace_event` JSON.
/// Untraced backends render the empty (still valid) document.
fn traces_json(shared: &Shared) -> String {
    match shared.backend.tracer() {
        Some(tracer) => ustr_obs::TraceExporter::new(tracer).chrome_json(),
        None => ustr_obs::chrome_trace_json(&[]),
    }
}
