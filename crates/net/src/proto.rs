//! The `ustr-net` wire protocol: typed frames over the shared
//! [`ustr_store::wire`] framing.
//!
//! Every message travels as one checksummed frame
//! ([`ustr_store::write_frame`] / [`ustr_store::read_frame`]: `u32` payload
//! length, payload, FNV-1a 64-bit trailer). The payload's first byte is the
//! frame kind; the body is encoded with the bounds-checked
//! [`Writer`]/[`Reader`] primitives, so `f64` probabilities travel as IEEE-754
//! bit patterns and decode **bit-exactly** — a response decoded by the client
//! compares equal to the server's in-process [`QueryResponse`].
//!
//! # Session shape
//!
//! ```text
//! client                                server
//!   │── Hello { magic, version } ─────────▶│   exactly one, first
//!   │◀─ HelloAck { version, docs, τmin } ──│   (or Error + close)
//!   │── Request { id, query }  ──────────▶│
//!   │── Request { id, query }  ──────────▶│   pipelined freely
//!   │◀─ Response { id, result } ───────────│   any order, matched by id
//!   │◀─ Response { id, result } ───────────│
//!   │── StatsRequest { id } ─────────────▶│   v2+: telemetry scrape
//!   │◀─ StatsResponse { id, text } ────────│   deterministic exposition text
//!   │── RequestTraced { id, query, ctx } ▶│   v3+: query + trace context
//!   │◀─ ResponseTimed { id, result, t[] } ─│   answer + per-stage timings
//!   │── StatsJsonRequest { id } ─────────▶│   v3+: JSON telemetry scrape
//!   │◀─ StatsResponse { id, json } ────────│   (same response frame, JSON body)
//!   │── HealthRequest { id } ────────────▶│   v4+: degradation probe
//!   │◀─ HealthResponse { id, degraded } ───│
//!   │◀─ Error { code, message } ───────────│   fatal: connection closes
//!   │◀─ Goodbye ───────────────────────────│   graceful server shutdown
//! ```
//!
//! Decoding is total: any truncated, corrupted, or structurally inconsistent
//! frame surfaces as a clean [`StoreError`], never a panic — the robustness
//! property tests in `tests/prop_frames.rs` fuzz this against a live server.

use std::sync::Arc;

use ustr_core::Error;
use ustr_service::{DocHits, ListingHit, QueryRequest, QueryResponse, TopHit};
use ustr_store::{write_frame, Reader, StoreError, Writer};

/// Magic bytes opening every [`Frame::Hello`].
pub const NET_MAGIC: [u8; 8] = *b"USTRNET1";

/// Protocol version spoken by this build. Version 2 added the
/// `StatsRequest`/`StatsResponse` telemetry frames; version 3 added the
/// tracing frames (`RequestTraced` carrying a propagated trace context,
/// `ResponseTimed` carrying per-stage server timings back) and the
/// `StatsJsonRequest` JSON telemetry scrape; version 4 adds the health
/// probe (`HealthRequest`/`HealthResponse`, reporting whether the backend
/// is degraded — e.g. a live collection whose background maintenance hit a
/// storage fault) and the [`err_code::ERROR_BUDGET_EXCEEDED`] close.
/// Everything an older session could say is byte-for-byte unchanged, so
/// the server still accepts any version in
/// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`] and answers with the
/// client's version (old clients stay served; newer-only frames on an
/// older session are a malformed-frame error). Anything outside the range
/// is answered with [`err_code::UNSUPPORTED_VERSION`] and a close.
pub const PROTOCOL_VERSION: u32 = 4;

/// Oldest protocol version the server still accepts.
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// Default cap on one frame's payload length (requests and responses).
pub const DEFAULT_MAX_FRAME_LEN: usize = 16 << 20;

/// Fatal protocol error codes carried by [`Frame::Error`]. After sending
/// one of these the server closes the connection (framing can no longer be
/// trusted, or the session never became valid).
pub mod err_code {
    /// The first frame was not a well-formed `Hello`.
    pub const BAD_HANDSHAKE: u32 = 1;
    /// The `Hello` named a protocol version this server does not speak.
    pub const UNSUPPORTED_VERSION: u32 = 2;
    /// A frame failed to decode (truncated, corrupt, oversize, or an
    /// unexpected kind mid-session).
    pub const MALFORMED_FRAME: u32 = 3;
    /// The connection produced more failing requests than the server's
    /// per-connection error budget allows (protocol v4+). Pending answers
    /// are still delivered first — the answer-first contract.
    pub const ERROR_BUDGET_EXCEEDED: u32 = 4;
}

/// Frame kind bytes (the first payload byte).
mod kind {
    pub const HELLO: u8 = 1;
    pub const HELLO_ACK: u8 = 2;
    pub const REQUEST: u8 = 3;
    pub const RESPONSE: u8 = 4;
    pub const ERROR: u8 = 5;
    pub const GOODBYE: u8 = 6;
    pub const STATS_REQUEST: u8 = 7;
    pub const STATS_RESPONSE: u8 = 8;
    pub const REQUEST_TRACED: u8 = 9;
    pub const RESPONSE_TIMED: u8 = 10;
    pub const STATS_JSON_REQUEST: u8 = 11;
    pub const HEALTH_REQUEST: u8 = 12;
    pub const HEALTH_RESPONSE: u8 = 13;
}

/// A trace context as carried on the wire (protocol v3+): the 128-bit
/// trace id split into two words, the parent span id, and the
/// originator's sampling decision. The deterministic sampler makes the
/// same keep/drop choice for the id on every node, so propagating the
/// originator's `sampled` bit only ever *adds* coverage (it forces
/// recording on servers whose local rate would skip the id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTraceContext {
    /// High 64 bits of the trace id.
    pub trace_hi: u64,
    /// Low 64 bits of the trace id.
    pub trace_lo: u64,
    /// Span id the server's root span should parent under.
    pub parent_span: u64,
    /// The originator's sampling decision.
    pub sampled: bool,
}

impl From<ustr_obs::TraceContext> for WireTraceContext {
    fn from(ctx: ustr_obs::TraceContext) -> Self {
        WireTraceContext {
            trace_hi: (ctx.trace_id >> 64) as u64,
            trace_lo: ctx.trace_id as u64,
            parent_span: ctx.parent_span,
            sampled: ctx.sampled,
        }
    }
}

impl From<WireTraceContext> for ustr_obs::TraceContext {
    fn from(wire: WireTraceContext) -> Self {
        ustr_obs::TraceContext {
            trace_id: (u128::from(wire.trace_hi) << 64) | u128::from(wire.trace_lo),
            parent_span: wire.parent_span,
            sampled: wire.sampled,
        }
    }
}

/// A query-layer error transported over the wire (the remote twin of
/// [`ustr_core::Error`]). Carried inside a [`Frame::Response`]: the
/// connection stays healthy — only this request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteError {
    /// Stable numeric code (one per [`ustr_core::Error`] variant).
    pub code: u8,
    /// The error's rendered message.
    pub message: String,
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (remote error code {})", self.message, self.code)
    }
}

impl std::error::Error for RemoteError {}

impl From<&Error> for RemoteError {
    fn from(e: &Error) -> Self {
        let code = match e {
            Error::EmptyPattern => 1,
            Error::PatternContainsSentinel => 2,
            Error::ThresholdBelowTauMin { .. } => 3,
            Error::InvalidThreshold { .. } => 4,
            Error::InvalidEpsilon { .. } => 5,
            Error::InvalidSnapshot { .. } => 6,
            Error::Model(_) => 7,
            Error::Internal { .. } => 8,
        };
        RemoteError {
            code,
            message: e.to_string(),
        }
    }
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client's opening frame: magic + the protocol version it speaks.
    Hello {
        /// Must equal [`NET_MAGIC`].
        magic: [u8; 8],
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Server's handshake acceptance, with a sketch of what it serves.
    HelloAck {
        /// The protocol version the session will speak.
        version: u32,
        /// Documents currently served (a point-in-time count for live
        /// collections).
        num_docs: u64,
        /// The serving threshold floor: τ below this fails validation.
        tau_min: f64,
    },
    /// One query, tagged with a connection-local id for pipelining.
    Request {
        /// Echoed verbatim in the matching [`Frame::Response`].
        id: u64,
        /// The query itself.
        request: QueryRequest,
    },
    /// The answer to the [`Frame::Request`] with the same `id`.
    Response {
        /// The id of the request this answers.
        id: u64,
        /// The engine's answer, or the per-request validation error.
        result: Result<QueryResponse, RemoteError>,
    },
    /// Telemetry scrape (protocol v2+), tagged like a request for
    /// pipelining. Deliberately excluded from the server's traffic
    /// counters so that two idle scrapes return byte-identical snapshots.
    StatsRequest {
        /// Echoed verbatim in the matching [`Frame::StatsResponse`].
        id: u64,
    },
    /// The server's telemetry snapshot: counters, gauges, and histograms
    /// rendered in the deterministic plaintext exposition format (see
    /// `ustr_obs::MetricsSnapshot::render_text`), followed by any
    /// slow-query lines.
    StatsResponse {
        /// The id of the [`Frame::StatsRequest`] this answers.
        id: u64,
        /// Exposition-format text (stable byte-for-byte given equal state).
        text: String,
    },
    /// One query plus a propagated trace context (protocol v3+). The
    /// server continues the trace — its spans share the client's trace id
    /// — and answers with a [`Frame::ResponseTimed`].
    RequestTraced {
        /// Echoed verbatim in the matching [`Frame::ResponseTimed`].
        id: u64,
        /// The query itself.
        request: QueryRequest,
        /// The client's trace context for this request.
        trace: WireTraceContext,
    },
    /// The answer to the [`Frame::RequestTraced`] with the same `id`,
    /// plus the server-side per-stage breakdown (protocol v3+). The
    /// result bytes are identical to the plain [`Frame::Response`]
    /// encoding — tracing never changes an answer.
    ResponseTimed {
        /// The id of the traced request this answers.
        id: u64,
        /// The engine's answer, or the per-request validation error.
        result: Result<QueryResponse, RemoteError>,
        /// `(stage name, microseconds)` measured on the server, in
        /// lifecycle order — the remote breakdown a client can print.
        timings: Vec<(String, u64)>,
    },
    /// JSON telemetry scrape (protocol v3+): answered with a
    /// [`Frame::StatsResponse`] whose `text` is the deterministic JSON
    /// rendering (`ustr_obs::MetricsSnapshot::render_json`). Excluded
    /// from traffic counters like [`Frame::StatsRequest`].
    StatsJsonRequest {
        /// Echoed verbatim in the matching [`Frame::StatsResponse`].
        id: u64,
    },
    /// Health probe (protocol v4+), tagged like a request for pipelining.
    /// Excluded from traffic counters like [`Frame::StatsRequest`].
    HealthRequest {
        /// Echoed verbatim in the matching [`Frame::HealthResponse`].
        id: u64,
    },
    /// The server's health report: whether the backend is degraded —
    /// still answering queries but with some capability impaired (e.g. a
    /// live collection whose background maintenance halted on a storage
    /// fault and is serving from memory until recovery).
    HealthResponse {
        /// The id of the [`Frame::HealthRequest`] this answers.
        id: u64,
        /// `true` when some backend capability is impaired.
        degraded: bool,
        /// Human-readable description of the impairment (empty when
        /// healthy).
        detail: String,
    },
    /// Fatal protocol failure; the sender closes the connection after it.
    Error {
        /// One of the [`err_code`] constants.
        code: u32,
        /// Human-readable description.
        message: String,
    },
    /// Graceful end-of-session notice (server shutdown drain complete).
    Goodbye,
}

fn put_string(w: &mut Writer, s: &str) {
    w.put_bytes(s.as_bytes());
}

fn get_string(r: &mut Reader<'_>) -> Result<String, StoreError> {
    String::from_utf8(r.get_bytes()?).map_err(|_| StoreError::Corrupt {
        detail: "string field is not UTF-8".into(),
    })
}

/// Query-mode tag bytes shared by requests and responses.
mod mode {
    pub const THRESHOLD: u8 = 1;
    pub const TOP_K: u8 = 2;
    pub const LISTING: u8 = 3;
    pub const APPROX: u8 = 4;
}

fn encode_request(w: &mut Writer, req: &QueryRequest) {
    match req {
        QueryRequest::Threshold { pattern, tau } => {
            w.put_u8(mode::THRESHOLD);
            w.put_bytes(pattern);
            w.put_f64(*tau);
        }
        QueryRequest::TopK { pattern, k } => {
            w.put_u8(mode::TOP_K);
            w.put_bytes(pattern);
            w.put_u64(*k as u64);
        }
        QueryRequest::Listing { pattern, tau } => {
            w.put_u8(mode::LISTING);
            w.put_bytes(pattern);
            w.put_f64(*tau);
        }
        QueryRequest::Approx { pattern, tau } => {
            w.put_u8(mode::APPROX);
            w.put_bytes(pattern);
            w.put_f64(*tau);
        }
    }
}

fn decode_request(r: &mut Reader<'_>) -> Result<QueryRequest, StoreError> {
    let tag = r.get_u8()?;
    let pattern = r.get_bytes()?;
    Ok(match tag {
        mode::THRESHOLD => QueryRequest::Threshold {
            pattern,
            tau: r.get_f64()?,
        },
        mode::TOP_K => QueryRequest::TopK {
            pattern,
            k: r.get_usize()?,
        },
        mode::LISTING => QueryRequest::Listing {
            pattern,
            tau: r.get_f64()?,
        },
        mode::APPROX => QueryRequest::Approx {
            pattern,
            tau: r.get_f64()?,
        },
        other => {
            return Err(StoreError::Corrupt {
                detail: format!("unknown query mode byte {other}"),
            })
        }
    })
}

fn encode_doc_hits(w: &mut Writer, docs: &[DocHits]) {
    w.put_u64(docs.len() as u64);
    for d in docs {
        w.put_u64(d.doc as u64);
        w.put_u64(d.hits.len() as u64);
        for &(pos, p) in &d.hits {
            w.put_u64(pos as u64);
            w.put_f64(p);
        }
    }
}

fn decode_doc_hits(r: &mut Reader<'_>) -> Result<Vec<DocHits>, StoreError> {
    let n = r.get_len(16)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let doc = r.get_usize()?;
        let m = r.get_len(16)?;
        let mut hits = Vec::with_capacity(m);
        for _ in 0..m {
            hits.push((r.get_usize()?, r.get_f64()?));
        }
        out.push(DocHits { doc, hits });
    }
    Ok(out)
}

fn encode_result(w: &mut Writer, result: &Result<QueryResponse, RemoteError>) {
    match result {
        Err(e) => {
            w.put_u8(0);
            w.put_u8(e.code);
            put_string(w, &e.message);
        }
        Ok(QueryResponse::Threshold(docs)) => {
            w.put_u8(mode::THRESHOLD);
            encode_doc_hits(w, docs);
        }
        Ok(QueryResponse::TopK(top)) => {
            w.put_u8(mode::TOP_K);
            w.put_u64(top.len() as u64);
            for h in top.iter() {
                w.put_u64(h.doc as u64);
                w.put_u64(h.pos as u64);
                w.put_f64(h.prob);
            }
        }
        Ok(QueryResponse::Listing(listed)) => {
            w.put_u8(mode::LISTING);
            w.put_u64(listed.len() as u64);
            for h in listed.iter() {
                w.put_u64(h.doc as u64);
                w.put_f64(h.relevance);
            }
        }
        Ok(QueryResponse::Approx(docs)) => {
            w.put_u8(mode::APPROX);
            encode_doc_hits(w, docs);
        }
    }
}

fn decode_result(r: &mut Reader<'_>) -> Result<Result<QueryResponse, RemoteError>, StoreError> {
    Ok(match r.get_u8()? {
        0 => Err(RemoteError {
            code: r.get_u8()?,
            message: get_string(r)?,
        }),
        mode::THRESHOLD => Ok(QueryResponse::Threshold(Arc::new(decode_doc_hits(r)?))),
        mode::TOP_K => {
            let n = r.get_len(24)?;
            let mut top = Vec::with_capacity(n);
            for _ in 0..n {
                top.push(TopHit {
                    doc: r.get_usize()?,
                    pos: r.get_usize()?,
                    prob: r.get_f64()?,
                });
            }
            Ok(QueryResponse::TopK(Arc::new(top)))
        }
        mode::LISTING => {
            let n = r.get_len(16)?;
            let mut listed = Vec::with_capacity(n);
            for _ in 0..n {
                listed.push(ListingHit {
                    doc: r.get_usize()?,
                    relevance: r.get_f64()?,
                });
            }
            Ok(QueryResponse::Listing(Arc::new(listed)))
        }
        mode::APPROX => Ok(QueryResponse::Approx(Arc::new(decode_doc_hits(r)?))),
        other => {
            return Err(StoreError::Corrupt {
                detail: format!("unknown response tag byte {other}"),
            })
        }
    })
}

/// Encodes one frame's *payload* (kind byte + body, no length/checksum).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut w = Writer::new();
    match frame {
        Frame::Hello { magic, version } => {
            w.put_u8(kind::HELLO);
            for &b in magic {
                w.put_u8(b);
            }
            w.put_u32(*version);
        }
        Frame::HelloAck {
            version,
            num_docs,
            tau_min,
        } => {
            w.put_u8(kind::HELLO_ACK);
            w.put_u32(*version);
            w.put_u64(*num_docs);
            w.put_f64(*tau_min);
        }
        Frame::Request { id, request } => {
            w.put_u8(kind::REQUEST);
            w.put_u64(*id);
            encode_request(&mut w, request);
        }
        Frame::Response { id, result } => {
            w.put_u8(kind::RESPONSE);
            w.put_u64(*id);
            encode_result(&mut w, result);
        }
        Frame::StatsRequest { id } => {
            w.put_u8(kind::STATS_REQUEST);
            w.put_u64(*id);
        }
        Frame::StatsResponse { id, text } => {
            w.put_u8(kind::STATS_RESPONSE);
            w.put_u64(*id);
            put_string(&mut w, text);
        }
        Frame::RequestTraced { id, request, trace } => {
            w.put_u8(kind::REQUEST_TRACED);
            w.put_u64(*id);
            encode_request(&mut w, request);
            w.put_u64(trace.trace_hi);
            w.put_u64(trace.trace_lo);
            w.put_u64(trace.parent_span);
            w.put_u8(u8::from(trace.sampled));
        }
        Frame::ResponseTimed {
            id,
            result,
            timings,
        } => {
            w.put_u8(kind::RESPONSE_TIMED);
            w.put_u64(*id);
            encode_result(&mut w, result);
            w.put_u64(timings.len() as u64);
            for (stage, us) in timings {
                put_string(&mut w, stage);
                w.put_u64(*us);
            }
        }
        Frame::StatsJsonRequest { id } => {
            w.put_u8(kind::STATS_JSON_REQUEST);
            w.put_u64(*id);
        }
        Frame::HealthRequest { id } => {
            w.put_u8(kind::HEALTH_REQUEST);
            w.put_u64(*id);
        }
        Frame::HealthResponse {
            id,
            degraded,
            detail,
        } => {
            w.put_u8(kind::HEALTH_RESPONSE);
            w.put_u64(*id);
            w.put_u8(u8::from(*degraded));
            put_string(&mut w, detail);
        }
        Frame::Error { code, message } => {
            w.put_u8(kind::ERROR);
            w.put_u32(*code);
            put_string(&mut w, message);
        }
        Frame::Goodbye => w.put_u8(kind::GOODBYE),
    }
    w.into_bytes()
}

/// Decodes one frame payload. Total: every malformed input is a clean
/// [`StoreError`]; trailing bytes after a well-formed body are rejected.
pub fn decode_frame(payload: &[u8]) -> Result<Frame, StoreError> {
    let mut r = Reader::new(payload);
    let frame = match r.get_u8()? {
        kind::HELLO => {
            let mut magic = [0u8; 8];
            for b in &mut magic {
                *b = r.get_u8()?;
            }
            Frame::Hello {
                magic,
                version: r.get_u32()?,
            }
        }
        kind::HELLO_ACK => Frame::HelloAck {
            version: r.get_u32()?,
            num_docs: r.get_u64()?,
            tau_min: r.get_f64()?,
        },
        kind::REQUEST => Frame::Request {
            id: r.get_u64()?,
            request: decode_request(&mut r)?,
        },
        kind::RESPONSE => Frame::Response {
            id: r.get_u64()?,
            result: decode_result(&mut r)?,
        },
        kind::STATS_REQUEST => Frame::StatsRequest { id: r.get_u64()? },
        kind::STATS_RESPONSE => Frame::StatsResponse {
            id: r.get_u64()?,
            text: get_string(&mut r)?,
        },
        kind::REQUEST_TRACED => Frame::RequestTraced {
            id: r.get_u64()?,
            request: decode_request(&mut r)?,
            trace: {
                let trace_hi = r.get_u64()?;
                let trace_lo = r.get_u64()?;
                let parent_span = r.get_u64()?;
                let sampled = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(StoreError::Corrupt {
                            detail: format!("invalid sampled flag byte {other}"),
                        })
                    }
                };
                WireTraceContext {
                    trace_hi,
                    trace_lo,
                    parent_span,
                    sampled,
                }
            },
        },
        kind::RESPONSE_TIMED => Frame::ResponseTimed {
            id: r.get_u64()?,
            result: decode_result(&mut r)?,
            timings: {
                let n = r.get_len(16)?;
                let mut timings = Vec::with_capacity(n);
                for _ in 0..n {
                    let stage = get_string(&mut r)?;
                    timings.push((stage, r.get_u64()?));
                }
                timings
            },
        },
        kind::STATS_JSON_REQUEST => Frame::StatsJsonRequest { id: r.get_u64()? },
        kind::HEALTH_REQUEST => Frame::HealthRequest { id: r.get_u64()? },
        kind::HEALTH_RESPONSE => Frame::HealthResponse {
            id: r.get_u64()?,
            degraded: match r.get_u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(StoreError::Corrupt {
                        detail: format!("invalid degraded flag byte {other}"),
                    })
                }
            },
            detail: get_string(&mut r)?,
        },
        kind::ERROR => Frame::Error {
            code: r.get_u32()?,
            message: get_string(&mut r)?,
        },
        kind::GOODBYE => Frame::Goodbye,
        other => {
            return Err(StoreError::Corrupt {
                detail: format!("unknown frame kind byte {other}"),
            })
        }
    };
    if !r.is_exhausted() {
        return Err(StoreError::Corrupt {
            detail: "trailing bytes after frame body".into(),
        });
    }
    Ok(frame)
}

/// One frame, fully framed (length prefix + payload + checksum) as a single
/// buffer — so a connection writer can emit it with one `write_all` under
/// its lock, never interleaving two frames.
pub fn frame_bytes(frame: &Frame) -> Vec<u8> {
    let payload = encode_frame(frame);
    let mut out = Vec::with_capacity(payload.len() + ustr_store::FRAME_OVERHEAD);
    // Writing into a Vec is infallible, so the Err arm is unreachable —
    // and if that ever changes, an unframed (empty) buffer is a no-op for
    // the writer, not a panic that takes the connection down.
    if write_frame(&mut out, &payload).is_err() {
        out.clear();
    }
    out
}

/// Reads and decodes one frame from a stream. `Ok(None)` is a clean
/// end-of-stream at a frame boundary; everything malformed is a
/// [`StoreError`].
pub fn read_message(
    input: impl std::io::Read,
    max_payload_len: usize,
) -> Result<Option<Frame>, StoreError> {
    match ustr_store::read_frame(input, max_payload_len)? {
        None => Ok(None),
        Some(payload) => Ok(Some(decode_frame(&payload)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                magic: NET_MAGIC,
                version: PROTOCOL_VERSION,
            },
            Frame::HelloAck {
                version: 1,
                num_docs: 42,
                tau_min: 0.05,
            },
            Frame::Request {
                id: 7,
                request: QueryRequest::Threshold {
                    pattern: b"AB".to_vec(),
                    tau: 0.25,
                },
            },
            Frame::Request {
                id: 8,
                request: QueryRequest::TopK {
                    pattern: b"X".to_vec(),
                    k: 5,
                },
            },
            Frame::Response {
                id: 7,
                result: Ok(QueryResponse::Threshold(Arc::new(vec![DocHits {
                    doc: 3,
                    hits: vec![(0, 0.9), (4, 0.25)],
                }]))),
            },
            Frame::Response {
                id: 8,
                result: Ok(QueryResponse::TopK(Arc::new(vec![TopHit {
                    doc: 1,
                    pos: 2,
                    prob: 0.75,
                }]))),
            },
            Frame::Response {
                id: 9,
                result: Ok(QueryResponse::Listing(Arc::new(vec![ListingHit {
                    doc: 0,
                    relevance: 0.5,
                }]))),
            },
            Frame::Response {
                id: 10,
                result: Err(RemoteError {
                    code: 1,
                    message: "query pattern is empty".into(),
                }),
            },
            Frame::StatsRequest { id: 11 },
            Frame::StatsResponse {
                id: 11,
                text: "# TYPE ustr_net_requests counter\nustr_net_requests 12\n".into(),
            },
            Frame::RequestTraced {
                id: 12,
                request: QueryRequest::Threshold {
                    pattern: b"AB".to_vec(),
                    tau: 0.25,
                },
                trace: WireTraceContext {
                    trace_hi: 0xdead_beef_0000_0001,
                    trace_lo: 0x1234_5678_9abc_def0,
                    parent_span: 42,
                    sampled: true,
                },
            },
            Frame::ResponseTimed {
                id: 12,
                result: Ok(QueryResponse::Threshold(Arc::new(vec![DocHits {
                    doc: 3,
                    hits: vec![(0, 0.9)],
                }]))),
                timings: vec![
                    ("cache_lookup".to_string(), 3),
                    ("fanout".to_string(), 1200),
                    ("merge".to_string(), 40),
                ],
            },
            Frame::ResponseTimed {
                id: 13,
                result: Err(RemoteError {
                    code: 4,
                    message: "invalid threshold".into(),
                }),
                timings: Vec::new(),
            },
            Frame::StatsJsonRequest { id: 14 },
            Frame::HealthRequest { id: 15 },
            Frame::HealthResponse {
                id: 15,
                degraded: true,
                detail: "background maintenance halted: injected fault".into(),
            },
            Frame::HealthResponse {
                id: 16,
                degraded: false,
                detail: String::new(),
            },
            Frame::Error {
                code: err_code::MALFORMED_FRAME,
                message: "bad frame".into(),
            },
            Frame::Goodbye,
        ]
    }

    #[test]
    fn every_frame_round_trips_bit_exactly() {
        for frame in frames() {
            let payload = encode_frame(&frame);
            assert_eq!(decode_frame(&payload).unwrap(), frame);
        }
    }

    #[test]
    fn a_session_transcript_round_trips_through_a_stream() {
        let mut stream = Vec::new();
        for frame in frames() {
            stream.extend_from_slice(&frame_bytes(&frame));
        }
        let mut cursor = &stream[..];
        for frame in frames() {
            assert_eq!(
                read_message(&mut cursor, DEFAULT_MAX_FRAME_LEN)
                    .unwrap()
                    .unwrap(),
                frame
            );
        }
        assert!(read_message(&mut cursor, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .is_none());
    }

    #[test]
    fn truncated_payloads_fail_cleanly_at_every_cut() {
        for frame in frames() {
            let payload = encode_frame(&frame);
            for cut in 0..payload.len() {
                assert!(
                    decode_frame(&payload[..cut]).is_err(),
                    "{frame:?} cut at {cut} must fail"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_frame(&Frame::Goodbye);
        payload.push(0);
        assert!(matches!(
            decode_frame(&payload),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn wire_trace_context_round_trips_the_full_128_bit_id() {
        let ctx = ustr_obs::TraceContext {
            trace_id: 0xfedc_ba98_7654_3210_0123_4567_89ab_cdef,
            parent_span: u64::MAX,
            sampled: true,
        };
        let wire = WireTraceContext::from(ctx);
        assert_eq!(ustr_obs::TraceContext::from(wire), ctx);
    }

    #[test]
    fn invalid_sampled_flag_is_rejected() {
        let frame = Frame::RequestTraced {
            id: 1,
            request: QueryRequest::Threshold {
                pattern: b"A".to_vec(),
                tau: 0.5,
            },
            trace: WireTraceContext {
                trace_hi: 0,
                trace_lo: 1,
                parent_span: 0,
                sampled: false,
            },
        };
        let mut payload = encode_frame(&frame);
        let flag = payload.len() - 1;
        payload[flag] = 2;
        assert!(matches!(
            decode_frame(&payload),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn invalid_degraded_flag_is_rejected() {
        let frame = Frame::HealthResponse {
            id: 1,
            degraded: false,
            detail: String::new(),
        };
        let mut payload = encode_frame(&frame);
        // kind(1) + id(8) puts the flag at offset 9.
        payload[9] = 7;
        assert!(matches!(
            decode_frame(&payload),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn v2_frame_encodings_are_unchanged_by_the_v3_bump() {
        // A v2 peer's bytes must decode identically under v3 — pin the
        // exact encoding of each pre-v3 frame kind.
        let request = Frame::Request {
            id: 7,
            request: QueryRequest::Threshold {
                pattern: b"AB".to_vec(),
                tau: 0.25,
            },
        };
        let mut expect = vec![3u8]; // kind::REQUEST
        expect.extend_from_slice(&7u64.to_le_bytes());
        expect.push(1); // mode::THRESHOLD
        expect.extend_from_slice(&2u64.to_le_bytes());
        expect.extend_from_slice(b"AB");
        expect.extend_from_slice(&0.25f64.to_bits().to_le_bytes());
        assert_eq!(encode_frame(&request), expect);

        let stats = Frame::StatsRequest { id: 9 };
        let mut expect = vec![7u8]; // kind::STATS_REQUEST
        expect.extend_from_slice(&9u64.to_le_bytes());
        assert_eq!(encode_frame(&stats), expect);

        assert_eq!(encode_frame(&Frame::Goodbye), vec![6u8]);
    }

    #[test]
    fn remote_errors_carry_stable_codes() {
        let e = Error::ThresholdBelowTauMin {
            tau: 0.01,
            tau_min: 0.05,
        };
        let remote = RemoteError::from(&e);
        assert_eq!(remote.code, 3);
        assert!(remote.message.contains("0.05"), "{remote}");
    }
}
