//! The readiness-driven I/O engine behind [`crate::NetServer`].
//!
//! One small set of event-loop threads replaces the old two-threads-per-
//! connection model: each loop owns a [`Poller`], a [`Waker`], and a share
//! of the connections; loop 0 additionally owns the (non-blocking)
//! listener and deals new connections round-robin. Sockets are
//! non-blocking and level-triggered — the loop reads what is there, parses
//! with [`FrameReader`], fans queries onto the shared `ustr-service`
//! [`ThreadPool`](ustr_service::ThreadPool), and drains finished responses
//! from a [`WakeQueue`] the pool workers push into (the push wakes the
//! poller, so a response never waits for an unrelated readiness event).
//!
//! # Event-thread invariants (see `INVARIANTS.md`)
//!
//! * **No blocking syscalls on the event thread.** The only place a loop
//!   thread parks is `Poller::wait`. Sockets are non-blocking from the
//!   moment they are accepted; writes go through [`WriteQueue`] which
//!   stops at `WouldBlock`; queries run on the pool, never inline.
//! * **No guard held across `wait`.** The loop owns its connections
//!   outright (a plain `HashMap`, no locks); the only shared state it
//!   touches — the message queue and the lifecycle table — is locked
//!   briefly and released before the next poll.
//! * **Interest mirrors ability to act.** Read interest is dropped while a
//!   connection's in-flight window is full (backpressure: unread bytes
//!   stay in the kernel and TCP pushes back on the client) and while
//!   draining; write interest exists only while the write queue is
//!   non-empty. A level-triggered poller busy-loops otherwise.

use std::collections::HashMap;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ustr_obs::Span;
use ustr_poll::{Interest, Poller, Waker};
use ustr_service::{mode_name, QueryRequest, WakeQueue};

use crate::conn::{FrameReader, FrameStep, Phase, WriteQueue};
use crate::proto::{
    err_code, frame_bytes, Frame, RemoteError, MIN_PROTOCOL_VERSION, NET_MAGIC, PROTOCOL_VERSION,
};
use crate::server::{stats_json, stats_text, Shared};

/// Token for the listening socket (loop 0 only).
const LISTENER_TOKEN: u64 = u64::MAX;
/// Token for each loop's waker.
const WAKER_TOKEN: u64 = u64::MAX - 1;

/// Messages other threads hand an event loop through its [`WakeQueue`].
pub(crate) enum LoopMsg {
    /// A freshly accepted connection this loop should own.
    Conn(TcpStream),
    /// A pool worker finished a query for connection `conn`: one
    /// pre-framed response to enqueue (counted traffic, releases one
    /// in-flight slot when fully written). `failed` reports a per-request
    /// error result — it feeds the connection's error budget.
    Done {
        conn: u64,
        bytes: Vec<u8>,
        failed: bool,
    },
}

/// The handle other threads use to reach a loop: push a message, ring the
/// waker. Kept in [`Shared`] so `shutdown` can wake every loop, and so
/// loop 0 can route accepted connections.
pub(crate) struct LoopHandle {
    pub(crate) queue: Arc<WakeQueue<LoopMsg>>,
    pub(crate) waker: Arc<Waker>,
}

/// Event-loop telemetry, shared by all loops of one server. Kept *outside*
/// the server's metrics registry on purpose: a `Stats` scrape over TCP is
/// itself readiness events and wakeups, so folding these counters into the
/// TCP stats answer would break its byte-stability guarantee. They are
/// exposed through [`crate::NetServer::loop_stats`] and folded into the
/// HTTP [`crate::NetServer::metrics_source`] exposition instead.
#[derive(Default)]
pub struct LoopStats {
    ready_events: AtomicU64,
    wakeups: AtomicU64,
    registered_conns: AtomicI64,
    reaped_idle: AtomicU64,
    reaped_draining: AtomicU64,
    budget_closes: AtomicU64,
}

impl LoopStats {
    fn note_events(&self, n: u64) {
        // ordering: Relaxed — monotonic telemetry counter, no reader
        // infers cross-thread state from it.
        self.ready_events.fetch_add(n, Ordering::Relaxed);
    }

    fn note_wakeup(&self) {
        // ordering: Relaxed — monotonic telemetry counter.
        self.wakeups.fetch_add(1, Ordering::Relaxed);
    }

    fn conn_registered(&self) {
        // ordering: Relaxed — telemetry gauge; loops never branch on it.
        self.registered_conns.fetch_add(1, Ordering::Relaxed);
    }

    fn conn_deregistered(&self) {
        // ordering: Relaxed — telemetry gauge.
        self.registered_conns.fetch_sub(1, Ordering::Relaxed);
    }

    fn note_reaped_idle(&self) {
        // ordering: Relaxed — monotonic telemetry counter.
        self.reaped_idle.fetch_add(1, Ordering::Relaxed);
    }

    fn note_reaped_draining(&self) {
        // ordering: Relaxed — monotonic telemetry counter.
        self.reaped_draining.fetch_add(1, Ordering::Relaxed);
    }

    fn note_budget_close(&self) {
        // ordering: Relaxed — monotonic telemetry counter.
        self.budget_closes.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of the loop counters.
    pub fn snapshot(&self) -> LoopStatsSnapshot {
        LoopStatsSnapshot {
            // ordering: Relaxed — a telemetry read; slight skew between
            // the three loads is acceptable.
            ready_events: self.ready_events.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            // ordering: Relaxed — same telemetry read as above.
            registered_conns: self.registered_conns.load(Ordering::Relaxed).max(0) as u64,
            // ordering: Relaxed — telemetry reads.
            reaped_idle: self.reaped_idle.load(Ordering::Relaxed),
            reaped_draining: self.reaped_draining.load(Ordering::Relaxed),
            budget_closes: self.budget_closes.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time event-loop counters (see `LoopStats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopStatsSnapshot {
    /// Readiness events delivered across all loops since start.
    pub ready_events: u64,
    /// Waker firings (response completions, shutdown) across all loops.
    pub wakeups: u64,
    /// Connections currently registered with a poller.
    pub registered_conns: u64,
    /// Connections reaped for exceeding [`crate::ServerConfig::idle_timeout`].
    pub reaped_idle: u64,
    /// Draining connections reaped early because the peer disconnected
    /// (hangup or transport error) before the drain finished.
    pub reaped_draining: u64,
    /// Connections drained for exceeding [`crate::ServerConfig::error_budget`].
    pub budget_closes: u64,
}

/// One connection's full state. Owned by exactly one loop; never locked.
struct Conn {
    /// The poller token — unique per server, never reused, so a stale
    /// readiness event or pool completion for a closed connection can
    /// never be misdelivered to a newer one (fd numbers do get reused;
    /// tokens do not).
    id: u64,
    stream: TcpStream,
    reader: FrameReader,
    wq: WriteQueue,
    phase: Phase,
    /// The negotiated protocol version (0 until the handshake completes).
    session_version: u32,
    /// Requests dispatched (or stats answers queued) whose responses have
    /// not yet fully reached the socket — the backpressure window.
    inflight: usize,
    /// The read half is done: client EOF, client `Goodbye`, or a fatal
    /// protocol error. No more bytes are consumed.
    eof: bool,
    /// The `HelloAck` went out: this session may receive a `Goodbye`.
    handshaken: bool,
    /// Joined the `conns_accepted`/`conns_open` counters (first query).
    counted: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Fatal error frame to send once every accepted request has been
    /// answered and flushed (the answer-first contract).
    fatal: Option<Frame>,
    /// The closing frame (fatal error or `Goodbye`) has been queued; when
    /// the queue next runs dry the connection closes.
    finale_queued: bool,
    /// Last moment the connection made observable progress (bytes read,
    /// or a response frame fully flushed). Drives idle reaping.
    last_activity: Instant,
    /// Failing request results so far (feeds the error budget).
    errors: u32,
}

/// One readiness loop. `run` consumes it on a dedicated thread.
pub(crate) struct EventLoop {
    index: usize,
    shared: Arc<Shared>,
    poller: Poller,
    waker: Arc<Waker>,
    queue: Arc<WakeQueue<LoopMsg>>,
    /// Loop 0 owns the listener until shutdown or `max_conns`.
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    /// Connections accepted so far (loop 0 only; drives `max_conns`).
    accepted: usize,
    /// Shutdown has been observed; no new work is admitted.
    draining: bool,
    /// Force-close moment for the shutdown drain.
    deadline: Option<Instant>,
}

impl EventLoop {
    /// Builds one loop. The waker is already registered; the listener (loop
    /// 0 only) is registered here.
    pub(crate) fn new(
        index: usize,
        shared: Arc<Shared>,
        poller: Poller,
        waker: Arc<Waker>,
        queue: Arc<WakeQueue<LoopMsg>>,
        listener: Option<TcpListener>,
    ) -> std::io::Result<Self> {
        poller.register(waker.as_raw_fd(), WAKER_TOKEN, Interest::READ)?;
        if let Some(l) = &listener {
            l.set_nonblocking(true)?;
            poller.register(l.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        }
        Ok(Self {
            index,
            shared,
            poller,
            waker,
            queue,
            listener,
            conns: HashMap::new(),
            accepted: 0,
            draining: false,
            deadline: None,
        })
    }

    /// The loop body: poll, dispatch readiness, drain the message queue,
    /// repeat — until shutdown has been observed and every connection is
    /// gone.
    pub(crate) fn run(mut self) {
        let mut events = Vec::new();
        loop {
            // ordering: SeqCst pairs with the store in shutdown(): once the
            // flag is visible anywhere, no loop admits new work.
            if !self.draining && self.shared.shutdown.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            if self.draining && self.conns.is_empty() {
                break;
            }
            let timeout = match (self.deadline, self.next_idle_expiry()) {
                (Some(d), Some(i)) => Some(d.min(i)),
                (Some(d), None) => Some(d),
                (None, idle) => idle,
            }
            .map(|t| t.saturating_duration_since(Instant::now()));
            if self.poller.wait(&mut events, timeout).is_err() {
                // A failing poller cannot be waited on again without
                // spinning; force the drain path so the loop terminates.
                if !self.draining {
                    self.begin_drain();
                }
                self.force_close_all();
                continue;
            }
            self.shared.loop_stats.note_events(events.len() as u64);
            for ev in events.drain(..) {
                match ev.token {
                    LISTENER_TOKEN => self.accept_burst(),
                    WAKER_TOKEN => {
                        self.shared.loop_stats.note_wakeup();
                        self.waker.drain();
                    }
                    id => self.pump(id, ev.readable || ev.hangup, ev.hangup),
                }
            }
            self.drain_queue();
            self.reap_idle();
            if let Some(deadline) = self.deadline {
                if self.draining && Instant::now() >= deadline {
                    self.force_close_all();
                }
            }
        }
    }

    /// The soonest moment any reapable connection crosses the idle
    /// timeout — the poll deadline that makes reaping prompt even on a
    /// silent server. `None` when reaping is off or nothing qualifies.
    fn next_idle_expiry(&self) -> Option<Instant> {
        let idle = self.shared.config.idle_timeout?;
        self.conns
            .values()
            .filter(|c| c.phase != Phase::Draining && c.inflight == 0 && c.wq.is_empty())
            .map(|c| c.last_activity + idle)
            .min()
    }

    /// Closes every connection that has been completely quiet — nothing
    /// read, nothing in flight, nothing queued — past the idle timeout.
    fn reap_idle(&mut self) {
        let Some(idle) = self.shared.config.idle_timeout else {
            return;
        };
        let now = Instant::now();
        let expired: Vec<u64> = self
            .conns
            .values()
            .filter(|c| {
                c.phase != Phase::Draining
                    && c.inflight == 0
                    && c.wq.is_empty()
                    && now.saturating_duration_since(c.last_activity) >= idle
            })
            .map(|c| c.id)
            .collect();
        for id in expired {
            self.shared.loop_stats.note_reaped_idle();
            self.close_conn(id);
        }
    }

    /// Takes everything other threads queued: new connections to adopt,
    /// finished responses to enqueue and flush.
    fn drain_queue(&mut self) {
        for msg in self.queue.drain() {
            match msg {
                LoopMsg::Conn(stream) => {
                    if self.draining {
                        // Accepted but never served: shutdown won the race.
                        drop(stream);
                        self.shared.release_active();
                    } else {
                        self.adopt(stream);
                    }
                }
                LoopMsg::Done {
                    conn,
                    bytes,
                    failed,
                } => {
                    if let Some(c) = self.conns.get_mut(&conn) {
                        c.wq.push(bytes, true, true);
                        if failed {
                            c.errors = c.errors.saturating_add(1);
                            let budget = self.shared.config.error_budget;
                            if budget > 0
                                && c.errors >= budget
                                && c.phase == Phase::Serving
                                && c.fatal.is_none()
                            {
                                // Drain with a fatal frame — queued answers
                                // (including this one) still deliver first.
                                c.fatal = Some(Frame::Error {
                                    code: err_code::ERROR_BUDGET_EXCEEDED,
                                    message: format!(
                                        "connection exceeded its error budget \
                                         ({budget} failing requests)"
                                    ),
                                });
                                c.eof = true;
                                c.phase = Phase::Draining;
                                self.shared.loop_stats.note_budget_close();
                            }
                        }
                        self.pump(conn, false, false);
                    }
                    // A vanished connection's responses are undeliverable;
                    // dropping them mirrors the old writer's dead-socket
                    // path.
                }
            }
        }
    }

    /// Registers a routed connection with this loop's poller.
    fn adopt(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            self.shared.release_active();
            return;
        }
        // ordering: Relaxed — a unique-id counter; ids only need to be
        // distinct, never ordered against other state.
        let id = self.shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if self
            .poller
            .register(stream.as_raw_fd(), id, Interest::READ)
            .is_err()
        {
            self.shared.release_active();
            return;
        }
        self.shared.loop_stats.conn_registered();
        self.conns.insert(
            id,
            Conn {
                id,
                stream,
                reader: FrameReader::default(),
                wq: WriteQueue::default(),
                phase: Phase::Handshake,
                session_version: 0,
                inflight: 0,
                eof: false,
                handshaken: false,
                counted: false,
                interest: Interest::READ,
                fatal: None,
                finale_queued: false,
                last_activity: Instant::now(),
                errors: 0,
            },
        );
    }

    /// Accepts until the listener would block, routing connections across
    /// the loops round-robin. Loop 0 only.
    fn accept_burst(&mut self) {
        loop {
            // ordering: SeqCst pairs with the store in shutdown().
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return; // begin_drain (next iteration) retires the listener
            }
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.accepted += 1;
                    self.shared.acquire_active();
                    let n = self.shared.loops.len().max(1);
                    let target = (self.accepted - 1) % n;
                    if let Some(handle) = self.shared.loops.get(target) {
                        handle.queue.push(LoopMsg::Conn(stream));
                    } else {
                        // Unreachable (target < n); never leak the slot.
                        drop(stream);
                        self.shared.release_active();
                    }
                    let max = self.shared.config.max_conns;
                    if max > 0 && self.accepted >= max {
                        self.retire_listener();
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Persistent accept failures (EMFILE under fd pressure)
                // leave the listener readable; yield to the poller rather
                // than spin inside the burst.
                Err(_) => return,
            }
        }
    }

    /// Stops accepting for good: deregister, drop, and let `wait()` see
    /// that the accept side is finished.
    fn retire_listener(&mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        self.shared.finish_accept();
    }

    /// First reaction to shutdown: retire the listener, close handshake
    /// connections (nothing promised yet), stop reading everywhere, and
    /// start the drain clock.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.deadline = Some(Instant::now() + self.shared.config.drain_timeout);
        if self.index == 0 {
            self.retire_listener();
        }
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let close_now = match self.conns.get_mut(&id) {
                Some(conn) if conn.phase == Phase::Handshake => true,
                Some(conn) => {
                    // Not `eof = true`: the read half stays open as a
                    // *monitor* (bytes are discarded, no new work) so a
                    // peer that disconnects mid-drain is detected and
                    // reaped immediately instead of holding its slot
                    // until the drain deadline.
                    conn.phase = Phase::Draining;
                    false
                }
                None => false,
            };
            if close_now {
                self.close_conn(id);
            } else {
                // Flush what is queued; idle connections reach the finale
                // (Goodbye) immediately and close well inside the deadline.
                self.pump(id, false, false);
            }
        }
    }

    /// Force-closes every remaining connection (drain deadline, or a dead
    /// poller). Undelivered responses are dropped — the bounded-shutdown
    /// contract.
    fn force_close_all(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.close_conn(id);
        }
    }

    /// Deregisters and drops one connection, balancing every counter it
    /// joined.
    fn close_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.shared.loop_stats.conn_deregistered();
            if conn.counted {
                self.shared.metrics.conns_open.sub(1);
            }
            drop(conn);
            self.shared.release_active();
        }
    }

    /// Drives one connection as far as it can go without blocking: read,
    /// parse, dispatch, flush, finish. `readable` hints that the socket
    /// may have bytes; `hangup` reports a peer that is gone both ways (the
    /// connection closes after this pass — level-triggered pollers would
    /// otherwise report the hangup forever).
    fn pump(&mut self, id: u64, readable: bool, hangup: bool) {
        let Some(mut conn) = self.conns.remove(&id) else {
            return;
        };
        let alive = self.drive(&mut conn, readable);
        if !alive || hangup {
            // A hangup on a still-alive draining connection is an early
            // peer disconnect; `drive` counts the monitor-read variant
            // itself, so only the hangup-while-alive path counts here.
            if alive && hangup && conn.phase == Phase::Draining && !conn.finale_queued {
                self.shared.loop_stats.note_reaped_draining();
            }
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.shared.loop_stats.conn_deregistered();
            if conn.counted {
                self.shared.metrics.conns_open.sub(1);
            }
            drop(conn);
            self.shared.release_active();
            return;
        }
        let desired = Interest {
            readable: !conn.eof
                && match conn.phase {
                    Phase::Handshake => true,
                    Phase::Serving => conn.inflight < self.shared.config.inflight.max(1),
                    // Monitor-read: no new work is admitted, but the read
                    // half stays watched so a peer disconnect mid-drain is
                    // seen now, not at the drain deadline.
                    Phase::Draining => true,
                },
            writable: !conn.wq.is_empty(),
        };
        if desired != conn.interest {
            if self
                .poller
                .reregister(conn.stream.as_raw_fd(), id, desired)
                .is_err()
            {
                self.shared.loop_stats.conn_deregistered();
                if conn.counted {
                    self.shared.metrics.conns_open.sub(1);
                }
                drop(conn);
                self.shared.release_active();
                return;
            }
            conn.interest = desired;
        }
        self.conns.insert(id, conn);
    }

    /// The state machine proper. Returns `false` when the connection is
    /// finished (drained, dead, or refused) and must close now.
    fn drive(&mut self, conn: &mut Conn, readable: bool) -> bool {
        let max_inflight = self.shared.config.inflight.max(1);
        let max_frame = self.shared.config.max_frame_len;
        let mut can_read = readable && !conn.eof;
        loop {
            // Monitor-read while draining: consume and discard whatever
            // the peer still sends (no new work is admitted), detect its
            // FIN, and reap immediately on a transport error — a dead
            // peer must not hold its drain slot until the deadline.
            while can_read && conn.phase == Phase::Draining {
                let mut buf = [0u8; 4 * 1024];
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        // FIN: the peer is done talking but may still be
                        // reading its answers — keep draining to it.
                        conn.eof = true;
                        can_read = false;
                    }
                    Ok(_) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => can_read = false,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        if !conn.finale_queued {
                            self.shared.loop_stats.note_reaped_draining();
                        }
                        return false;
                    }
                }
            }

            // Read while the backpressure window is open. Past the window
            // the bytes stay in the kernel and TCP flow control stalls the
            // client — per-connection memory stays bounded by
            // inflight × max_frame_len plus one read chunk.
            while can_read && conn.phase != Phase::Draining && conn.inflight < max_inflight {
                let mut buf = [0u8; 16 * 1024];
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.eof = true;
                        can_read = false;
                    }
                    Ok(n) => {
                        conn.reader.extend(buf.get(..n).unwrap_or_default());
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => can_read = false,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    // A transport error mid-read means the peer is gone; an
                    // error frame could not be delivered anyway.
                    Err(_) => return false,
                }
            }

            // Parse and act on every complete frame the window allows.
            while conn.phase != Phase::Draining && conn.inflight < max_inflight {
                match conn.reader.next(max_frame, conn.eof) {
                    FrameStep::NeedMore => break,
                    FrameStep::Frame { frame, wire_len } => self.on_frame(conn, frame, wire_len),
                    FrameStep::Malformed(e) => {
                        let message = if conn.phase == Phase::Handshake {
                            format!("malformed handshake frame: {e}")
                        } else {
                            format!("malformed frame: {e}")
                        };
                        conn.fatal = Some(Frame::Error {
                            code: err_code::MALFORMED_FRAME,
                            message,
                        });
                        conn.eof = true;
                        conn.phase = Phase::Draining;
                    }
                }
            }

            // A clean end of stream (EOF at a frame boundary, or the
            // client's Goodbye already handled) starts the drain.
            if conn.eof && conn.phase != Phase::Draining && conn.reader.is_empty() {
                conn.phase = Phase::Draining;
            }

            // Flush as much as the socket accepts.
            let completions = match conn.wq.flush(&mut conn.stream) {
                Ok(c) => c,
                Err(()) => return false,
            };
            let mut released = false;
            for done in completions {
                conn.last_activity = Instant::now();
                if done.counted {
                    self.shared.metrics.frames_out.inc();
                    self.shared.metrics.bytes_out.add(done.len as u64);
                }
                if done.releases_slot {
                    conn.inflight = conn.inflight.saturating_sub(1);
                    released = true;
                }
            }

            // Drain finish: every accepted request answered and flushed,
            // then exactly one closing frame, then close. A Goodbye is
            // only owed on a server-initiated drain of a handshaken
            // session.
            if conn.phase == Phase::Draining && conn.inflight == 0 && conn.wq.is_empty() {
                if conn.finale_queued {
                    return false;
                }
                conn.finale_queued = true;
                // ordering: SeqCst pairs with the store in shutdown():
                // only a server-initiated drain says Goodbye.
                let goodbye = conn.handshaken && self.shared.shutdown.load(Ordering::SeqCst);
                match conn.fatal.take() {
                    Some(frame) => conn.wq.push(frame_bytes(&frame), false, false),
                    None if goodbye => conn.wq.push(frame_bytes(&Frame::Goodbye), false, false),
                    None => return false,
                }
                continue; // flush the finale
            }

            // Freed slots may re-open the window over already-buffered
            // bytes (or a still-readable socket): go around again.
            if released && conn.phase != Phase::Draining && (can_read || !conn.reader.is_empty()) {
                continue;
            }
            return true;
        }
    }

    /// Handles one well-formed frame according to the connection's phase —
    /// the dispatch table of the old per-connection reader thread, minus
    /// the blocking.
    fn on_frame(&self, conn: &mut Conn, frame: Frame, wire_len: u64) {
        match (conn.phase, frame) {
            (Phase::Handshake, Frame::Hello { magic, version }) if magic == NET_MAGIC => {
                if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
                    conn.fatal = Some(Frame::Error {
                        code: err_code::UNSUPPORTED_VERSION,
                        message: format!(
                            "protocol version {version} is not supported (this server \
                             speaks {MIN_PROTOCOL_VERSION} through {PROTOCOL_VERSION})"
                        ),
                    });
                    conn.eof = true;
                    conn.phase = Phase::Draining;
                    return;
                }
                conn.session_version = version;
                conn.handshaken = true;
                conn.phase = Phase::Serving;
                conn.wq.push(
                    frame_bytes(&Frame::HelloAck {
                        version,
                        num_docs: self.shared.backend.num_docs() as u64,
                        tau_min: self.shared.backend.tau_min(),
                    }),
                    false,
                    false,
                );
            }
            (Phase::Handshake, _) => {
                conn.fatal = Some(Frame::Error {
                    code: err_code::BAD_HANDSHAKE,
                    message: "the first frame must be Hello with magic USTRNET1".into(),
                });
                conn.eof = true;
                conn.phase = Phase::Draining;
            }
            (Phase::Serving, Frame::Request { id, request }) => {
                self.note_request(conn, wire_len);
                conn.inflight += 1;
                self.dispatch(conn.id, id, request, None);
            }
            (Phase::Serving, Frame::RequestTraced { id, request, trace }) => {
                if conn.session_version < 3 {
                    conn.fatal = Some(Frame::Error {
                        code: err_code::MALFORMED_FRAME,
                        message: format!(
                            "RequestTraced requires protocol version 3 \
                             (this session negotiated {})",
                            conn.session_version
                        ),
                    });
                    conn.eof = true;
                    conn.phase = Phase::Draining;
                    return;
                }
                self.note_request(conn, wire_len);
                conn.inflight += 1;
                self.dispatch(
                    conn.id,
                    id,
                    request,
                    Some(ustr_obs::TraceContext::from(trace)),
                );
            }
            (Phase::Serving, Frame::StatsRequest { id }) => {
                // Answered inline (a snapshot render, not a query) but
                // still through the in-flight window, so it stays ordered
                // behind the backpressure bound and the drain accounts for
                // it. Deliberately invisible to every counter: two idle
                // scrapes return identical bytes.
                conn.inflight += 1;
                let text = stats_text(&self.shared);
                conn.wq
                    .push(frame_bytes(&Frame::StatsResponse { id, text }), false, true);
            }
            (Phase::Serving, Frame::StatsJsonRequest { id }) => {
                if conn.session_version < 3 {
                    conn.fatal = Some(Frame::Error {
                        code: err_code::MALFORMED_FRAME,
                        message: format!(
                            "StatsJsonRequest requires protocol version 3 \
                             (this session negotiated {})",
                            conn.session_version
                        ),
                    });
                    conn.eof = true;
                    conn.phase = Phase::Draining;
                    return;
                }
                conn.inflight += 1;
                let text = stats_json(&self.shared);
                conn.wq
                    .push(frame_bytes(&Frame::StatsResponse { id, text }), false, true);
            }
            (Phase::Serving, Frame::HealthRequest { id }) => {
                if conn.session_version < 4 {
                    conn.fatal = Some(Frame::Error {
                        code: err_code::MALFORMED_FRAME,
                        message: format!(
                            "HealthRequest requires protocol version 4 \
                             (this session negotiated {})",
                            conn.session_version
                        ),
                    });
                    conn.eof = true;
                    conn.phase = Phase::Draining;
                    return;
                }
                // Answered inline like StatsRequest: a flag read, not a
                // query — and likewise invisible to the traffic counters.
                conn.inflight += 1;
                let health = self.shared.backend.health();
                conn.wq.push(
                    frame_bytes(&Frame::HealthResponse {
                        id,
                        degraded: health.is_some(),
                        detail: health.unwrap_or_default(),
                    }),
                    false,
                    true,
                );
            }
            (Phase::Serving, Frame::Goodbye) => {
                conn.eof = true;
                conn.phase = Phase::Draining;
            }
            (Phase::Serving, _) => {
                conn.fatal = Some(Frame::Error {
                    code: err_code::MALFORMED_FRAME,
                    message: "unexpected frame kind mid-session".into(),
                });
                conn.eof = true;
                conn.phase = Phase::Draining;
            }
            // Parsing is gated off while draining; nothing reaches here.
            (Phase::Draining, _) => {}
        }
    }

    /// First-query connection accounting plus per-request traffic counters
    /// (exactly the frames the old reader counted: query requests only).
    fn note_request(&self, conn: &mut Conn, wire_len: u64) {
        if !conn.counted {
            conn.counted = true;
            self.shared.metrics.conns_accepted.inc();
            self.shared.metrics.conns_open.add(1);
        }
        self.shared.metrics.frames_in.inc();
        self.shared.metrics.bytes_in.add(wire_len);
        self.shared.metrics.requests.inc();
    }

    /// Fans one query onto the shared pool; the worker computes, frames,
    /// and pushes the response back through this loop's queue (the push
    /// rings the waker).
    fn dispatch(
        &self,
        conn_id: u64,
        id: u64,
        request: QueryRequest,
        parent: Option<ustr_obs::TraceContext>,
    ) {
        let backend = Arc::clone(&self.shared.backend);
        let queue = Arc::clone(&self.queue);
        let rtt = self.shared.metrics.rtt_for(mode_name(&request)).clone();
        self.shared.pool.execute(move || {
            let span = Span::on(rtt);
            let failed;
            let bytes = match parent {
                None => {
                    let result = backend
                        .query_requests(std::slice::from_ref(&request))
                        .pop()
                        .unwrap_or_else(|| {
                            Err(ustr_core::Error::internal(
                                "the backend returned no response for a one-request batch",
                            ))
                        })
                        .map_err(|e| RemoteError::from(&e));
                    failed = result.is_err();
                    frame_bytes(&Frame::Response { id, result })
                }
                Some(parent) => {
                    let (result, summary) = backend
                        .query_requests_traced(
                            std::slice::from_ref(&request),
                            std::slice::from_ref(&Some(parent)),
                        )
                        .pop()
                        .unwrap_or_else(|| {
                            (
                                Err(ustr_core::Error::internal(
                                    "the backend returned no response for a one-request batch",
                                )),
                                None,
                            )
                        });
                    let result = result.map_err(|e| RemoteError::from(&e));
                    failed = result.is_err();
                    // Per-stage server timings ride back on the response;
                    // an untraced backend (or unsampled trace) reports
                    // none.
                    let timings = summary
                        .map(|s| {
                            s.stages
                                .into_iter()
                                .map(|(name, us)| (name.to_string(), us))
                                .collect()
                        })
                        .unwrap_or_default();
                    frame_bytes(&Frame::ResponseTimed {
                        id,
                        result,
                        timings,
                    })
                }
            };
            span.finish();
            queue.push(LoopMsg::Done {
                conn: conn_id,
                bytes,
                failed,
            });
        });
    }
}
