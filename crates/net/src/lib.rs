//! `ustr-net` — the network serving layer: every query mode of the paper,
//! over TCP, from a std-only server and client.
//!
//! After `ustr-service` (concurrent in-process dispatch) and `ustr-live`
//! (mutable collections), the remaining gap to the ROADMAP's
//! "heavy traffic from millions of users" was the front door: queries could
//! only enter through an in-process CLI. This crate adds it, reusing every
//! existing layer instead of inventing parallel ones:
//!
//! * **Wire protocol** ([`proto`]) — length-prefixed, FNV-1a-checksummed
//!   frames built on [`ustr_store::wire`]'s framing and payload primitives.
//!   A session opens with a magic + version handshake; requests and
//!   responses are the *same* typed [`QueryRequest`]/[`QueryResponse`]
//!   values the in-process engine dispatches, with `f64` probabilities as
//!   IEEE-754 bit patterns — a decoded response compares equal to the
//!   in-process answer, bit for bit.
//! * **Server** ([`NetServer`]) — a small set of readiness-driven event
//!   loops ([`ustr_poll::Poller`]: epoll on Linux, poll(2) elsewhere) own
//!   a non-blocking listener and every connection's state machine
//!   (`conn`: handshake → framed read → dispatch → framed write, with
//!   partial-read and partial-write buffers), while query execution fans
//!   onto the shared [`ustr_service::ThreadPool`] and finished responses
//!   return through a wakeable queue. The backend is anything
//!   implementing [`QueryBackend`]: a static
//!   [`ustr_service::QueryService`] (`.coll` snapshot or snapshot
//!   directory) or a mutable [`ustr_live::LiveService`] — both reached
//!   through the same `Engine`/`SegmentSet` dispatch path, so network
//!   answers inherit the determinism contract (parallel ≡ sequential, at
//!   any thread count).
//! * **Client** ([`NetClient`]) — handshakes, pipelines whole batches in
//!   one write, and re-aligns out-of-order responses by request id.
//! * **Telemetry** — every server keeps an instance-scoped
//!   [`ustr_obs::MetricsRegistry`] (connections, frames/bytes in and out,
//!   per-mode round-trip histograms) and answers the protocol-v2
//!   [`proto::Frame::StatsRequest`] with its own counters merged with the
//!   backend engine's, rendered as deterministic exposition text. The
//!   stats path touches no counter, so two idle scrapes are
//!   byte-identical; v1 clients (no Stats frames) are still served.
//! * **Tracing** (protocol v3) — [`proto::Frame::RequestTraced`] carries a
//!   client [`ustr_obs::TraceContext`] so the server engine's root span
//!   *continues* the client's trace (one distributed span tree across both
//!   processes), and the answer rides back as
//!   [`proto::Frame::ResponseTimed`] with per-stage server timings.
//!   [`proto::Frame::StatsJsonRequest`] scrapes telemetry as JSON, and
//!   [`NetServer::traces_json`]/[`NetServer::trace_source`] export the
//!   backend's finished traces as Chrome `trace_event` JSON. Sessions
//!   negotiating v1/v2 never see the new kinds and their encodings are
//!   untouched, byte for byte.
//!
//! # Guarantees
//!
//! **Backpressure.** Each connection may have at most
//! [`ServerConfig::inflight`] requests decoded-but-unanswered. At the bound
//! the reader stops consuming bytes, so TCP flow control stalls the client;
//! server memory per connection stays bounded by
//! `inflight × max_frame_len` no matter how hard a client pipelines.
//!
//! **Robustness.** Frame decoding is total: truncated, corrupted, oversize,
//! or out-of-state frames are answered with one fatal error frame
//! ([`proto::err_code`]) and a close — never a panic, never a hang, and
//! never a partial answer (fuzzed in `tests/prop_frames.rs`). Per-query
//! validation failures travel *inside* a response frame as
//! [`RemoteError`]s; the connection stays healthy.
//!
//! **Graceful shutdown.** [`NetServer::shutdown`] stops accepting, stops
//! *reading*, runs every already-accepted request to completion, writes its
//! response, then sends [`proto::Frame::Goodbye`] on each connection and
//! closes it. No accepted query is ever dropped and no new query is
//! admitted after the drain begins — with one bound: a client that stops
//! reading its responses is force-closed after
//! [`ServerConfig::drain_timeout`], because an unbounded drain would let
//! one stalled client wedge shutdown forever.
//!
//! ```no_run
//! use std::sync::Arc;
//! use ustr_net::{NetClient, NetServer, ServerConfig};
//! use ustr_service::{QueryRequest, QueryService, ServiceConfig};
//! use ustr_uncertain::UncertainString;
//!
//! let docs = vec![UncertainString::parse("A:.9,B:.1 | B | C").unwrap()];
//! let service = QueryService::build(&docs, 0.05, ServiceConfig::default()).unwrap();
//! let server = NetServer::serve("127.0.0.1:0", Arc::new(service), ServerConfig::default())?;
//!
//! let mut client = NetClient::connect(server.local_addr())?;
//! let answers = client.query_requests(&[QueryRequest::Threshold {
//!     pattern: b"AB".to_vec(),
//!     tau: 0.5,
//! }])?;
//! assert!(answers[0].is_ok());
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod client;
pub(crate) mod conn;
mod event_loop;
pub mod proto;
pub mod retry;
pub mod server;

pub use client::{ClientConfig, NetClient, NetError, ServerInfo};
pub use event_loop::LoopStatsSnapshot;
pub use proto::{
    Frame, RemoteError, WireTraceContext, DEFAULT_MAX_FRAME_LEN, MIN_PROTOCOL_VERSION, NET_MAGIC,
    PROTOCOL_VERSION,
};
pub use retry::{ResilientClient, RetryPolicy, RetryStats};
pub use server::{NetServer, QueryBackend, ServerConfig};

// Re-exported so downstream callers can speak the typed request/response
// vocabulary without a direct ustr-service dependency.
pub use ustr_service::{QueryRequest, QueryResponse};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ustr_service::{QueryService, ServiceConfig};
    use ustr_uncertain::UncertainString;

    use super::*;

    fn service() -> QueryService {
        let docs = vec![
            UncertainString::parse("A:.9,B:.1 | B | C | A | B").unwrap(),
            UncertainString::parse("C | C | C").unwrap(),
            UncertainString::parse("A:.5,B:.5 | B | A:.7,C:.3 | B").unwrap(),
        ];
        QueryService::build(
            &docs,
            0.05,
            ServiceConfig {
                threads: 2,
                shards: 2,
                cache_capacity: 16,
                epsilon: Some(0.05),
            },
        )
        .unwrap()
    }

    fn batch() -> Vec<QueryRequest> {
        vec![
            QueryRequest::Threshold {
                pattern: b"AB".to_vec(),
                tau: 0.3,
            },
            QueryRequest::TopK {
                pattern: b"AB".to_vec(),
                k: 4,
            },
            QueryRequest::Listing {
                pattern: b"B".to_vec(),
                tau: 0.5,
            },
            QueryRequest::Approx {
                pattern: b"AB".to_vec(),
                tau: 0.3,
            },
        ]
    }

    #[test]
    fn served_answers_equal_in_process_answers() {
        let service = Arc::new(service());
        let server = NetServer::serve(
            "127.0.0.1:0",
            Arc::clone(&service) as _,
            ServerConfig::default(),
        )
        .unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.server_info().num_docs, 3);
        assert_eq!(client.server_info().protocol_version, PROTOCOL_VERSION);

        let remote = client.query_requests(&batch()).unwrap();
        let local = service.query_requests(&batch());
        for (r, l) in remote.iter().zip(local.iter()) {
            assert_eq!(r.as_ref().unwrap(), l.as_ref().unwrap());
        }
        server.shutdown();
    }

    #[test]
    fn validation_errors_ride_inside_responses() {
        let server =
            NetServer::serve("127.0.0.1:0", Arc::new(service()), ServerConfig::default()).unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let answers = client
            .query_requests(&[
                QueryRequest::Threshold {
                    pattern: b"".to_vec(),
                    tau: 0.3,
                },
                QueryRequest::Threshold {
                    pattern: b"AB".to_vec(),
                    tau: 0.3,
                },
            ])
            .unwrap();
        let err = answers[0].as_ref().unwrap_err();
        assert_eq!(err.code, 1, "EmptyPattern travels as code 1: {err}");
        assert!(answers[1].is_ok(), "the connection stays usable");
        server.shutdown();
    }

    #[test]
    fn deep_pipelining_respects_a_tiny_inflight_bound() {
        let server = NetServer::serve(
            "127.0.0.1:0",
            Arc::new(service()),
            ServerConfig {
                inflight: 1,
                threads: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        // 64 pipelined requests through a 1-permit window: all answered,
        // positionally aligned.
        let requests: Vec<QueryRequest> = (0..64)
            .map(|i| QueryRequest::TopK {
                pattern: b"AB".to_vec(),
                k: i % 5 + 1,
            })
            .collect();
        let answers = client.query_requests(&requests).unwrap();
        assert_eq!(answers.len(), 64);
        for (req, ans) in requests.iter().zip(answers.iter()) {
            let QueryRequest::TopK { k, .. } = req else {
                unreachable!()
            };
            let QueryResponse::TopK(top) = ans.as_ref().unwrap() else {
                panic!("mode preserved")
            };
            assert!(top.len() <= *k, "aligned answer for k={k}");
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_and_says_goodbye() {
        let service = Arc::new(service());
        let server = NetServer::serve(
            "127.0.0.1:0",
            Arc::clone(&service) as _,
            ServerConfig::default(),
        )
        .unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let first = client.query(b"AB", 0.3).unwrap().unwrap();
        server.shutdown();
        // The server stopped reading: the next query cannot complete, and
        // the failure is a clean error, not a hang or a panic.
        let after = client.query(b"AB", 0.3);
        assert!(after.is_err(), "post-shutdown query fails cleanly");
        assert_eq!(first, service.query_requests(&batch()).remove(0).unwrap());
    }

    #[test]
    fn a_non_reading_client_does_not_starve_other_connections() {
        use std::io::Write;
        // One big document so each threshold answer is ~50 KiB: a client
        // that pipelines 30 of those and never reads fills the kernel
        // buffers and stalls its *own* writer thread — the shared query
        // workers must stay free for other connections.
        let docs = vec![UncertainString::deterministic(&b"AB".repeat(3000))];
        let service = QueryService::build(
            &docs,
            0.5,
            ServiceConfig {
                threads: 2,
                shards: 1,
                cache_capacity: 0,
                epsilon: None,
            },
        )
        .unwrap();
        let server = NetServer::serve(
            "127.0.0.1:0",
            Arc::new(service),
            ServerConfig {
                threads: 2,
                drain_timeout: std::time::Duration::from_millis(300),
                ..ServerConfig::default()
            },
        )
        .unwrap();

        let mut stalled = std::net::TcpStream::connect(server.local_addr()).unwrap();
        stalled
            .write_all(&proto::frame_bytes(&Frame::Hello {
                magic: NET_MAGIC,
                version: PROTOCOL_VERSION,
            }))
            .unwrap();
        for id in 0..30u64 {
            stalled
                .write_all(&proto::frame_bytes(&Frame::Request {
                    id,
                    request: QueryRequest::Threshold {
                        pattern: b"AB".to_vec(),
                        tau: 0.5,
                    },
                }))
                .unwrap();
        }
        // Never read: the stalled connection's responses back up.
        std::thread::sleep(std::time::Duration::from_millis(200));

        // A healthy client on another connection still gets answers. (With
        // workers writing responses themselves, both pool workers would be
        // wedged in write_all here and this would hang.)
        let mut healthy = NetClient::connect(server.local_addr()).unwrap();
        let answer = healthy.query(b"AB", 0.5).unwrap().unwrap();
        let QueryResponse::Threshold(hits) = answer else {
            panic!("mode preserved")
        };
        assert_eq!(hits[0].hits.len(), 3000);

        // Shutdown with the stalled client STILL connected and unread: the
        // drain cannot flush its responses, so the drain-timeout
        // force-close must fire and shutdown must return anyway.
        let t0 = std::time::Instant::now();
        server.shutdown();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(30),
            "shutdown must not wedge on a non-reading client"
        );
        drop(stalled);
    }

    #[test]
    fn a_version_1_client_is_still_served() {
        use std::io::Write;
        let service = Arc::new(service());
        let server = NetServer::serve(
            "127.0.0.1:0",
            Arc::clone(&service) as _,
            ServerConfig::default(),
        )
        .unwrap();
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&proto::frame_bytes(&Frame::Hello {
            magic: NET_MAGIC,
            version: MIN_PROTOCOL_VERSION,
        }))
        .unwrap();
        let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
        let ack = proto::read_message(&mut reader, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        let Frame::HelloAck { version, .. } = ack else {
            panic!("expected HelloAck, got {ack:?}");
        };
        assert_eq!(version, MIN_PROTOCOL_VERSION, "ack echoes the client");

        let request = QueryRequest::Threshold {
            pattern: b"AB".to_vec(),
            tau: 0.3,
        };
        raw.write_all(&proto::frame_bytes(&Frame::Request {
            id: 7,
            request: request.clone(),
        }))
        .unwrap();
        let reply = proto::read_message(&mut reader, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        let Frame::Response { id, result } = reply else {
            panic!("expected Response, got {reply:?}");
        };
        assert_eq!(id, 7);
        assert_eq!(
            result.unwrap(),
            service.query_requests(&[request]).remove(0).unwrap()
        );
        server.shutdown();
    }

    #[test]
    fn stats_are_byte_stable_across_idle_scrapes() {
        let server =
            NetServer::serve("127.0.0.1:0", Arc::new(service()), ServerConfig::default()).unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        client.query_requests(&batch()).unwrap();

        let first = client.stats().unwrap();
        let second = client.stats().unwrap();
        assert_eq!(first, second, "idle scrapes must render identical bytes");

        // A monitoring session on its own fresh connection reads the same
        // bytes too: stats-only connections stay out of every counter,
        // including conns_accepted/conns_open. (The query client stays
        // connected so the gauge state is identical across all scrapes.)
        let mut monitor = NetClient::connect(server.local_addr()).unwrap();
        let third = monitor.stats().unwrap();
        assert_eq!(first, third, "a stats-only connection must be invisible");

        // The scrape carries both layers: server traffic counters and the
        // backend engine's instrumentation.
        assert!(first.contains("ustr_net_requests 4"), "{first}");
        assert!(first.contains("ustr_net_conns_accepted 1"), "{first}");
        assert!(first.contains("ustr_service_requests 4"), "{first}");
        assert!(first.contains("ustr_net_rtt_us_top_k_count 1"), "{first}");
        server.shutdown();
    }

    #[test]
    fn traced_query_over_tcp_yields_the_full_span_tree_and_chrome_json() {
        // The acceptance scenario: 100% sampling, one Threshold query over
        // TCP with a propagated client context. The server engine's span
        // tree must carry the whole request anatomy, the answer must be
        // identical to the untraced one, and both export paths must render
        // valid Chrome trace JSON containing the tree.
        let service = Arc::new(service());
        service.tracer().set_sample_permyriad(10_000);
        let server = NetServer::serve(
            "127.0.0.1:0",
            Arc::clone(&service) as _,
            ServerConfig::default(),
        )
        .unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.server_info().protocol_version, PROTOCOL_VERSION);

        let ctx = ustr_obs::TraceContext {
            trace_id: 0x00c0_ffee_0000_0000_0000_0000_0000_0042,
            parent_span: 99,
            sampled: true,
        };
        let (answer, timings) = client.query_traced(b"AB", 0.3, ctx).unwrap();
        let plain = client.query(b"AB", 0.3).unwrap();
        assert_eq!(
            answer.as_ref().unwrap(),
            plain.as_ref().unwrap(),
            "traced and untraced answers are identical"
        );

        // Per-stage server timings ride back on the wire.
        let stage_names: Vec<&str> = timings.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            stage_names,
            ["cache_lookup", "fanout", "merge"],
            "{timings:?}"
        );

        // The server-side tree continues the client's trace: same 128-bit
        // id, root parented under the client's span, with the whole
        // anatomy (cache lookup, fanout, per-segment kernel spans, merge).
        let traces = service.tracer().traces();
        let tree = traces
            .iter()
            .find(|t| t.trace_id == ctx.trace_id)
            .expect("the propagated trace was kept");
        let root = tree
            .roots
            .iter()
            .find(|r| r.span.name == "request")
            .expect("request root");
        assert_eq!(root.span.parent_span, 99, "root continues the client span");
        assert!(root.children.iter().any(|c| c.span.name == "cache_lookup"));
        let fanout = root
            .children
            .iter()
            .find(|c| c.span.name == "fanout")
            .expect("fanout span");
        let segments: Vec<_> = fanout
            .children
            .iter()
            .filter(|c| c.span.name == "segment_answer")
            .collect();
        assert!(!segments.is_empty(), "at least one segment span");
        assert!(
            segments
                .iter()
                .any(|s| s.span.attrs.get("candidates").is_some()
                    && s.span.attrs.get("verified").is_some()),
            "segment spans carry kernel attribution"
        );
        assert!(root.children.iter().any(|c| c.span.name == "merge"));

        // Both export paths render the same valid Chrome trace JSON.
        let via_method = server.traces_json();
        let via_source = (server.trace_source())();
        assert_eq!(via_method, via_source);
        assert!(via_method.starts_with('{') && via_method.trim_end().ends_with('}'));
        assert!(via_method.contains("\"traceEvents\""), "{via_method}");
        for name in [
            "request",
            "cache_lookup",
            "fanout",
            "segment_answer",
            "merge",
        ] {
            assert!(
                via_method.contains(&format!("\"name\": \"{name}\"")),
                "missing {name} in {via_method}"
            );
        }
        assert!(via_method.contains("\"candidates\""), "{via_method}");
        server.shutdown();
    }

    #[test]
    fn a_v2_session_round_trips_byte_identically_and_rejects_traced_frames() {
        use std::io::Write;
        // Tracing fully on, yet a v2 session must see byte-for-byte the
        // same reply a pre-tracing server would send — and the v3 frame
        // kinds must be refused, not half-served.
        let service = Arc::new(service());
        service.tracer().set_sample_permyriad(10_000);
        let server = NetServer::serve(
            "127.0.0.1:0",
            Arc::clone(&service) as _,
            ServerConfig::default(),
        )
        .unwrap();
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&proto::frame_bytes(&Frame::Hello {
            magic: NET_MAGIC,
            version: 2,
        }))
        .unwrap();
        let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
        let ack = proto::read_message(&mut reader, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        let Frame::HelloAck { version, .. } = ack else {
            panic!("expected HelloAck, got {ack:?}");
        };
        assert_eq!(version, 2, "the ack echoes the negotiated version");

        let request = QueryRequest::Threshold {
            pattern: b"AB".to_vec(),
            tau: 0.3,
        };
        raw.write_all(&proto::frame_bytes(&Frame::Request {
            id: 11,
            request: request.clone(),
        }))
        .unwrap();
        // Byte identity on the wire: the raw reply payload equals the
        // local encoding of the expected v2 Response frame.
        let payload = ustr_store::read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        let local = service.query_requests(&[request]).remove(0).unwrap();
        let expected = proto::encode_frame(&Frame::Response {
            id: 11,
            result: Ok(local),
        });
        assert_eq!(payload, expected, "v2 reply is byte-identical");

        // A v3-only frame on the v2 session is a protocol error.
        raw.write_all(&proto::frame_bytes(&Frame::RequestTraced {
            id: 12,
            request: QueryRequest::Threshold {
                pattern: b"AB".to_vec(),
                tau: 0.3,
            },
            trace: proto::WireTraceContext::from(ustr_obs::TraceContext {
                trace_id: 1,
                parent_span: 2,
                sampled: true,
            }),
        }))
        .unwrap();
        let reply = proto::read_message(&mut reader, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        let Frame::Error { code, message } = reply else {
            panic!("expected an error frame, got {reply:?}");
        };
        assert_eq!(code, proto::err_code::MALFORMED_FRAME);
        assert!(message.contains("version 3"), "{message}");
        server.shutdown();
    }

    #[test]
    fn stats_json_round_trips_the_merged_snapshot() {
        let server =
            NetServer::serve("127.0.0.1:0", Arc::new(service()), ServerConfig::default()).unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        client.query_requests(&batch()).unwrap();

        let json = client.stats_json().unwrap();
        assert!(
            json.starts_with('{') && json.trim_end().ends_with('}'),
            "{json}"
        );
        assert!(json.contains("\"net.requests\": 4"), "{json}");
        assert!(json.contains("\"service.requests\": 4"), "{json}");
        let again = client.stats_json().unwrap();
        assert_eq!(json, again, "idle JSON scrapes are byte-stable");
        server.shutdown();
    }

    #[test]
    fn version_mismatch_is_refused_with_a_clear_error() {
        use std::io::Write;
        let server =
            NetServer::serve("127.0.0.1:0", Arc::new(service()), ServerConfig::default()).unwrap();
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&proto::frame_bytes(&Frame::Hello {
            magic: NET_MAGIC,
            version: 999,
        }))
        .unwrap();
        let reply = proto::read_message(&mut raw, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        let Frame::Error { code, message } = reply else {
            panic!("expected an error frame, got {reply:?}");
        };
        assert_eq!(code, proto::err_code::UNSUPPORTED_VERSION);
        assert!(message.contains("999"), "{message}");
        server.shutdown();
    }

    #[test]
    fn a_read_deadline_surfaces_as_a_timeout_error() {
        // A listener that accepts but never answers the handshake: the
        // configured read deadline must fire as the typed Timeout error,
        // not a hang and not a generic Io.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let err = match NetClient::connect_with_config(
            addr,
            ClientConfig {
                read_timeout: Some(std::time::Duration::from_millis(100)),
                ..ClientConfig::default()
            },
        ) {
            Err(err) => err,
            Ok(_) => panic!("no HelloAck ever comes, the connect cannot succeed"),
        };
        assert!(matches!(err, NetError::Timeout(_)), "{err}");
        drop(hold.join());
    }

    #[test]
    fn health_probes_report_backend_degradation() {
        use std::io::Write;
        // A static backend is always healthy.
        let server =
            NetServer::serve("127.0.0.1:0", Arc::new(service()), ServerConfig::default()).unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.health().unwrap(), None);
        server.shutdown();

        // A degraded backend's detail rides back verbatim.
        struct Degraded(QueryService);
        impl QueryBackend for Degraded {
            fn query_requests(
                &self,
                requests: &[QueryRequest],
            ) -> Vec<Result<QueryResponse, ustr_core::Error>> {
                self.0.query_requests(requests)
            }
            fn num_docs(&self) -> usize {
                self.0.num_docs()
            }
            fn tau_min(&self) -> f64 {
                self.0.tau_min()
            }
            fn health(&self) -> Option<String> {
                Some("background maintenance halted: injected fault".into())
            }
        }
        let server = NetServer::serve(
            "127.0.0.1:0",
            Arc::new(Degraded(service())),
            ServerConfig::default(),
        )
        .unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let detail = client.health().unwrap().expect("degraded");
        assert!(detail.contains("halted"), "{detail}");

        // A v3 session must have the v4-only probe refused, not answered.
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&proto::frame_bytes(&Frame::Hello {
            magic: NET_MAGIC,
            version: 3,
        }))
        .unwrap();
        let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
        proto::read_message(&mut reader, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        raw.write_all(&proto::frame_bytes(&Frame::HealthRequest { id: 1 }))
            .unwrap();
        let reply = proto::read_message(&mut reader, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        let Frame::Error { code, message } = reply else {
            panic!("expected an error frame, got {reply:?}");
        };
        assert_eq!(code, proto::err_code::MALFORMED_FRAME);
        assert!(message.contains("version 4"), "{message}");
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped_after_the_timeout() {
        let server = NetServer::serve(
            "127.0.0.1:0",
            Arc::new(service()),
            ServerConfig {
                idle_timeout: Some(std::time::Duration::from_millis(150)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        client.query(b"AB", 0.3).unwrap().unwrap();
        // Go quiet past the timeout: the server must close the session.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while server.active_connections() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        assert_eq!(server.active_connections(), 0, "the idle session lingers");
        assert_eq!(server.loop_stats().reaped_idle, 1);
        let after = client.query(b"AB", 0.3);
        assert!(after.is_err(), "the reaped session is gone");
        server.shutdown();
    }

    #[test]
    fn an_error_budget_drains_the_connection_with_answers_first() {
        let server = NetServer::serve(
            "127.0.0.1:0",
            Arc::new(service()),
            ServerConfig {
                error_budget: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let bad = QueryRequest::Threshold {
            pattern: b"".to_vec(),
            tau: 0.3,
        };
        // Three failing requests against a budget of two: every answer is
        // still delivered (answer-first), then the connection drains.
        let answers = client
            .query_requests(&vec![bad.clone(); 3])
            .expect("answers beat the budget close");
        assert!(answers.iter().all(|a| a.is_err()));
        let after = client.query(b"AB", 0.3);
        assert!(after.is_err(), "the budget close ends the session");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while server.loop_stats().budget_closes == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(server.loop_stats().budget_closes, 1);
        server.shutdown();
    }

    #[test]
    fn a_dead_peer_mid_drain_is_reaped_immediately() {
        use std::io::Write;
        use std::sync::{Condvar, Mutex};
        // A backend whose queries block on a gate: the connection enters
        // shutdown-drain with one in-flight request, then its peer dies.
        // The drain must reap it now — not sit out the 10 s drain window.
        struct Gated {
            inner: QueryService,
            gate: Arc<(Mutex<bool>, Condvar)>,
        }
        impl QueryBackend for Gated {
            fn query_requests(
                &self,
                requests: &[QueryRequest],
            ) -> Vec<Result<QueryResponse, ustr_core::Error>> {
                let (lock, cv) = &*self.gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                drop(open);
                self.inner.query_requests(requests)
            }
            fn num_docs(&self) -> usize {
                self.inner.num_docs()
            }
            fn tau_min(&self) -> f64 {
                self.inner.tau_min()
            }
        }
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let server = NetServer::serve(
            "127.0.0.1:0",
            Arc::new(Gated {
                inner: service(),
                gate: Arc::clone(&gate),
            }),
            ServerConfig {
                threads: 1,
                drain_timeout: std::time::Duration::from_secs(10),
                ..ServerConfig::default()
            },
        )
        .unwrap();

        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&proto::frame_bytes(&Frame::Hello {
            magic: NET_MAGIC,
            version: PROTOCOL_VERSION,
        }))
        .unwrap();
        raw.write_all(&proto::frame_bytes(&Frame::Request {
            id: 0,
            request: QueryRequest::Threshold {
                pattern: b"AB".to_vec(),
                tau: 0.3,
            },
        }))
        .unwrap();
        // Let the request dispatch and park on the gate.
        std::thread::sleep(std::time::Duration::from_millis(200));

        let t0 = std::time::Instant::now();
        let shutdown = std::thread::spawn({
            let server = Arc::new(server);
            let server2 = Arc::clone(&server);
            move || {
                server2.shutdown();
                server
            }
        });
        // Give the drain a moment to begin, then kill the peer with its
        // HelloAck unread (an abortive close the monitor-read must see).
        std::thread::sleep(std::time::Duration::from_millis(300));
        drop(raw);
        let server = shutdown.join().expect("shutdown thread");
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "shutdown waited out the drain window on a dead peer: {:?}",
            t0.elapsed()
        );
        assert!(
            server.loop_stats().reaped_draining >= 1,
            "the reap was not accounted: {:?}",
            server.loop_stats()
        );
        // Unblock the parked worker so the pool can join on drop.
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        drop(server);
    }

    #[test]
    fn a_resilient_client_completes_its_batch_across_a_server_restart() {
        let local = service();
        let control: Vec<QueryResponse> = local
            .query_requests(&batch())
            .into_iter()
            .map(|r| r.unwrap())
            .collect();

        let server1 =
            NetServer::serve("127.0.0.1:0", Arc::new(service()), ServerConfig::default()).unwrap();
        let addr = server1.local_addr();
        let mut client = ResilientClient::new(
            addr.to_string(),
            RetryPolicy {
                max_attempts: 6,
                base_backoff: std::time::Duration::from_millis(10),
                max_backoff: std::time::Duration::from_millis(100),
            },
            ClientConfig {
                read_timeout: Some(std::time::Duration::from_secs(5)),
                ..ClientConfig::default()
            },
        );
        let before: Vec<QueryResponse> = client
            .query_requests(&batch())
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(before, control);

        // Kill the server and restart on the same port (SO_REUSEADDR).
        server1.shutdown();
        drop(server1);
        let server2 = NetServer::serve(addr, Arc::new(service()), ServerConfig::default())
            .expect("rebinding the drained port");

        // The cached connection is dead: the batch must complete anyway,
        // via reconnect + re-issue, with answers identical to an
        // uninterrupted run.
        let after: Vec<QueryResponse> = client
            .query_requests(&batch())
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(after, control, "retried answers must be identical");
        let stats = client.stats();
        assert!(
            stats.retries >= 1,
            "the dead connection was retried: {stats:?}"
        );
        assert!(stats.reconnects >= 1, "the client reconnected: {stats:?}");
        server2.shutdown();
    }
}
