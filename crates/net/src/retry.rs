//! Client-side resilience: deterministic retry with capped exponential
//! backoff, and a [`ResilientClient`] that survives server restarts by
//! reconnecting and re-issuing only the requests that were never answered.
//!
//! The failure taxonomy follows [`NetError`]: timeouts, socket errors,
//! disconnects, and framing desync (a restart can cut the byte stream
//! mid-frame) are **transient** — drop the connection, back off, retry.
//! Server-reported fatal errors and protocol violations are **permanent**
//! — retrying would repeat them, so they bubble immediately.
//!
//! Backoff is pure arithmetic (`base << attempt`, capped), no jitter and
//! no randomness: two runs with the same failure sequence wait the same
//! total time, which keeps resilience tests deterministic (INVARIANTS §7).

use std::net::ToSocketAddrs;
use std::time::Duration;

use ustr_obs::{Counter, MetricsRegistry};
use ustr_service::{QueryRequest, QueryResponse};

use crate::client::{ClientConfig, NetClient, NetError};
use crate::proto::RemoteError;

/// How many unanswered requests ride in one wire batch. Progress is kept
/// per chunk: a connection that dies mid-batch loses at most one chunk's
/// answers, and only the still-unanswered chunks are re-issued (with
/// fresh ids) on the next connection.
const RETRY_CHUNK: usize = 32;

/// Deterministic retry schedule: up to `max_attempts` tries, waiting
/// `min(base_backoff << failures, max_backoff)` between them.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries, including the first (min 1).
    pub max_attempts: u32,
    /// Wait before the first retry; doubles per subsequent failure.
    pub base_backoff: Duration,
    /// Ceiling on any single wait.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The wait after `failures` consecutive failures (0-based):
    /// `min(base << failures, max)`, saturating.
    pub fn backoff(&self, failures: u32) -> Duration {
        let factor = 1u32.checked_shl(failures).unwrap_or(u32::MAX);
        let grown = self
            .base_backoff
            .checked_mul(factor)
            .unwrap_or(self.max_backoff);
        grown.min(self.max_backoff)
    }
}

/// Counters describing what a [`ResilientClient`] had to do. Exposed for
/// telemetry wiring; also registered as `net.client.*` counters when the
/// client is built with [`ResilientClient::bind_metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Transient failures that triggered a backoff + retry.
    pub retries: u64,
    /// Successful reconnections after a dropped connection.
    pub reconnects: u64,
    /// Transient failures that were deadline expiries specifically.
    pub timeouts: u64,
}

/// A client wrapper that completes batches across transient failures:
/// connection refused while a server restarts, read deadlines, mid-batch
/// disconnects. Answers already received are kept; each retry reconnects
/// and re-issues only the unanswered requests under fresh ids.
pub struct ResilientClient {
    addr: String,
    policy: RetryPolicy,
    config: ClientConfig,
    client: Option<NetClient>,
    stats: RetryStats,
    retries_metric: Option<Counter>,
    reconnects_metric: Option<Counter>,
    timeouts_metric: Option<Counter>,
}

impl ResilientClient {
    /// Builds a lazy client for `addr` (connected on first use).
    pub fn new(addr: impl Into<String>, policy: RetryPolicy, config: ClientConfig) -> Self {
        Self {
            addr: addr.into(),
            policy,
            config,
            client: None,
            stats: RetryStats::default(),
            retries_metric: None,
            reconnects_metric: None,
            timeouts_metric: None,
        }
    }

    /// Registers `net.client.{retries,reconnects,timeouts}` counters in
    /// `registry`; subsequent activity feeds them alongside the local
    /// [`RetryStats`].
    pub fn bind_metrics(&mut self, registry: &MetricsRegistry) {
        self.retries_metric = Some(registry.counter("net.client.retries"));
        self.reconnects_metric = Some(registry.counter("net.client.reconnects"));
        self.timeouts_metric = Some(registry.counter("net.client.timeouts"));
    }

    /// What this client had to do so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// `true` when `error` is worth a reconnect-and-retry: the connection
    /// (or the server behind it) failed, rather than the request being
    /// wrong.
    fn is_transient(error: &NetError) -> bool {
        matches!(
            error,
            NetError::Io(_) | NetError::Timeout(_) | NetError::Disconnected | NetError::Frame(_)
        )
    }

    fn note_failure(&mut self, error: &NetError) {
        self.stats.retries += 1;
        if let Some(c) = &self.retries_metric {
            c.inc();
        }
        if matches!(error, NetError::Timeout(_)) {
            self.stats.timeouts += 1;
            if let Some(c) = &self.timeouts_metric {
                c.inc();
            }
        }
    }

    /// Returns the live connection, dialing (or re-dialing) when needed.
    fn connected(&mut self) -> Result<&mut NetClient, NetError> {
        if self.client.is_none() {
            let addrs: Vec<std::net::SocketAddr> = self.addr.to_socket_addrs()?.collect();
            let client = NetClient::connect_with_config(addrs.as_slice(), self.config.clone())?;
            let was_reconnect = self.stats.retries > 0;
            if was_reconnect {
                self.stats.reconnects += 1;
                if let Some(c) = &self.reconnects_metric {
                    c.inc();
                }
            }
            self.client = Some(client);
        }
        self.client
            .as_mut()
            .ok_or_else(|| NetError::Protocol("connection vanished after connect".into()))
    }

    /// Answers a typed batch, retrying transient failures under the
    /// policy. Positionally aligned with `requests`, exactly like
    /// [`NetClient::query_requests`] — and with the same answers a single
    /// uninterrupted connection would have produced, since queries are
    /// read-only and re-issue is keyed on the unanswered slots only.
    #[allow(clippy::type_complexity)]
    pub fn query_requests(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<Vec<Result<QueryResponse, RemoteError>>, NetError> {
        let mut slots: Vec<Option<Result<QueryResponse, RemoteError>>> = vec![None; requests.len()];
        let mut failures = 0u32;
        loop {
            match self.try_fill(requests, &mut slots) {
                Ok(()) => {
                    let mut out = Vec::with_capacity(slots.len());
                    for slot in slots {
                        out.push(slot.ok_or_else(|| {
                            NetError::Protocol("a filled batch left an empty slot".into())
                        })?);
                    }
                    return Ok(out);
                }
                Err(error) => {
                    // The connection can no longer be trusted mid-batch.
                    self.client = None;
                    if !Self::is_transient(&error) {
                        return Err(error);
                    }
                    failures += 1;
                    if failures >= self.policy.max_attempts.max(1) {
                        return Err(error);
                    }
                    self.note_failure(&error);
                    std::thread::sleep(self.policy.backoff(failures - 1));
                }
            }
        }
    }

    /// One attempt: connect if needed, then push every unanswered chunk
    /// through the live connection. Slots filled by completed chunks
    /// survive a failure in a later chunk.
    fn try_fill(
        &mut self,
        requests: &[QueryRequest],
        slots: &mut [Option<Result<QueryResponse, RemoteError>>],
    ) -> Result<(), NetError> {
        let unanswered: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_none())
            .map(|(i, _)| i)
            .collect();
        for chunk in unanswered.chunks(RETRY_CHUNK) {
            let batch: Vec<QueryRequest> = chunk
                .iter()
                .filter_map(|&i| requests.get(i).cloned())
                .collect();
            let answers = self.connected()?.query_requests(&batch)?;
            for (&index, answer) in chunk.iter().zip(answers) {
                if let Some(slot) = slots.get_mut(index) {
                    *slot = Some(answer);
                }
            }
        }
        Ok(())
    }

    /// One threshold query under the retry policy.
    pub fn query(
        &mut self,
        pattern: &[u8],
        tau: f64,
    ) -> Result<Result<QueryResponse, RemoteError>, NetError> {
        let req = QueryRequest::Threshold {
            pattern: pattern.to_vec(),
            tau,
        };
        self.query_requests(std::slice::from_ref(&req))?
            .pop()
            .ok_or_else(|| NetError::Protocol("one-request batch yielded no response".into()))
    }

    /// The server's handshake advertisement, dialing if needed (no retry:
    /// callers wanting resilience on first contact should issue a query).
    pub fn server_info(&mut self) -> Result<crate::client::ServerInfo, NetError> {
        Ok(self.connected()?.server_info())
    }

    /// Probes server health (protocol v4+), with the same retry behavior
    /// as queries.
    pub fn health(&mut self) -> Result<Option<String>, NetError> {
        let mut failures = 0u32;
        loop {
            let result = self.connected().and_then(|c| c.health());
            match result {
                Ok(health) => return Ok(health),
                Err(error) => {
                    self.client = None;
                    if !Self::is_transient(&error) {
                        return Err(error);
                    }
                    failures += 1;
                    if failures >= self.policy.max_attempts.max(1) {
                        return Err(error);
                    }
                    self.note_failure(&error);
                    std::thread::sleep(self.policy.backoff(failures - 1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(750),
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(100));
        assert_eq!(policy.backoff(1), Duration::from_millis(200));
        assert_eq!(policy.backoff(2), Duration::from_millis(400));
        assert_eq!(policy.backoff(3), Duration::from_millis(750), "capped");
        assert_eq!(policy.backoff(63), Duration::from_millis(750));
        // Shift overflow saturates instead of wrapping back to tiny waits.
        assert_eq!(policy.backoff(64), Duration::from_millis(750));
    }

    #[test]
    fn refused_connections_exhaust_the_policy_then_surface() {
        // Nothing listens on this port (bound-then-dropped to claim one).
        let port = {
            let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            sock.local_addr().unwrap().port()
        };
        let mut client = ResilientClient::new(
            format!("127.0.0.1:{port}"),
            RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            },
            ClientConfig::default(),
        );
        let err = client.query(b"AB", 0.5).expect_err("no server to answer");
        assert!(
            matches!(err, NetError::Io(_) | NetError::Timeout(_)),
            "{err}"
        );
        assert_eq!(client.stats().retries, 2, "two failures were retried");
        assert_eq!(client.stats().reconnects, 0, "no connect ever succeeded");
    }
}
