//! The pipelining TCP client.
//!
//! [`NetClient::connect`] performs the version handshake;
//! [`NetClient::query_requests`] writes a whole batch as one buffer (full
//! pipelining — no write→read round trip per request) and then collects
//! responses, which the server may deliver **in any order**: they are
//! matched back to their requests by id, so the returned vector is always
//! positionally aligned with the input batch.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use ustr_service::{QueryRequest, QueryResponse};
use ustr_store::StoreError;

use crate::proto::{
    frame_bytes, read_message, Frame, RemoteError, WireTraceContext, DEFAULT_MAX_FRAME_LEN,
    NET_MAGIC, PROTOCOL_VERSION,
};

/// Everything that can go wrong on the client side of a session. Per-query
/// failures (validation errors) are **not** here — they come back as
/// [`RemoteError`]s inside the result vector, and the connection stays
/// usable.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A configured deadline elapsed (connect, read, or write timeout —
    /// see [`ClientConfig`]). Split from [`NetError::Io`] because a
    /// timeout is the retryable failure: the peer may be mid-restart.
    Timeout(std::io::Error),
    /// The peer sent bytes that do not decode as a frame.
    Frame(StoreError),
    /// The peer sent a well-formed frame that violates the session state
    /// machine (e.g. a response id that was never requested).
    Protocol(String),
    /// The server reported a fatal session error and closed.
    Server {
        /// One of the [`crate::proto::err_code`] constants.
        code: u32,
        /// The server's description.
        message: String,
    },
    /// The connection ended (EOF or server goodbye) while responses were
    /// still outstanding.
    Disconnected,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network I/O error: {e}"),
            NetError::Timeout(e) => write!(f, "network deadline elapsed: {e}"),
            NetError::Frame(e) => write!(f, "malformed frame from server: {e}"),
            NetError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            NetError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            NetError::Disconnected => {
                write!(f, "connection closed with responses outstanding")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// A socket deadline surfaces as `WouldBlock` (Unix `SO_RCVTIMEO`) or
/// `TimedOut` (Windows, and `connect_timeout`) — either way it is the
/// retryable kind.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        if is_timeout(&e) {
            NetError::Timeout(e)
        } else {
            NetError::Io(e)
        }
    }
}

impl From<StoreError> for NetError {
    fn from(e: StoreError) -> Self {
        // A read deadline fires inside the framing layer; unwrap it so
        // every `?` site classifies timeouts uniformly.
        match e {
            StoreError::Io(io) if is_timeout(&io) => NetError::Timeout(io),
            other => NetError::Frame(other),
        }
    }
}

/// Connection-level knobs for [`NetClient::connect_with_config`]. The
/// default has no deadlines and the default frame cap — identical to
/// [`NetClient::connect`].
#[derive(Debug, Clone, Default)]
pub struct ClientConfig {
    /// Give up on `connect(2)` after this long (per resolved address).
    /// `None` uses the OS default.
    pub connect_timeout: Option<Duration>,
    /// Deadline for each socket read; an expired deadline surfaces as
    /// [`NetError::Timeout`]. `None` blocks indefinitely.
    pub read_timeout: Option<Duration>,
    /// Deadline for each socket write. `None` blocks indefinitely.
    pub write_timeout: Option<Duration>,
    /// Cap on one response frame's payload length. `None` uses
    /// [`DEFAULT_MAX_FRAME_LEN`].
    pub max_frame_len: Option<usize>,
}

/// What the server advertised in its [`Frame::HelloAck`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerInfo {
    /// The protocol version the session speaks.
    pub protocol_version: u32,
    /// Documents served at handshake time.
    pub num_docs: u64,
    /// The serving threshold floor (τ below this fails validation).
    pub tau_min: f64,
}

/// One client connection (the client side of one pipelined session).
pub struct NetClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    info: ServerInfo,
    next_id: u64,
    max_frame_len: usize,
}

impl NetClient {
    /// Connects and handshakes with the default frame-length cap.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Self::connect_with(addr, DEFAULT_MAX_FRAME_LEN)
    }

    /// Connects and handshakes; `max_frame_len` caps response payloads.
    pub fn connect_with(addr: impl ToSocketAddrs, max_frame_len: usize) -> Result<Self, NetError> {
        Self::connect_with_config(
            addr,
            ClientConfig {
                max_frame_len: Some(max_frame_len),
                ..ClientConfig::default()
            },
        )
    }

    /// Connects and handshakes with explicit deadlines. With a
    /// `connect_timeout`, each resolved address is tried in turn under
    /// that deadline; read/write deadlines apply to every subsequent
    /// socket operation and surface as [`NetError::Timeout`].
    pub fn connect_with_config(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Self, NetError> {
        let max_frame_len = config.max_frame_len.unwrap_or(DEFAULT_MAX_FRAME_LEN);
        let mut writer = match config.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(deadline) => {
                let mut last_err: Option<std::io::Error> = None;
                let mut connected = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, deadline) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                match connected {
                    Some(stream) => stream,
                    None => {
                        return Err(NetError::from(last_err.unwrap_or_else(|| {
                            std::io::Error::other("address resolved to no candidates")
                        })))
                    }
                }
            }
        };
        writer.set_nodelay(true).ok();
        writer.set_read_timeout(config.read_timeout)?;
        writer.set_write_timeout(config.write_timeout)?;
        let mut reader = BufReader::new(writer.try_clone()?);
        writer.write_all(&frame_bytes(&Frame::Hello {
            magic: NET_MAGIC,
            version: PROTOCOL_VERSION,
        }))?;
        let info = match read_message(&mut reader, max_frame_len)? {
            Some(Frame::HelloAck {
                version,
                num_docs,
                tau_min,
            }) => ServerInfo {
                protocol_version: version,
                num_docs,
                tau_min,
            },
            Some(Frame::Error { code, message }) => return Err(NetError::Server { code, message }),
            Some(other) => {
                return Err(NetError::Protocol(format!(
                    "expected HelloAck, got {other:?}"
                )))
            }
            None => return Err(NetError::Disconnected),
        };
        Ok(NetClient {
            writer,
            reader,
            info,
            next_id: 0,
            max_frame_len,
        })
    }

    /// What the server advertised at handshake time.
    pub fn server_info(&self) -> ServerInfo {
        self.info
    }

    /// Answers a typed batch over the connection: all requests are written
    /// as one pipelined burst, then responses are collected and re-aligned
    /// by id. The outer `Err` is a session failure (the connection should
    /// be dropped); inner `Err`s are per-query validation errors from the
    /// server, after which the connection remains usable.
    #[allow(clippy::type_complexity)]
    pub fn query_requests(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<Vec<Result<QueryResponse, RemoteError>>, NetError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let base = self.next_id;
        self.next_id += requests.len() as u64;
        let mut burst = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            burst.extend_from_slice(&frame_bytes(&Frame::Request {
                id: base + i as u64,
                request: request.clone(),
            }));
        }
        // A burst bigger than the socket buffers could deadlock if written
        // synchronously: the server answers the first in-flight window,
        // its writer fills our receive buffer, and both sides block on
        // write. Large bursts are therefore written from a helper thread
        // while this thread drains responses; small ones (the common case)
        // fit in the kernel buffers and skip the thread.
        const SYNC_BURST_LIMIT: usize = 32 << 10;
        let write_thread = if burst.len() <= SYNC_BURST_LIMIT {
            self.writer.write_all(&burst)?;
            None
        } else {
            let mut writer = self.writer.try_clone()?;
            Some(std::thread::spawn(move || writer.write_all(&burst)))
        };

        let mut results: Vec<Option<Result<QueryResponse, RemoteError>>> =
            vec![None; requests.len()];
        let mut outstanding = requests.len();
        while outstanding > 0 {
            match read_message(&mut self.reader, self.max_frame_len)? {
                Some(Frame::Response { id, result }) => {
                    let slot = id
                        .checked_sub(base)
                        .and_then(|i| results.get_mut(i as usize))
                        .ok_or_else(|| {
                            NetError::Protocol(format!("response for unknown request id {id}"))
                        })?;
                    if slot.is_some() {
                        return Err(NetError::Protocol(format!(
                            "duplicate response for request id {id}"
                        )));
                    }
                    *slot = Some(result);
                    outstanding -= 1;
                }
                Some(Frame::Error { code, message }) => {
                    return Err(NetError::Server { code, message })
                }
                Some(Frame::Goodbye) | None => return Err(NetError::Disconnected),
                Some(other) => {
                    return Err(NetError::Protocol(format!(
                        "unexpected frame mid-session: {other:?}"
                    )))
                }
            }
        }
        if let Some(handle) = write_thread {
            handle
                .join()
                .map_err(|_| NetError::Protocol("burst writer thread panicked".into()))??;
        }
        let mut out = Vec::with_capacity(results.len());
        for r in results {
            out.push(r.ok_or_else(|| {
                NetError::Protocol("server closed the session with responses outstanding".into())
            })?);
        }
        Ok(out)
    }

    /// Answers a typed batch with client-propagated trace contexts
    /// (protocol v3+): `contexts[i]` rides to the server on request `i`,
    /// whose engine-side root span continues the client's trace instead of
    /// starting a fresh one. Each answer carries the server's per-stage
    /// timings in microseconds (empty when the server did not sample the
    /// trace). `contexts` must align positionally with `requests`.
    #[allow(clippy::type_complexity)]
    pub fn query_requests_traced(
        &mut self,
        requests: &[QueryRequest],
        contexts: &[ustr_obs::TraceContext],
    ) -> Result<Vec<(Result<QueryResponse, RemoteError>, Vec<(String, u64)>)>, NetError> {
        if self.info.protocol_version < 3 {
            return Err(NetError::Protocol(format!(
                "traced queries require protocol version 3 (this session negotiated {})",
                self.info.protocol_version
            )));
        }
        if contexts.len() != requests.len() {
            return Err(NetError::Protocol(format!(
                "{} trace contexts for {} requests (must align positionally)",
                contexts.len(),
                requests.len()
            )));
        }
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let base = self.next_id;
        self.next_id += requests.len() as u64;
        let mut burst = Vec::new();
        for (i, (request, ctx)) in requests.iter().zip(contexts).enumerate() {
            burst.extend_from_slice(&frame_bytes(&Frame::RequestTraced {
                id: base + i as u64,
                request: request.clone(),
                trace: WireTraceContext::from(*ctx),
            }));
        }
        // Same deadlock-avoiding burst split as `query_requests`.
        const SYNC_BURST_LIMIT: usize = 32 << 10;
        let write_thread = if burst.len() <= SYNC_BURST_LIMIT {
            self.writer.write_all(&burst)?;
            None
        } else {
            let mut writer = self.writer.try_clone()?;
            Some(std::thread::spawn(move || writer.write_all(&burst)))
        };

        type Timed = (Result<QueryResponse, RemoteError>, Vec<(String, u64)>);
        let mut results: Vec<Option<Timed>> = Vec::new();
        results.resize_with(requests.len(), || None);
        let mut outstanding = requests.len();
        while outstanding > 0 {
            match read_message(&mut self.reader, self.max_frame_len)? {
                Some(Frame::ResponseTimed {
                    id,
                    result,
                    timings,
                }) => {
                    let slot = id
                        .checked_sub(base)
                        .and_then(|i| results.get_mut(i as usize))
                        .ok_or_else(|| {
                            NetError::Protocol(format!("response for unknown request id {id}"))
                        })?;
                    if slot.is_some() {
                        return Err(NetError::Protocol(format!(
                            "duplicate response for request id {id}"
                        )));
                    }
                    *slot = Some((result, timings));
                    outstanding -= 1;
                }
                Some(Frame::Error { code, message }) => {
                    return Err(NetError::Server { code, message })
                }
                Some(Frame::Goodbye) | None => return Err(NetError::Disconnected),
                Some(other) => {
                    return Err(NetError::Protocol(format!(
                        "unexpected frame mid-session: {other:?}"
                    )))
                }
            }
        }
        if let Some(handle) = write_thread {
            handle
                .join()
                .map_err(|_| NetError::Protocol("burst writer thread panicked".into()))??;
        }
        let mut out = Vec::with_capacity(results.len());
        for r in results {
            out.push(r.ok_or_else(|| {
                NetError::Protocol("server closed the session with responses outstanding".into())
            })?);
        }
        Ok(out)
    }

    /// Convenience: one traced threshold query. Returns the answer plus
    /// the server's per-stage timings.
    #[allow(clippy::type_complexity)]
    pub fn query_traced(
        &mut self,
        pattern: &[u8],
        tau: f64,
        ctx: ustr_obs::TraceContext,
    ) -> Result<(Result<QueryResponse, RemoteError>, Vec<(String, u64)>), NetError> {
        let req = QueryRequest::Threshold {
            pattern: pattern.to_vec(),
            tau,
        };
        self.query_requests_traced(std::slice::from_ref(&req), std::slice::from_ref(&ctx))?
            .pop()
            .ok_or_else(|| NetError::Protocol("one-request batch yielded no response".into()))
    }

    /// Convenience: one threshold query.
    pub fn query(
        &mut self,
        pattern: &[u8],
        tau: f64,
    ) -> Result<Result<QueryResponse, RemoteError>, NetError> {
        let req = QueryRequest::Threshold {
            pattern: pattern.to_vec(),
            tau,
        };
        self.query_requests(std::slice::from_ref(&req))?
            .pop()
            .ok_or_else(|| NetError::Protocol("one-request batch yielded no response".into()))
    }

    /// Scrapes the server's telemetry (protocol v2+): one
    /// [`Frame::StatsRequest`]/[`Frame::StatsResponse`] round trip, with
    /// the exposition-format text returned verbatim. The server holds the
    /// answer behind the connection's in-flight permits, so a scrape after
    /// a pipelined burst observes all of that burst's responses.
    pub fn stats(&mut self) -> Result<String, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        self.writer
            .write_all(&frame_bytes(&Frame::StatsRequest { id }))?;
        match read_message(&mut self.reader, self.max_frame_len)? {
            Some(Frame::StatsResponse { id: got, text }) => {
                if got != id {
                    return Err(NetError::Protocol(format!(
                        "stats response for unknown request id {got}"
                    )));
                }
                Ok(text)
            }
            Some(Frame::Error { code, message }) => Err(NetError::Server { code, message }),
            Some(other) => Err(NetError::Protocol(format!(
                "expected StatsResponse, got {other:?}"
            ))),
            None => Err(NetError::Disconnected),
        }
    }

    /// Scrapes the server's telemetry in the machine-readable JSON
    /// rendering (protocol v3+): one [`Frame::StatsJsonRequest`] round
    /// trip, answered with a [`Frame::StatsResponse`] whose body is JSON.
    pub fn stats_json(&mut self) -> Result<String, NetError> {
        if self.info.protocol_version < 3 {
            return Err(NetError::Protocol(format!(
                "JSON stats require protocol version 3 (this session negotiated {})",
                self.info.protocol_version
            )));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.writer
            .write_all(&frame_bytes(&Frame::StatsJsonRequest { id }))?;
        match read_message(&mut self.reader, self.max_frame_len)? {
            Some(Frame::StatsResponse { id: got, text }) => {
                if got != id {
                    return Err(NetError::Protocol(format!(
                        "stats response for unknown request id {got}"
                    )));
                }
                Ok(text)
            }
            Some(Frame::Error { code, message }) => Err(NetError::Server { code, message }),
            Some(other) => Err(NetError::Protocol(format!(
                "expected StatsResponse, got {other:?}"
            ))),
            None => Err(NetError::Disconnected),
        }
    }

    /// Probes the server's health (protocol v4+): one
    /// [`Frame::HealthRequest`]/[`Frame::HealthResponse`] round trip.
    /// Returns `None` when healthy, or the server's description of the
    /// impairment — e.g. a live backend whose background maintenance
    /// halted on a storage fault (still answering queries, degraded).
    pub fn health(&mut self) -> Result<Option<String>, NetError> {
        if self.info.protocol_version < 4 {
            return Err(NetError::Protocol(format!(
                "health probes require protocol version 4 (this session negotiated {})",
                self.info.protocol_version
            )));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.writer
            .write_all(&frame_bytes(&Frame::HealthRequest { id }))?;
        match read_message(&mut self.reader, self.max_frame_len)? {
            Some(Frame::HealthResponse {
                id: got,
                degraded,
                detail,
            }) => {
                if got != id {
                    return Err(NetError::Protocol(format!(
                        "health response for unknown request id {got}"
                    )));
                }
                Ok(degraded.then_some(detail))
            }
            Some(Frame::Error { code, message }) => Err(NetError::Server { code, message }),
            Some(other) => Err(NetError::Protocol(format!(
                "expected HealthResponse, got {other:?}"
            ))),
            None => Err(NetError::Disconnected),
        }
    }

    /// Tells the server this session is done (it may drain and close).
    pub fn goodbye(mut self) -> Result<(), NetError> {
        self.writer.write_all(&frame_bytes(&Frame::Goodbye))?;
        Ok(())
    }
}
