//! Per-connection state machines for the event-driven server: incremental
//! frame parsing over a partial-read buffer, and a partial-write response
//! queue. Pure buffer logic — no sockets, no clocks — so the non-blocking
//! framing path is unit-testable byte by byte.
//!
//! The wire format is unchanged from the blocking server (see
//! [`crate::proto`]): a `u32` little-endian payload length, the payload,
//! and an FNV-1a-64 checksum trailer. What changes here is *delivery*: the
//! event loop hands whatever bytes the socket had, and [`FrameReader`]
//! yields exactly the frames the blocking `read_frame` would have — the
//! same `StoreError`s for oversize declarations (refused from the header
//! alone, before any body arrives), torn tails, and checksum mismatches —
//! regardless of how reads were split.

use std::collections::VecDeque;
use std::io::Write;

use ustr_store::{read_frame, StoreError, FRAME_OVERHEAD};

use crate::proto::{decode_frame, Frame};

/// What [`FrameReader::next`] found at the head of the buffer.
#[derive(Debug)]
pub(crate) enum FrameStep {
    /// The buffered bytes end mid-frame (or the buffer is empty) and the
    /// stream is still open: wait for more.
    NeedMore,
    /// One complete, checksum-verified, decoded frame; `wire_len` is its
    /// total on-the-wire size (payload plus framing overhead).
    Frame { frame: Frame, wire_len: u64 },
    /// The head of the buffer can never become a valid frame: an oversize
    /// declared length, a checksum mismatch, an undecodable payload — or a
    /// torn tail at end-of-stream. Identical errors to the blocking reader.
    Malformed(StoreError),
}

/// Incremental frame parser over a partial-read buffer.
#[derive(Debug, Default)]
pub(crate) struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Appends bytes as they arrive off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// `true` when no partial frame is buffered — end-of-stream here is a
    /// clean close, exactly like `read_frame` returning `Ok(None)`.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Tries to take one frame off the front of the buffer. `eof` says the
    /// stream has ended: buffered bytes that cannot complete a frame then
    /// become the blocking reader's truncation error instead of `NeedMore`.
    pub fn next(&mut self, max_payload_len: usize, eof: bool) -> FrameStep {
        // An oversize declared length is refused from the 4-byte header
        // alone — the body may never even be sent.
        let decidable = match self.buf.get(..4) {
            Some(header) => {
                let mut len = [0u8; 4];
                len.copy_from_slice(header);
                let payload_len = u32::from_le_bytes(len) as usize;
                payload_len > max_payload_len
                    || self.buf.len() >= payload_len.saturating_add(FRAME_OVERHEAD)
            }
            None => false,
        };
        let torn_tail = eof && !self.buf.is_empty();
        if !decidable && !torn_tail {
            return FrameStep::NeedMore;
        }
        // Either a whole frame (or a refusable header) is buffered, or the
        // stream ended mid-frame. Running the blocking `read_frame` over
        // the buffered bytes reproduces its behavior bit for bit — torn
        // tails, checksum mismatches, and the oversize guard included.
        let mut cursor: &[u8] = &self.buf;
        let before = cursor.len();
        match read_frame(&mut cursor, max_payload_len) {
            Ok(Some(payload)) => {
                let consumed = before - cursor.len();
                self.buf.drain(..consumed);
                let wire_len = (payload.len() + FRAME_OVERHEAD) as u64;
                match decode_frame(&payload) {
                    Ok(frame) => FrameStep::Frame { frame, wire_len },
                    Err(e) => FrameStep::Malformed(e),
                }
            }
            // Unreachable (`decidable || eof` guarantees a non-empty
            // buffer), but a clean "nothing" is the honest mapping.
            Ok(None) => FrameStep::NeedMore,
            Err(e) => FrameStep::Malformed(e),
        }
    }
}

/// One queued outbound frame.
#[derive(Debug)]
struct Outbound {
    bytes: Vec<u8>,
    /// Feeds the frames-out/bytes-out counters when fully written (query
    /// responses do; `Stats` answers and control frames never do).
    counted: bool,
    /// Releases one in-flight slot when fully written — the event-loop
    /// equivalent of the blocking writer releasing a permit after
    /// `write_all`. True for every answer to a client request.
    releases_slot: bool,
}

/// One frame's completion report from [`WriteQueue::flush`].
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Flushed {
    /// On-the-wire size of the completed frame.
    pub len: usize,
    /// The frame feeds the traffic counters.
    pub counted: bool,
    /// The frame releases an in-flight slot.
    pub releases_slot: bool,
}

/// Partial-write buffer: whole response frames in, as-many-bytes-as-fit
/// out. Frames leave in FIFO order and never interleave — a frame's bytes
/// are contiguous on the wire no matter how many short writes it takes.
#[derive(Debug, Default)]
pub(crate) struct WriteQueue {
    queue: VecDeque<Outbound>,
    /// How much of the front frame has already been written.
    offset: usize,
}

impl WriteQueue {
    /// Enqueues one pre-framed message.
    pub fn push(&mut self, bytes: Vec<u8>, counted: bool, releases_slot: bool) {
        self.queue.push_back(Outbound {
            bytes,
            counted,
            releases_slot,
        });
    }

    /// `true` when every queued byte has been written.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Writes as much as `out` accepts without blocking. Returns the
    /// frames that *completed* this call, or `Err(())` when the sink is
    /// dead (the connection should be dropped; remaining frames are
    /// undeliverable). A `WouldBlock` stops cleanly — the caller keeps
    /// write interest and retries on the next readiness.
    pub fn flush(&mut self, out: &mut impl Write) -> Result<Vec<Flushed>, ()> {
        let mut completed = Vec::new();
        loop {
            let remaining = match self.queue.front() {
                Some(front) => front.bytes.len() - self.offset,
                None => return Ok(completed),
            };
            if remaining == 0 {
                // Degenerate empty frame: complete it without a write.
                if let Some(front) = self.queue.pop_front() {
                    completed.push(Flushed {
                        len: front.bytes.len(),
                        counted: front.counted,
                        releases_slot: front.releases_slot,
                    });
                }
                self.offset = 0;
                continue;
            }
            let chunk = self
                .queue
                .front()
                .and_then(|front| front.bytes.get(self.offset..))
                .unwrap_or_default();
            match out.write(chunk) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    self.offset += n;
                    let done = self
                        .queue
                        .front()
                        .is_some_and(|front| self.offset == front.bytes.len());
                    if done {
                        if let Some(front) = self.queue.pop_front() {
                            completed.push(Flushed {
                                len: front.bytes.len(),
                                counted: front.counted,
                                releases_slot: front.releases_slot,
                            });
                        }
                        self.offset = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(completed),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Err(()),
            }
        }
    }
}

/// Where a connection is in its life. The event loop drives each
/// connection `Handshake → Serving → Draining → closed`; error paths jump
/// straight to `Draining` with a fatal frame queued behind the in-flight
/// answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Waiting for the client's `Hello`; nothing has been promised yet.
    Handshake,
    /// Hello acknowledged: requests dispatch, responses flow.
    Serving,
    /// No more reads. In-flight answers finish and flush; then the final
    /// frame (fatal error, or `Goodbye` on server shutdown) goes out and
    /// the socket closes.
    Draining,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::frame_bytes;

    fn hello() -> Vec<u8> {
        frame_bytes(&Frame::Goodbye)
    }

    /// Feeding a valid frame whole or byte-at-a-time yields the same
    /// decoded frame and wire length.
    #[test]
    fn byte_at_a_time_parses_identically_to_whole_delivery() {
        let bytes = hello();
        let mut whole = FrameReader::default();
        whole.extend(&bytes);
        let FrameStep::Frame {
            frame: expect,
            wire_len: expect_len,
        } = whole.next(1 << 20, false)
        else {
            panic!("whole delivery parses");
        };

        let mut dribble = FrameReader::default();
        for (i, b) in bytes.iter().enumerate() {
            dribble.extend(std::slice::from_ref(b));
            let step = dribble.next(1 << 20, false);
            if i + 1 < bytes.len() {
                assert!(
                    matches!(step, FrameStep::NeedMore),
                    "byte {i}: a partial frame must wait, got {step:?}"
                );
            } else {
                let FrameStep::Frame { frame, wire_len } = step else {
                    panic!("final byte completes the frame, got {step:?}");
                };
                assert_eq!(format!("{frame:?}"), format!("{expect:?}"));
                assert_eq!(wire_len, expect_len);
                assert_eq!(wire_len as usize, bytes.len());
            }
        }
        assert!(dribble.is_empty(), "the frame was consumed exactly");
    }

    /// Every split point of a multi-frame stream — inside the length
    /// header, the payload, and the checksum trailer — parses to the same
    /// frame sequence.
    #[test]
    fn every_split_point_yields_the_same_frames() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&frame_bytes(&Frame::StatsRequest { id: 7 }));
        stream.extend_from_slice(&frame_bytes(&Frame::Goodbye));
        for cut in 0..=stream.len() {
            let mut reader = FrameReader::default();
            reader.extend(&stream[..cut]);
            let mut got = Vec::new();
            while let FrameStep::Frame { frame, .. } = reader.next(1 << 20, false) {
                got.push(format!("{frame:?}"));
            }
            reader.extend(&stream[cut..]);
            while let FrameStep::Frame { frame, .. } = reader.next(1 << 20, false) {
                got.push(format!("{frame:?}"));
            }
            assert_eq!(
                got,
                vec![
                    format!("{:?}", Frame::StatsRequest { id: 7 }),
                    format!("{:?}", Frame::Goodbye)
                ],
                "split at byte {cut}"
            );
            assert!(reader.is_empty());
        }
    }

    /// An oversize declared length is refused from the header alone — the
    /// body never needs to arrive (the blocking reader's over-allocation
    /// guard, preserved).
    #[test]
    fn oversize_headers_are_refused_before_the_body_arrives() {
        let mut reader = FrameReader::default();
        reader.extend(&(u32::MAX).to_le_bytes());
        match reader.next(1024, false) {
            FrameStep::Malformed(StoreError::Corrupt { detail }) => {
                assert!(detail.contains("exceeds"), "{detail}");
            }
            other => panic!("expected the oversize refusal, got {other:?}"),
        }
    }

    /// A stream ending mid-frame is the blocking reader's truncation
    /// error; ending between frames is a clean nothing.
    #[test]
    fn torn_tails_error_and_clean_boundaries_do_not() {
        let bytes = hello();
        for cut in 1..bytes.len() {
            let mut reader = FrameReader::default();
            reader.extend(&bytes[..cut]);
            assert!(
                matches!(reader.next(1 << 20, false), FrameStep::NeedMore),
                "cut {cut}: still open means wait"
            );
            match reader.next(1 << 20, true) {
                FrameStep::Malformed(StoreError::Truncated { .. }) => {}
                other => panic!("cut {cut}: EOF mid-frame must be Truncated, got {other:?}"),
            }
        }
        let mut reader = FrameReader::default();
        assert!(matches!(reader.next(1 << 20, true), FrameStep::NeedMore));
        assert!(reader.is_empty(), "EOF at a boundary is clean");
    }

    /// A flipped payload byte fails the checksum; a bogus kind byte fails
    /// decoding — both as `Malformed`, exactly like the blocking path.
    #[test]
    fn corruption_is_malformed_not_a_frame() {
        let mut bytes = hello();
        bytes[4] ^= 0xFF;
        let mut reader = FrameReader::default();
        reader.extend(&bytes);
        match reader.next(1 << 20, false) {
            FrameStep::Malformed(StoreError::ChecksumMismatch) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }

        // A correctly-checksummed frame whose payload is an unknown kind.
        let payload = [0xEEu8];
        let mut framed = Vec::new();
        ustr_store::write_frame(&mut framed, &payload).unwrap();
        let mut reader = FrameReader::default();
        reader.extend(&framed);
        assert!(matches!(
            reader.next(1 << 20, false),
            FrameStep::Malformed(_)
        ));
    }

    /// The write queue completes frames in order across arbitrarily short
    /// writes and reports each exactly once.
    #[test]
    fn write_queue_survives_one_byte_writes() {
        /// A sink that accepts one byte per call.
        struct Dribble(Vec<u8>);
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                match buf.first() {
                    Some(&b) => {
                        self.0.push(b);
                        Ok(1)
                    }
                    None => Ok(0),
                }
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let first = frame_bytes(&Frame::StatsRequest { id: 1 });
        let second = frame_bytes(&Frame::Goodbye);
        let mut wq = WriteQueue::default();
        wq.push(first.clone(), true, true);
        wq.push(second.clone(), false, false);

        let mut sink = Dribble(Vec::new());
        let completions = wq.flush(&mut sink).expect("dribble sink never dies");
        assert!(wq.is_empty());
        assert_eq!(
            completions,
            vec![
                Flushed {
                    len: first.len(),
                    counted: true,
                    releases_slot: true
                },
                Flushed {
                    len: second.len(),
                    counted: false,
                    releases_slot: false
                },
            ]
        );
        let mut expected = first;
        expected.extend_from_slice(&second);
        assert_eq!(sink.0, expected, "frames never interleave or reorder");
    }

    /// `WouldBlock` mid-frame parks the queue; the retry resumes at the
    /// exact byte offset.
    #[test]
    fn write_queue_resumes_after_would_block() {
        /// Accepts `budget` bytes, then `WouldBlock`s forever.
        struct Stall {
            budget: usize,
            got: Vec<u8>,
        }
        impl Write for Stall {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.budget == 0 {
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                let n = buf.len().min(self.budget);
                self.budget -= n;
                self.got.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let frame = frame_bytes(&Frame::Goodbye);
        let mut wq = WriteQueue::default();
        wq.push(frame.clone(), true, true);
        let mut sink = Stall {
            budget: 5,
            got: Vec::new(),
        };
        assert_eq!(wq.flush(&mut sink).unwrap(), vec![]);
        assert!(!wq.is_empty(), "the frame is parked, not lost");
        sink.budget = usize::MAX;
        let completions = wq.flush(&mut sink).unwrap();
        assert_eq!(completions.len(), 1);
        assert_eq!(sink.got, frame, "resumed at the exact offset");
        assert!(wq.is_empty());
    }

    /// A dead sink reports `Err` so the loop can drop the connection.
    #[test]
    fn write_queue_reports_a_dead_sink() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::ErrorKind::BrokenPipe.into())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut wq = WriteQueue::default();
        wq.push(frame_bytes(&Frame::Goodbye), false, false);
        assert!(wq.flush(&mut Dead).is_err());
    }
}
