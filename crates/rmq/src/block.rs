//! O(n)-word hybrid RMQ with word-parallel in-block queries.
//!
//! Elements are grouped into blocks of 64. Within a block, a monotone-stack
//! bitmask per element answers any in-block query with one `AND` and one
//! count-trailing-zeros — the standard word-parallel alternative to
//! Fischer–Heun block decoding. Across blocks, a [`SparseTable`] over
//! per-block champions answers the middle part in O(1).

use crate::{sparse::SparseTable, Direction, Rmq};

const BLOCK: usize = 64;

/// Hybrid block RMQ: O(1) query, ~(n·8 bytes masks + n/64 table) space.
///
/// ```
/// use ustr_rmq::{BlockRmq, Direction, Rmq};
/// let values: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64).collect();
/// let rmq = BlockRmq::new(&values, Direction::Max);
/// let best = rmq.query(10, 190);
/// assert!((10..=190).all(|i| values[i] <= values[best]));
/// ```
#[derive(Debug, Clone)]
pub struct BlockRmq {
    values: Vec<f64>,
    /// `masks[i]`: bit `j` set iff in-block offset `j <= i % 64` is a
    /// "visible extremum" for queries ending at `i` (monotone stack state).
    masks: Vec<u64>,
    /// Champion (extreme) index of each full or partial block.
    champions: Vec<u32>,
    /// Sparse table over champion values, indexed by block number.
    block_table: Option<SparseTable>,
    direction: Direction,
}

impl BlockRmq {
    /// Builds the structure over `values`.
    pub fn new(values: &[f64], direction: Direction) -> Self {
        let n = values.len();
        let mut masks = vec![0u64; n];
        let num_blocks = n.div_ceil(BLOCK);
        let mut champions = Vec::with_capacity(num_blocks);
        let mut champion_values = Vec::with_capacity(num_blocks);
        let mut stack: Vec<usize> = Vec::with_capacity(BLOCK);

        for b in 0..num_blocks {
            let start = b * BLOCK;
            let end = (start + BLOCK).min(n);
            stack.clear();
            let mut mask = 0u64;
            for i in start..end {
                // Pop strictly-worse entries so equal values survive and the
                // leftmost one wins ties.
                while let Some(&top) = stack.last() {
                    if direction.beats(values[i], values[top]) {
                        mask &= !(1u64 << (top - start));
                        stack.pop();
                    } else {
                        break;
                    }
                }
                stack.push(i);
                mask |= 1u64 << (i - start);
                masks[i] = mask;
            }
            // The bottom of the stack is the block champion (leftmost extreme).
            let champ = stack[0];
            champions.push(champ as u32);
            champion_values.push(values[champ]);
        }

        let block_table = if num_blocks > 0 {
            Some(SparseTable::new(&champion_values, direction))
        } else {
            None
        };

        Self {
            values: values.to_vec(),
            masks,
            champions,
            block_table,
            direction,
        }
    }

    /// The direction (max or min) this structure answers.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The value stored at `index`.
    #[inline]
    pub fn value(&self, index: usize) -> f64 {
        self.values[index]
    }

    /// In-block query: both endpoints must lie in the same block.
    #[inline]
    fn query_in_block(&self, l: usize, r: usize) -> usize {
        let block_start = r - (r % BLOCK);
        debug_assert!(l >= block_start);
        let m = self.masks[r] & (!0u64 << (l - block_start));
        debug_assert!(m != 0, "mask always contains r itself");
        block_start + m.trailing_zeros() as usize
    }
}

impl Rmq for BlockRmq {
    fn len(&self) -> usize {
        self.values.len()
    }

    fn query(&self, l: usize, r: usize) -> usize {
        assert!(l <= r, "invalid range: l={l} > r={r}");
        assert!(r < self.values.len(), "range end {r} out of bounds");
        let bl = l / BLOCK;
        let br = r / BLOCK;
        if bl == br {
            return self.query_in_block(l, r);
        }
        // Left partial block [l .. end of bl], right partial [start of br .. r].
        let left_end = (bl + 1) * BLOCK - 1;
        let mut best = self.query_in_block(l, left_end);
        if bl + 1 < br {
            let table = self
                .block_table
                .as_ref()
                .expect("non-empty structure has a block table");
            let mid_block = table.query(bl + 1, br - 1);
            let mid = self.champions[mid_block] as usize;
            if self.direction.beats(self.values[mid], self.values[best]) {
                best = mid;
            }
        }
        let right = self.query_in_block(br * BLOCK, r);
        if self.direction.beats(self.values[right], self.values[best]) {
            best = right;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_extreme;

    fn values(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 97) as f64
            })
            .collect()
    }

    #[test]
    fn single_block_matches_scan() {
        let v = values(50, 7);
        let rmq = BlockRmq::new(&v, Direction::Max);
        for l in 0..v.len() {
            for r in l..v.len() {
                assert_eq!(rmq.query(l, r), scan_extreme(&v, l, r, Direction::Max));
            }
        }
    }

    #[test]
    fn multi_block_matches_scan_max() {
        let v = values(300, 11);
        let rmq = BlockRmq::new(&v, Direction::Max);
        for l in (0..v.len()).step_by(3) {
            for r in (l..v.len()).step_by(5) {
                assert_eq!(
                    rmq.query(l, r),
                    scan_extreme(&v, l, r, Direction::Max),
                    "range [{l},{r}]"
                );
            }
        }
    }

    #[test]
    fn multi_block_matches_scan_min() {
        let v = values(300, 13);
        let rmq = BlockRmq::new(&v, Direction::Min);
        for l in (0..v.len()).step_by(3) {
            for r in (l..v.len()).step_by(5) {
                assert_eq!(rmq.query(l, r), scan_extreme(&v, l, r, Direction::Min));
            }
        }
    }

    #[test]
    fn exact_block_boundary_sizes() {
        for n in [63, 64, 65, 127, 128, 129, 192] {
            let v = values(n, n as u64);
            let rmq = BlockRmq::new(&v, Direction::Max);
            assert_eq!(
                rmq.query(0, n - 1),
                scan_extreme(&v, 0, n - 1, Direction::Max)
            );
            assert_eq!(rmq.len(), n);
        }
    }

    #[test]
    fn ties_resolve_leftmost_within_and_across_blocks() {
        let mut v = vec![0.0; 200];
        v[30] = 9.0;
        v[130] = 9.0;
        let rmq = BlockRmq::new(&v, Direction::Max);
        assert_eq!(rmq.query(0, 199), 30);
        assert_eq!(rmq.query(31, 199), 130);
        // Ties inside one block.
        let v = vec![5.0, 5.0, 5.0];
        let rmq = BlockRmq::new(&v, Direction::Max);
        assert_eq!(rmq.query(0, 2), 0);
        assert_eq!(rmq.query(1, 2), 1);
    }

    #[test]
    fn neg_infinity_sentinels_never_win() {
        let mut v = vec![f64::NEG_INFINITY; 100];
        v[77] = -1.0;
        let rmq = BlockRmq::new(&v, Direction::Max);
        assert_eq!(rmq.query(0, 99), 77);
    }
}
