//! Accessor-based RMQ that lets the caller discard the value array.
//!
//! The paper builds `RMQ_i` over each per-length probability array `C_i` and
//! then *discards* `C_i`, re-deriving probabilities from the cumulative array
//! `C` during queries. [`SampledRmq`] mirrors that: it stores only per-block
//! champion indices plus a sparse table over champion values; partial blocks
//! are rescanned through a caller-supplied accessor (each probe is O(1) via
//! `C`), keeping queries O(block size) = O(1) for a fixed block size.

use crate::{sparse::SparseTable, Direction, Rmq};

/// Sampled hybrid RMQ over values provided by an accessor closure.
///
/// Space: `n / block_size` champion indices (u32) + a sparse table over the
/// same count of f64 champions — for the default block size of 64 this is
/// roughly `n/8` bytes, far below materialising `n` f64 values per level.
///
/// ```
/// use ustr_rmq::{Direction, SampledRmq};
/// let values: Vec<f64> = (0..500).map(|i| ((i * 13) % 83) as f64).collect();
/// let at = |i: usize| values[i];
/// let rmq = SampledRmq::new(values.len(), Direction::Max, &at);
/// let best = rmq.query_with(120, 480, &at);
/// assert!((120..=480).all(|i| values[i] <= values[best]));
/// ```
#[derive(Debug, Clone)]
pub struct SampledRmq {
    len: usize,
    block_size: usize,
    champions: Vec<u32>,
    block_table: Option<SparseTable>,
    direction: Direction,
}

impl SampledRmq {
    /// Default block size: balances the per-query rescan (≤ 2 partial blocks)
    /// against stored-champion space.
    pub const DEFAULT_BLOCK: usize = 64;

    /// Builds over `len` virtual elements whose values come from `accessor`.
    pub fn new(len: usize, direction: Direction, accessor: &dyn Fn(usize) -> f64) -> Self {
        Self::with_block_size(len, Self::DEFAULT_BLOCK, direction, accessor)
    }

    /// Builds with an explicit block size (must be ≥ 1).
    pub fn with_block_size(
        len: usize,
        block_size: usize,
        direction: Direction,
        accessor: &dyn Fn(usize) -> f64,
    ) -> Self {
        assert!(block_size >= 1, "block size must be at least 1");
        let num_blocks = len.div_ceil(block_size);
        let mut champions = Vec::with_capacity(num_blocks);
        let mut champion_values = Vec::with_capacity(num_blocks);
        for b in 0..num_blocks {
            let start = b * block_size;
            let end = (start + block_size).min(len);
            let mut best = start;
            let mut best_val = accessor(start);
            for i in start + 1..end {
                let v = accessor(i);
                if direction.beats(v, best_val) {
                    best = i;
                    best_val = v;
                }
            }
            champions.push(best as u32);
            champion_values.push(best_val);
        }
        let block_table = if num_blocks > 0 {
            Some(SparseTable::new(&champion_values, direction))
        } else {
            None
        };
        Self {
            len,
            block_size,
            champions,
            block_table,
            direction,
        }
    }

    /// Reassembles a structure from its persistent parts: the element count,
    /// block size, direction, and per-block champion indices previously read
    /// from [`SampledRmq::champions`]. Champion *values* are re-derived
    /// through `accessor` (exactly as queries re-derive partial-block
    /// values), so only the `u32` indices need to be stored.
    ///
    /// Fails when the parts are structurally inconsistent: wrong champion
    /// count for `(len, block_size)`, or a champion outside its block.
    pub fn from_parts(
        len: usize,
        block_size: usize,
        direction: Direction,
        champions: Vec<u32>,
        accessor: &dyn Fn(usize) -> f64,
    ) -> Result<Self, &'static str> {
        if block_size < 1 {
            return Err("block size must be at least 1");
        }
        let num_blocks = len.div_ceil(block_size);
        if champions.len() != num_blocks {
            return Err("champion count does not match len / block_size");
        }
        let mut champion_values = Vec::with_capacity(num_blocks);
        for (b, &c) in champions.iter().enumerate() {
            let start = b * block_size;
            let end = (start + block_size).min(len);
            let c = c as usize;
            if c < start || c >= end {
                return Err("champion index outside its block");
            }
            champion_values.push(accessor(c));
        }
        let block_table = if num_blocks > 0 {
            Some(SparseTable::new(&champion_values, direction))
        } else {
            None
        };
        Ok(Self {
            len,
            block_size,
            champions,
            block_table,
            direction,
        })
    }

    /// Number of virtual elements covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// The block size champions are sampled at.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Per-block champion indices (the persistent representation; see
    /// [`SampledRmq::from_parts`]).
    pub fn champions(&self) -> &[u32] {
        &self.champions
    }

    /// Returns `true` when no elements are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The direction (max or min) this structure answers.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Approximate heap footprint in bytes (for the space experiments).
    pub fn heap_size(&self) -> usize {
        let champions = self.champions.capacity() * std::mem::size_of::<u32>();
        let table = self.block_table.as_ref().map_or(0, |t| {
            // values + one u32 row per level
            let n = t.len();
            n * std::mem::size_of::<f64>()
                + if n <= 1 {
                    0
                } else {
                    (n.ilog2() as usize) * n * std::mem::size_of::<u32>()
                }
        });
        champions + table
    }

    fn scan(
        &self,
        l: usize,
        r: usize,
        accessor: &dyn Fn(usize) -> f64,
        mut best: Option<(usize, f64)>,
    ) -> Option<(usize, f64)> {
        for i in l..=r {
            let v = accessor(i);
            match best {
                Some((_, bv)) if !self.direction.beats(v, bv) => {}
                _ => best = Some((i, v)),
            }
        }
        best
    }

    /// Index of the extreme value within `[l, r]`, re-reading partial blocks
    /// through `accessor`. The accessor must be consistent with the one used
    /// at construction time.
    ///
    /// # Panics
    ///
    /// Panics if `l > r` or `r >= self.len()`.
    pub fn query_with(&self, l: usize, r: usize, accessor: &dyn Fn(usize) -> f64) -> usize {
        assert!(l <= r, "invalid range: l={l} > r={r}");
        assert!(
            r < self.len,
            "range end {r} out of bounds (len {})",
            self.len
        );
        let bl = l / self.block_size;
        let br = r / self.block_size;
        if bl == br {
            return self.scan(l, r, accessor, None).expect("non-empty range").0;
        }
        let left_end = (bl + 1) * self.block_size - 1;
        let mut best = self.scan(l, left_end, accessor, None);
        if bl + 1 < br {
            let table = self
                .block_table
                .as_ref()
                .expect("non-empty structure has a block table");
            let mid_block = table.query(bl + 1, br - 1);
            let mid = self.champions[mid_block] as usize;
            let mid_val = table.value(mid_block);
            match best {
                Some((_, bv)) if !self.direction.beats(mid_val, bv) => {}
                _ => best = Some((mid, mid_val)),
            }
        }
        best = self.scan(br * self.block_size, r, accessor, best);
        best.expect("non-empty range").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_extreme;

    fn values(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 89) as f64
            })
            .collect()
    }

    #[test]
    fn matches_scan_for_various_block_sizes() {
        let v = values(211, 3);
        let at = |i: usize| v[i];
        for bs in [1, 2, 7, 64, 300] {
            let rmq = SampledRmq::with_block_size(v.len(), bs, Direction::Max, &at);
            for l in (0..v.len()).step_by(4) {
                for r in (l..v.len()).step_by(6) {
                    assert_eq!(
                        rmq.query_with(l, r, &at),
                        scan_extreme(&v, l, r, Direction::Max),
                        "bs={bs} range=[{l},{r}]"
                    );
                }
            }
        }
    }

    #[test]
    fn min_direction_works() {
        let v = values(130, 5);
        let at = |i: usize| v[i];
        let rmq = SampledRmq::new(v.len(), Direction::Min, &at);
        for l in 0..v.len() {
            let r = v.len() - 1;
            assert_eq!(
                rmq.query_with(l, r, &at),
                scan_extreme(&v, l, r, Direction::Min)
            );
        }
    }

    #[test]
    fn leftmost_tie_break() {
        let v = [3.0, 7.0, 7.0, 7.0, 3.0, 7.0];
        let at = |i: usize| v[i];
        let rmq = SampledRmq::with_block_size(v.len(), 2, Direction::Max, &at);
        assert_eq!(rmq.query_with(0, 5, &at), 1);
        assert_eq!(rmq.query_with(2, 5, &at), 2);
    }

    #[test]
    fn empty_structure_is_ok() {
        let at = |_: usize| 0.0;
        let rmq = SampledRmq::new(0, Direction::Max, &at);
        assert!(rmq.is_empty());
        assert_eq!(rmq.heap_size(), 0);
    }

    #[test]
    fn parts_round_trip_preserves_queries() {
        let v = values(333, 13);
        let at = |i: usize| v[i];
        for bs in [1usize, 7, 64] {
            let original = SampledRmq::with_block_size(v.len(), bs, Direction::Max, &at);
            let restored = SampledRmq::from_parts(
                original.len(),
                original.block_size(),
                original.direction(),
                original.champions().to_vec(),
                &at,
            )
            .unwrap();
            for l in (0..v.len()).step_by(5) {
                for r in (l..v.len()).step_by(9) {
                    assert_eq!(
                        original.query_with(l, r, &at),
                        restored.query_with(l, r, &at),
                        "bs={bs} range=[{l},{r}]"
                    );
                }
            }
        }
    }

    #[test]
    fn from_parts_rejects_inconsistent_input() {
        let v = values(100, 17);
        let at = |i: usize| v[i];
        let rmq = SampledRmq::with_block_size(v.len(), 8, Direction::Max, &at);
        // Wrong champion count.
        assert!(SampledRmq::from_parts(v.len(), 8, Direction::Max, vec![0; 3], &at).is_err());
        // Champion outside its block.
        let mut bad = rmq.champions().to_vec();
        bad[0] = 99;
        assert!(SampledRmq::from_parts(v.len(), 8, Direction::Max, bad, &at).is_err());
        // Zero block size.
        assert!(SampledRmq::from_parts(v.len(), 0, Direction::Max, vec![], &at).is_err());
    }

    #[test]
    fn heap_size_is_sublinear_in_values() {
        let v = values(64 * 100, 9);
        let at = |i: usize| v[i];
        let rmq = SampledRmq::new(v.len(), Direction::Max, &at);
        let full = v.len() * std::mem::size_of::<f64>();
        assert!(
            rmq.heap_size() < full / 2,
            "sampled structure should be small"
        );
    }
}
