//! Range maximum/minimum query (RMQ) substrate for uncertain-string indexing.
//!
//! The indexes of Thankachan et al. (EDBT 2016) retrieve occurrences in
//! decreasing probability order by iterating *range maximum queries* over
//! per-pattern-length probability arrays (the paper's Lemma 1 cites the
//! Fischer–Heun 2n+o(n)-bit structure). This crate provides the practical
//! equivalents used throughout the workspace:
//!
//! * [`SparseTable`] — classic O(n log n)-word, O(1)-query table; used for
//!   LCP/LCA queries and as the top level of the hybrid structures.
//! * [`BlockRmq`] — O(n)-word hybrid with word-parallel in-block queries
//!   (one `u64` "visible extrema" mask per element) and a sparse table over
//!   per-block extrema. O(1) query with small constants.
//! * [`SampledRmq`] — accessor-based hybrid that stores only per-block
//!   champion indices (the underlying value array can be *discarded*, exactly
//!   as the paper discards the `C_i` arrays after building `RMQ_i`); partial
//!   blocks are rescanned through the accessor.
//! * [`FischerHeunRmq`] — the succinct design Lemma 1 actually cites:
//!   16-bit Cartesian-tree signatures per 8-element block with shared
//!   in-block answer tables; ~2.5 bytes/element, O(1) queries, values
//!   consulted only for the final candidate comparison.
//! * [`ThresholdReporter`] — the recursive "report everything above τ in
//!   decreasing order" driver shared by every index (Algorithm 2/4 in the
//!   paper).
//!
//! All structures are parameterised over a [`Direction`] (maximum or
//! minimum) and break ties toward the *leftmost* index, which the reporting
//! recursion relies on for determinism.

#![forbid(unsafe_code)]

mod block;
mod fischer_heun;
mod reporter;
mod sampled;
mod sparse;

pub use block::BlockRmq;
pub use fischer_heun::FischerHeunRmq;
pub use reporter::{report_above, ThresholdReporter};
pub use sampled::SampledRmq;
pub use sparse::SparseTable;

/// Whether a structure answers range-maximum or range-minimum queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Range maximum: `query` returns the index of the largest value.
    Max,
    /// Range minimum: `query` returns the index of the smallest value.
    Min,
}

impl Direction {
    /// Returns `true` when `candidate` should replace `incumbent` under this
    /// direction. Strict comparison, so earlier (leftmost) indices win ties.
    #[inline]
    pub fn beats(self, candidate: f64, incumbent: f64) -> bool {
        match self {
            Direction::Max => candidate > incumbent,
            Direction::Min => candidate < incumbent,
        }
    }

    /// The identity element for this direction (`-inf` for max, `+inf` for
    /// min), i.e. a value every real input beats.
    #[inline]
    pub fn identity(self) -> f64 {
        match self {
            Direction::Max => f64::NEG_INFINITY,
            Direction::Min => f64::INFINITY,
        }
    }
}

/// Common interface implemented by every RMQ structure in this crate that
/// materialises its own values.
pub trait Rmq {
    /// Number of elements covered by the structure.
    fn len(&self) -> usize;

    /// Returns `true` when the structure covers no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of the extreme value within the inclusive range `[l, r]`.
    ///
    /// # Panics
    ///
    /// Panics if `l > r` or `r >= self.len()`.
    fn query(&self, l: usize, r: usize) -> usize;
}

#[cfg(test)]
pub(crate) fn scan_extreme(values: &[f64], l: usize, r: usize, dir: Direction) -> usize {
    let mut best = l;
    for i in l + 1..=r {
        if dir.beats(values[i], values[best]) {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_beats_is_strict() {
        assert!(Direction::Max.beats(2.0, 1.0));
        assert!(!Direction::Max.beats(1.0, 1.0));
        assert!(Direction::Min.beats(1.0, 2.0));
        assert!(!Direction::Min.beats(2.0, 2.0));
    }

    #[test]
    fn direction_identity_loses_to_everything() {
        assert!(Direction::Max.beats(-1e300, Direction::Max.identity()));
        assert!(Direction::Min.beats(1e300, Direction::Min.identity()));
    }
}
