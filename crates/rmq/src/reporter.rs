//! Threshold-driven RMQ reporting: the query driver of Algorithms 2 and 4.
//!
//! Given a range-extreme oracle and a per-index value accessor, repeatedly
//! pop the extreme element of the current range; if it passes the threshold,
//! report it and recurse into both halves, otherwise prune the whole range.
//! Each report costs O(1) oracle queries, so total work is O(1 + occ) —
//! exactly the paper's recursion (`RecursiveRmq`).

use crate::Direction;

/// Iterator yielding `(index, value)` pairs for every element in the initial
/// range whose value passes the threshold, extreme-first within each subrange.
///
/// For [`Direction::Max`] an element passes when `value >= threshold`;
/// for [`Direction::Min`] when `value <= threshold`.
///
/// ```
/// use ustr_rmq::{Direction, ThresholdReporter};
/// let v = [0.1, 0.9, 0.3, 0.8, 0.05];
/// let hits: Vec<usize> = ThresholdReporter::new(
///     0,
///     v.len() - 1,
///     0.3,
///     Direction::Max,
///     |l, r| (l..=r).max_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap()).unwrap(),
///     |i| v[i],
/// )
/// .map(|(i, _)| i)
/// .collect();
/// assert_eq!(hits.first(), Some(&1)); // global max comes first
/// let mut sorted = hits.clone();
/// sorted.sort();
/// assert_eq!(sorted, vec![1, 2, 3]);
/// ```
pub struct ThresholdReporter<Q, V>
where
    Q: FnMut(usize, usize) -> usize,
    V: FnMut(usize) -> f64,
{
    stack: Vec<(usize, usize)>,
    threshold: f64,
    direction: Direction,
    query: Q,
    value: V,
}

impl<Q, V> ThresholdReporter<Q, V>
where
    Q: FnMut(usize, usize) -> usize,
    V: FnMut(usize) -> f64,
{
    /// Creates a reporter over the inclusive range `[l, r]`.
    ///
    /// `query(l, r)` must return the index of the extreme element in `[l, r]`
    /// (consistent with `direction`); `value(i)` returns the value used both
    /// for the threshold test and for the yielded pairs.
    pub fn new(
        l: usize,
        r: usize,
        threshold: f64,
        direction: Direction,
        query: Q,
        value: V,
    ) -> Self {
        let stack = if l <= r { vec![(l, r)] } else { Vec::new() };
        Self {
            stack,
            threshold,
            direction,
            query,
            value,
        }
    }

    #[inline]
    fn passes(&self, v: f64) -> bool {
        match self.direction {
            Direction::Max => v >= self.threshold,
            Direction::Min => v <= self.threshold,
        }
    }
}

impl<Q, V> Iterator for ThresholdReporter<Q, V>
where
    Q: FnMut(usize, usize) -> usize,
    V: FnMut(usize) -> f64,
{
    type Item = (usize, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((l, r)) = self.stack.pop() {
            let m = (self.query)(l, r);
            debug_assert!((l..=r).contains(&m), "oracle returned index outside range");
            let v = (self.value)(m);
            if self.passes(v) {
                if m > l {
                    self.stack.push((l, m - 1));
                }
                if m < r {
                    self.stack.push((m + 1, r));
                }
                return Some((m, v));
            }
            // Extreme fails the threshold: the entire range is pruned.
        }
        None
    }
}

/// Convenience wrapper collecting all passing `(index, value)` pairs.
pub fn report_above<Q, V>(
    l: usize,
    r: usize,
    threshold: f64,
    direction: Direction,
    query: Q,
    value: V,
) -> Vec<(usize, f64)>
where
    Q: FnMut(usize, usize) -> usize,
    V: FnMut(usize) -> f64,
{
    ThresholdReporter::new(l, r, threshold, direction, query, value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockRmq, Rmq};

    fn max_oracle(v: &[f64]) -> impl FnMut(usize, usize) -> usize + '_ {
        move |l, r| {
            let mut best = l;
            for i in l + 1..=r {
                if v[i] > v[best] {
                    best = i;
                }
            }
            best
        }
    }

    #[test]
    fn reports_exactly_the_passing_set() {
        let v = [0.5, 0.1, 0.7, 0.2, 0.9, 0.4, 0.6];
        let mut got: Vec<usize> = report_above(0, 6, 0.5, Direction::Max, max_oracle(&v), |i| v[i])
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 2, 4, 6]);
    }

    #[test]
    fn first_report_is_the_global_extreme() {
        let v = [0.5, 0.1, 0.7, 0.2, 0.9, 0.4, 0.6];
        let first = ThresholdReporter::new(0, 6, 0.0, Direction::Max, max_oracle(&v), |i| v[i])
            .next()
            .unwrap();
        assert_eq!(first, (4, 0.9));
    }

    #[test]
    fn nothing_passes_high_threshold() {
        let v = [0.5, 0.1, 0.7];
        let got = report_above(0, 2, 0.71, Direction::Max, max_oracle(&v), |i| v[i]);
        assert!(got.is_empty());
    }

    #[test]
    fn min_direction_reports_below_threshold() {
        let v = [5.0, 1.0, 3.0, 0.5, 9.0];
        let oracle = |l: usize, r: usize| {
            let mut best = l;
            for i in l + 1..=r {
                if v[i] < v[best] {
                    best = i;
                }
            }
            best
        };
        let mut got: Vec<usize> = report_above(0, 4, 3.0, Direction::Min, oracle, |i| v[i])
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn empty_range_yields_nothing() {
        let v = [1.0];
        let got = report_above(1, 0, 0.0, Direction::Max, max_oracle(&v), |i| v[i]);
        assert!(got.is_empty());
    }

    #[test]
    fn oracle_query_count_is_linear_in_output() {
        // Count oracle calls: the recursion does at most 2·occ + 1 queries.
        let v: Vec<f64> = (0..1000).map(|i| (i % 10) as f64 / 10.0).collect();
        let rmq = BlockRmq::new(&v, Direction::Max);
        let mut calls = 0usize;
        let got = report_above(
            0,
            v.len() - 1,
            0.9,
            Direction::Max,
            |l, r| {
                calls += 1;
                rmq.query(l, r)
            },
            |i| v[i],
        );
        assert_eq!(got.len(), 100);
        assert!(
            calls <= 2 * got.len() + 1,
            "calls={calls} occ={}",
            got.len()
        );
    }

    #[test]
    fn works_with_block_rmq_backend() {
        let v: Vec<f64> = (0..500)
            .map(|i| {
                if i % 97 == 0 {
                    1.0
                } else {
                    (i % 7) as f64 / 100.0
                }
            })
            .collect();
        let rmq = BlockRmq::new(&v, Direction::Max);
        let got = report_above(
            0,
            v.len() - 1,
            0.5,
            Direction::Max,
            |l, r| rmq.query(l, r),
            |i| v[i],
        );
        let expected = (0..500).filter(|i| i % 97 == 0).count();
        assert_eq!(got.len(), expected);
    }
}
