//! Fischer–Heun style succinct RMQ (the structure the paper's Lemma 1
//! cites: Fischer & Heun 2007/2008).
//!
//! Elements are grouped into blocks of 8. Two blocks whose values induce
//! the same *Cartesian tree* answer every in-block range query with the
//! same argument position, so each block stores only a 16-bit Cartesian
//! tree *signature* (the push/pop sequence of the treap-stack simulation —
//! 2 bits per element). A shared table, keyed by signature, holds the
//! precomputed in-block answers; across blocks, a sparse table over block
//! champions finishes the query. Neither part reads the original values:
//! only the final ≤3-way candidate comparison does, through the caller's
//! accessor — so the value array itself can be discarded, which is the
//! whole point of the succinct design.
//!
//! Space: 2 bytes/element of signatures + shared tables (≤ Catalan(8) =
//! 1430 distinct signatures × 64 bytes) + n/8 champions with a block RMQ
//! over them — ≈ 4.5 bytes/element in total, roughly half of materialised
//! f64 values. Queries are O(1).

use std::collections::HashMap;

use crate::{block::BlockRmq, Direction, Rmq};

const BLOCK: usize = 8;

/// In-block answer table for one Cartesian-tree signature:
/// `table[l][r]` = argext position within the block for the range `[l, r]`.
type BlockTable = [[u8; BLOCK]; BLOCK];

/// Succinct RMQ after Fischer–Heun: O(1) queries, ~4.5 bytes/element, and
/// the value array is only consulted through an accessor at query time.
///
/// ```
/// use ustr_rmq::{Direction, FischerHeunRmq};
/// let values: Vec<f64> = (0..1000).map(|i| ((i * 31) % 97) as f64).collect();
/// let at = |i: usize| values[i];
/// let rmq = FischerHeunRmq::new(values.len(), Direction::Max, &at);
/// let best = rmq.query_with(100, 900, &at);
/// assert!((100..=900).all(|i| values[i] <= values[best]));
/// ```
pub struct FischerHeunRmq {
    len: usize,
    direction: Direction,
    /// Cartesian-tree signature per block.
    signatures: Vec<u16>,
    /// Signature → index into `tables`.
    table_of: HashMap<u16, u32>,
    tables: Vec<BlockTable>,
    /// Champion (extreme) index of each block.
    champions: Vec<u32>,
    /// Block RMQ over champion values (block level).
    block_table: Option<BlockRmq>,
}

impl FischerHeunRmq {
    /// Builds over `len` virtual elements read through `accessor`.
    pub fn new(len: usize, direction: Direction, accessor: &dyn Fn(usize) -> f64) -> Self {
        let num_blocks = len.div_ceil(BLOCK);
        let mut signatures = Vec::with_capacity(num_blocks);
        let mut table_of: HashMap<u16, u32> = HashMap::new();
        let mut tables: Vec<BlockTable> = Vec::new();
        let mut champions = Vec::with_capacity(num_blocks);
        let mut champion_values = Vec::with_capacity(num_blocks);
        let mut block_vals = [0.0f64; BLOCK];

        for b in 0..num_blocks {
            let start = b * BLOCK;
            let end = (start + BLOCK).min(len);
            let size = end - start;
            for (k, slot) in block_vals.iter_mut().enumerate().take(size) {
                *slot = accessor(start + k);
            }
            // Short final blocks are padded with the identity so that their
            // Cartesian signature stays well-defined.
            for slot in block_vals.iter_mut().take(BLOCK).skip(size) {
                *slot = direction.identity();
            }
            let sig = cartesian_signature(&block_vals, direction);
            signatures.push(sig);
            let table_idx = *table_of.entry(sig).or_insert_with(|| {
                tables.push(build_block_table(&block_vals, direction));
                (tables.len() - 1) as u32
            });
            let table = &tables[table_idx as usize];
            let champ_off = table[0][size - 1] as usize;
            champions.push((start + champ_off) as u32);
            champion_values.push(block_vals[champ_off]);
        }

        let block_table = if num_blocks > 0 {
            Some(BlockRmq::new(&champion_values, direction))
        } else {
            None
        };
        Self {
            len,
            direction,
            signatures,
            table_of,
            tables,
            champions,
            block_table,
        }
    }

    /// Number of virtual elements covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no elements are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct Cartesian-tree signatures encountered (bounded by
    /// the Catalan number C₈ = 1430).
    pub fn num_signatures(&self) -> usize {
        self.tables.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        use std::mem::size_of;
        self.signatures.capacity() * size_of::<u16>()
            + self.tables.capacity() * size_of::<BlockTable>()
            + self.table_of.len() * (size_of::<u16>() + size_of::<u32>() + 16)
            + self.champions.capacity() * size_of::<u32>()
            // BlockRmq over champions: values + masks + its own top table.
            + self.block_table.as_ref().map_or(0, |t| {
                let n = t.len();
                n * (size_of::<f64>() + size_of::<u64>())
                    + n.div_ceil(64) * (size_of::<u32>() + size_of::<f64>()) * 2
            })
    }

    #[inline]
    fn in_block(&self, block: usize, l: usize, r: usize) -> usize {
        let sig = self.signatures[block];
        let table = &self.tables[self.table_of[&sig] as usize];
        block * BLOCK + table[l][r] as usize
    }

    /// Index of the extreme value within `[l, r]`. The accessor is only used
    /// to compare the ≤3 final candidates and must be consistent with the
    /// one supplied at construction.
    ///
    /// # Panics
    ///
    /// Panics if `l > r` or `r >= self.len()`.
    pub fn query_with(&self, l: usize, r: usize, accessor: &dyn Fn(usize) -> f64) -> usize {
        assert!(l <= r, "invalid range: l={l} > r={r}");
        assert!(
            r < self.len,
            "range end {r} out of bounds (len {})",
            self.len
        );
        let bl = l / BLOCK;
        let br = r / BLOCK;
        if bl == br {
            return self.in_block(bl, l % BLOCK, r % BLOCK);
        }
        let mut best = self.in_block(bl, l % BLOCK, BLOCK - 1);
        let mut best_val = accessor(best);
        if bl + 1 < br {
            let table = self
                .block_table
                .as_ref()
                .expect("non-empty structure has a block table");
            let mid_block = table.query(bl + 1, br - 1);
            let mid = self.champions[mid_block] as usize;
            let mid_val = table.value(mid_block);
            if self.direction.beats(mid_val, best_val) {
                best = mid;
                best_val = mid_val;
            }
        }
        let right = self.in_block(br, 0, r % BLOCK);
        let right_val = accessor(right);
        if self.direction.beats(right_val, best_val) {
            best = right;
        }
        best
    }
}

/// Cartesian-tree signature of one block: simulate the rightmost-path stack
/// of an incremental Cartesian-tree build; each element contributes its pop
/// count (as 0-bits) followed by one push (1-bit). Equal signatures ⇒
/// identical argext positions for every in-block range.
fn cartesian_signature(values: &[f64; BLOCK], direction: Direction) -> u16 {
    let mut sig = 0u16;
    let mut bit = 0u32;
    let mut stack = [0usize; BLOCK];
    let mut top = 0usize; // stack length
    for (i, &v) in values.iter().enumerate() {
        while top > 0 && direction.beats(v, values[stack[top - 1]]) {
            top -= 1;
            bit += 1; // pop: 0-bit (implicit — bit position advances)
        }
        stack[top] = i;
        top += 1;
        sig |= 1 << bit; // push: 1-bit
        bit += 1;
    }
    sig
}

/// Precomputes all `l ≤ r` in-block answers for one representative block.
fn build_block_table(values: &[f64; BLOCK], direction: Direction) -> BlockTable {
    let mut table = [[0u8; BLOCK]; BLOCK];
    for (l, row) in table.iter_mut().enumerate() {
        let mut best = l;
        row[l] = l as u8;
        for r in l + 1..BLOCK {
            if direction.beats(values[r], values[best]) {
                best = r;
            }
            row[r] = best as u8;
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_extreme;

    fn values(n: usize, seed: u64, modulus: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % modulus) as f64
            })
            .collect()
    }

    #[test]
    fn matches_scan_exhaustively() {
        let v = values(200, 11, 50);
        let at = |i: usize| v[i];
        for dir in [Direction::Max, Direction::Min] {
            let rmq = FischerHeunRmq::new(v.len(), dir, &at);
            for l in 0..v.len() {
                for r in l..v.len() {
                    assert_eq!(
                        rmq.query_with(l, r, &at),
                        scan_extreme(&v, l, r, dir),
                        "dir {dir:?} range [{l},{r}]"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_heavy_values_tie_leftmost() {
        let v = values(300, 3, 4); // tiny modulus → many ties
        let at = |i: usize| v[i];
        let rmq = FischerHeunRmq::new(v.len(), Direction::Max, &at);
        for l in (0..v.len()).step_by(7) {
            for r in (l..v.len()).step_by(5) {
                assert_eq!(
                    rmq.query_with(l, r, &at),
                    scan_extreme(&v, l, r, Direction::Max)
                );
            }
        }
    }

    #[test]
    fn signature_sharing_bounds_table_count() {
        // 10K elements but at most Catalan(8) = 1430 distinct signatures.
        let v = values(10_000, 5, 1000);
        let at = |i: usize| v[i];
        let rmq = FischerHeunRmq::new(v.len(), Direction::Max, &at);
        assert!(rmq.num_signatures() <= 1430);
        assert!(rmq.num_signatures() > 1);
    }

    #[test]
    fn identical_blocks_share_one_table() {
        // A periodic array with period 8 has a single signature.
        let v: Vec<f64> = (0..160).map(|i| (i % 8) as f64).collect();
        let at = |i: usize| v[i];
        let rmq = FischerHeunRmq::new(v.len(), Direction::Max, &at);
        assert_eq!(rmq.num_signatures(), 1);
    }

    #[test]
    fn block_boundary_sizes() {
        for n in [1usize, 7, 8, 9, 15, 16, 17, 64, 65] {
            let v = values(n, n as u64, 30);
            let at = |i: usize| v[i];
            let rmq = FischerHeunRmq::new(n, Direction::Min, &at);
            assert_eq!(
                rmq.query_with(0, n - 1, &at),
                scan_extreme(&v, 0, n - 1, Direction::Min)
            );
            assert_eq!(rmq.len(), n);
        }
    }

    #[test]
    fn neg_infinity_values_are_handled() {
        let mut v = vec![f64::NEG_INFINITY; 50];
        v[23] = 1.0;
        v[37] = 2.0;
        let at = |i: usize| v[i];
        let rmq = FischerHeunRmq::new(v.len(), Direction::Max, &at);
        assert_eq!(rmq.query_with(0, 49, &at), 37);
        assert_eq!(rmq.query_with(0, 30, &at), 23);
    }

    #[test]
    fn heap_is_smaller_than_values() {
        let v = values(100_000, 9, 1 << 30);
        let at = |i: usize| v[i];
        let rmq = FischerHeunRmq::new(v.len(), Direction::Max, &at);
        // ~4.5 bytes/element vs 8 bytes/element for materialised values.
        assert!(rmq.heap_size() < v.len() * 6, "heap {}", rmq.heap_size());
    }
}
