//! Classic sparse-table RMQ: O(n log n) preprocessing, O(1) query.

use crate::{Direction, Rmq};

/// Sparse table answering range-extreme queries in O(1) after
/// O(n log n) preprocessing.
///
/// Stores, for every power-of-two window length `2^k` and start `i`, the
/// index of the extreme element in `[i, i + 2^k)`. Ties resolve to the
/// leftmost index. Values are kept so queries can compare the two candidate
/// windows.
///
/// ```
/// use ustr_rmq::{Direction, Rmq, SparseTable};
/// let st = SparseTable::new(&[0.3, 0.9, 0.1, 0.9], Direction::Max);
/// assert_eq!(st.query(0, 3), 1); // leftmost maximum wins ties
/// assert_eq!(st.query(2, 3), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SparseTable {
    values: Vec<f64>,
    /// `table[k][i]` = extreme index in `[i, i + 2^(k+1))`; level 0 (windows
    /// of length 1) is implicit (the index itself).
    table: Vec<Vec<u32>>,
    direction: Direction,
}

impl SparseTable {
    /// Builds a sparse table over `values`.
    pub fn new(values: &[f64], direction: Direction) -> Self {
        let n = values.len();
        let levels = if n <= 1 { 0 } else { n.ilog2() as usize };
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
        for k in 0..levels {
            let width = 1usize << (k + 1);
            let half = width / 2;
            let count = n + 1 - width;
            let mut row = Vec::with_capacity(count);
            for i in 0..count {
                let left = if k == 0 { i as u32 } else { table[k - 1][i] };
                let right = if k == 0 {
                    (i + half) as u32
                } else {
                    table[k - 1][i + half]
                };
                let pick = if direction.beats(values[right as usize], values[left as usize]) {
                    right
                } else {
                    left
                };
                row.push(pick);
            }
            table.push(row);
        }
        Self {
            values: values.to_vec(),
            table,
            direction,
        }
    }

    /// The direction (max or min) this table answers.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The value stored at `index`.
    #[inline]
    pub fn value(&self, index: usize) -> f64 {
        self.values[index]
    }

    /// Extreme *value* within `[l, r]`.
    #[inline]
    pub fn query_value(&self, l: usize, r: usize) -> f64 {
        self.values[self.query(l, r)]
    }
}

impl Rmq for SparseTable {
    fn len(&self) -> usize {
        self.values.len()
    }

    fn query(&self, l: usize, r: usize) -> usize {
        assert!(l <= r, "invalid range: l={l} > r={r}");
        assert!(r < self.values.len(), "range end {r} out of bounds");
        if l == r {
            return l;
        }
        let k = (r - l + 1).ilog2() as usize; // window 2^k fits at least half
        if k == 0 {
            // Range of length 1 is handled above; length >= 2 has k >= 1.
            unreachable!("ranges of length >= 2 always have k >= 1");
        }
        let row = &self.table[k - 1];
        let left = row[l] as usize;
        let right = row[r + 1 - (1usize << k)] as usize;
        if self.direction.beats(self.values[right], self.values[left]) {
            right
        } else {
            left
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_extreme;

    fn pseudo_random_values(n: usize, seed: u64) -> Vec<f64> {
        // Small xorshift so the unit test does not need the rand crate.
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 1000.0
            })
            .collect()
    }

    #[test]
    fn single_element() {
        let st = SparseTable::new(&[42.0], Direction::Max);
        assert_eq!(st.query(0, 0), 0);
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn matches_linear_scan_max() {
        let values = pseudo_random_values(257, 0xDECAF);
        let st = SparseTable::new(&values, Direction::Max);
        for l in 0..values.len() {
            for r in l..values.len() {
                assert_eq!(
                    st.query(l, r),
                    scan_extreme(&values, l, r, Direction::Max),
                    "range [{l},{r}]"
                );
            }
        }
    }

    #[test]
    fn matches_linear_scan_min() {
        let values = pseudo_random_values(100, 0xBEEF);
        let st = SparseTable::new(&values, Direction::Min);
        for l in 0..values.len() {
            for r in l..values.len() {
                assert_eq!(st.query(l, r), scan_extreme(&values, l, r, Direction::Min));
            }
        }
    }

    #[test]
    fn ties_resolve_leftmost() {
        let values = vec![1.0, 5.0, 5.0, 5.0, 1.0];
        let st = SparseTable::new(&values, Direction::Max);
        assert_eq!(st.query(0, 4), 1);
        assert_eq!(st.query(2, 4), 2);
    }

    #[test]
    fn handles_infinities() {
        let values = vec![f64::NEG_INFINITY, 0.0, f64::NEG_INFINITY];
        let st = SparseTable::new(&values, Direction::Max);
        assert_eq!(st.query(0, 2), 1);
        assert_eq!(st.query(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let st = SparseTable::new(&[1.0, 2.0], Direction::Max);
        st.query(0, 2);
    }

    #[test]
    fn query_value_returns_extreme() {
        let st = SparseTable::new(&[0.25, 0.75, 0.5], Direction::Max);
        assert_eq!(st.query_value(0, 2), 0.75);
        let st = SparseTable::new(&[0.25, 0.75, 0.5], Direction::Min);
        assert_eq!(st.query_value(0, 2), 0.25);
    }
}
