//! Property tests for the RMQ structures: agreement with linear scan,
//! leftmost tie-breaking, reporter completeness, and block-size robustness.

use proptest::prelude::*;
use ustr_rmq::{report_above, BlockRmq, Direction, FischerHeunRmq, Rmq, SampledRmq, SparseTable};

fn scan(values: &[f64], l: usize, r: usize, dir: Direction) -> usize {
    let mut best = l;
    for i in l + 1..=r {
        if dir.beats(values[i], values[best]) {
            best = i;
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn all_structures_agree_with_scan(
        raw in prop::collection::vec(-100i64..100, 1..200),
        ranges in prop::collection::vec((0usize..200, 0usize..200), 1..16),
        max_dir in any::<bool>(),
    ) {
        let dir = if max_dir { Direction::Max } else { Direction::Min };
        // Duplicate-heavy values stress the tie-breaking rule.
        let values: Vec<f64> = raw.iter().map(|&v| (v / 10) as f64).collect();
        let n = values.len();
        let sparse = SparseTable::new(&values, dir);
        let block = BlockRmq::new(&values, dir);
        let at = |i: usize| values[i];
        let fh = FischerHeunRmq::new(n, dir, &at);
        for bs in [1usize, 3, 64] {
            let sampled = SampledRmq::with_block_size(n, bs, dir, &at);
            for &(a, b) in &ranges {
                let (l, r) = ((a % n).min(b % n), (a % n).max(b % n));
                let expected = scan(&values, l, r, dir);
                prop_assert_eq!(sparse.query(l, r), expected);
                prop_assert_eq!(block.query(l, r), expected);
                prop_assert_eq!(sampled.query_with(l, r, &at), expected);
                prop_assert_eq!(fh.query_with(l, r, &at), expected);
            }
        }
    }

    #[test]
    fn reporter_returns_exactly_the_passing_set(
        raw in prop::collection::vec(0u32..100, 1..150),
        threshold in 0u32..100,
    ) {
        let values: Vec<f64> = raw.iter().map(|&v| v as f64).collect();
        let rmq = BlockRmq::new(&values, Direction::Max);
        let t = threshold as f64;
        let mut got: Vec<usize> = report_above(
            0,
            values.len() - 1,
            t,
            Direction::Max,
            |l, r| rmq.query(l, r),
            |i| values[i],
        )
        .into_iter()
        .map(|(i, _)| i)
        .collect();
        got.sort_unstable();
        let expected: Vec<usize> = (0..values.len()).filter(|&i| values[i] >= t).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn first_report_is_global_extreme(
        raw in prop::collection::vec(0u32..1000, 2..100),
    ) {
        let values: Vec<f64> = raw.iter().map(|&v| v as f64).collect();
        let rmq = BlockRmq::new(&values, Direction::Max);
        let first = report_above(
            0,
            values.len() - 1,
            f64::NEG_INFINITY,
            Direction::Max,
            |l, r| rmq.query(l, r),
            |i| values[i],
        )
        .into_iter()
        .next()
        .unwrap();
        let best = scan(&values, 0, values.len() - 1, Direction::Max);
        prop_assert_eq!(first.0, best);
    }
}
