//! Protein-like sequence generation over the paper's 22-letter alphabet.

use rand::Rng;

/// The 22-letter protein alphabet used by the paper's dataset (20 amino
/// acids plus the IUPAC ambiguity codes B and Z).
pub const PROTEIN_ALPHABET: [u8; 22] = [
    b'A', b'R', b'N', b'D', b'C', b'Q', b'E', b'G', b'H', b'I', b'L', b'K', b'M', b'F', b'P', b'S',
    b'T', b'W', b'Y', b'V', b'B', b'Z',
];

/// Natural amino-acid abundances (percent), with small masses for the
/// ambiguity codes. Source: UniProtKB/Swiss-Prot composition statistics.
const FREQUENCIES: [f64; 22] = [
    8.25, 5.53, 4.06, 5.45, 1.37, 3.93, 6.75, 7.07, 2.27, 5.96, 9.66, 5.84, 2.42, 3.86, 4.70, 6.56,
    5.34, 1.08, 2.92, 6.87, 0.05, 0.06,
];

/// Cumulative distribution for inverse-transform sampling.
fn cdf() -> [f64; 22] {
    let total: f64 = FREQUENCIES.iter().sum();
    let mut acc = 0.0;
    let mut out = [0.0; 22];
    for (i, f) in FREQUENCIES.iter().enumerate() {
        acc += f / total;
        out[i] = acc;
    }
    out[21] = 1.0;
    out
}

/// Samples one letter from the abundance distribution.
pub fn sample_letter(rng: &mut impl Rng) -> u8 {
    let table = cdf();
    let x: f64 = rng.gen();
    for (i, &c) in table.iter().enumerate() {
        if x <= c {
            return PROTEIN_ALPHABET[i];
        }
    }
    PROTEIN_ALPHABET[21]
}

/// Samples a letter different from `not`, uniformly over the remaining
/// alphabet (substitution model for the edit-distance neighbourhood).
pub fn sample_substitute(rng: &mut impl Rng, not: u8) -> u8 {
    loop {
        let c = PROTEIN_ALPHABET[rng.gen_range(0..PROTEIN_ALPHABET.len())];
        if c != not {
            return c;
        }
    }
}

/// Generates a protein-like sequence of length `len`.
pub fn random_protein(rng: &mut impl Rng, len: usize) -> Vec<u8> {
    (0..len).map(|_| sample_letter(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn alphabet_has_22_distinct_letters() {
        let mut set = PROTEIN_ALPHABET.to_vec();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), 22);
        assert!(!PROTEIN_ALPHABET.contains(&0u8), "sentinel byte excluded");
    }

    #[test]
    fn sequences_are_deterministic_under_seed() {
        let a = random_protein(&mut StdRng::seed_from_u64(7), 100);
        let b = random_protein(&mut StdRng::seed_from_u64(7), 100);
        let c = random_protein(&mut StdRng::seed_from_u64(8), 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn letters_come_from_the_alphabet() {
        let s = random_protein(&mut StdRng::seed_from_u64(1), 5000);
        assert!(s.iter().all(|c| PROTEIN_ALPHABET.contains(c)));
        // Common letters dominate rare ones over a long sample.
        let count = |c: u8| s.iter().filter(|&&x| x == c).count();
        assert!(count(b'L') > count(b'W'));
        assert!(count(b'A') > count(b'B'));
    }

    #[test]
    fn substitutes_never_equal_the_original() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            assert_ne!(sample_substitute(&mut rng, b'A'), b'A');
        }
    }
}
