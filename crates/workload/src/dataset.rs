//! The §8.1 dataset: edit-distance-neighbourhood pdfs over protein segments.

use rand::{rngs::StdRng, Rng, SeedableRng};
use ustr_uncertain::{UncertainChar, UncertainString};

use crate::protein::{random_protein, sample_substitute};

/// Configuration of the synthetic dataset generator.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Total number of positions (the paper's `n`, 2K–300K in §8).
    pub n: usize,
    /// Fraction of uncertain positions θ ∈ \[0, 1\] (§8.1: 0.1–0.5).
    pub theta: f64,
    /// RNG seed; every output is a pure function of the config.
    pub seed: u64,
    /// Segment length bounds (paper: ≈ normal over \[20, 45\]).
    pub segment_len: (usize, usize),
    /// Substitutions per neighbour string (paper: edit distance 4).
    pub edits_per_neighbor: usize,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            n: 10_000,
            theta: 0.2,
            seed: 42,
            segment_len: (20, 45),
            edits_per_neighbor: 4,
        }
    }
}

impl DatasetConfig {
    /// Convenience constructor for the common (n, θ, seed) sweep axes.
    pub fn new(n: usize, theta: f64, seed: u64) -> Self {
        Self {
            n,
            theta,
            seed,
            ..Default::default()
        }
    }
}

/// Approximate normal sample via the central limit of 4 uniforms, clamped
/// to the configured segment bounds.
fn segment_length(rng: &mut StdRng, bounds: (usize, usize)) -> usize {
    let (lo, hi) = bounds;
    if lo >= hi {
        return lo;
    }
    let mid = (lo + hi) as f64 / 2.0;
    let spread = (hi - lo) as f64 / 2.0;
    let z: f64 = (0..4).map(|_| rng.gen::<f64>()).sum::<f64>() / 2.0 - 1.0; // ~N(0, 1/3)
    let len = mid + z * spread;
    (len.round() as usize).clamp(lo, hi)
}

/// Builds one uncertain segment following §8.1: select `⌈θ·L⌉` uncertain
/// positions, generate neighbour strings whose `edits_per_neighbor`
/// substitutions are drawn from those positions, and set each position's
/// pdf to the normalized letter frequencies over the neighbourhood.
fn generate_segment(rng: &mut StdRng, len: usize, cfg: &DatasetConfig) -> UncertainString {
    let base = random_protein(rng, len);
    let num_uncertain = ((cfg.theta * len as f64).round() as usize).min(len);
    // Choose the uncertain position set (partial Fisher–Yates).
    let mut order: Vec<usize> = (0..len).collect();
    for i in 0..num_uncertain {
        let j = rng.gen_range(i..len);
        order.swap(i, j);
    }
    let uncertain = &order[..num_uncertain];

    // Letter vote counts per uncertain position. The base string votes once
    // per neighbour that did not edit the position, plus once for itself.
    let neighbors = num_uncertain.max(4);
    let mut votes: Vec<Vec<(u8, u32)>> = uncertain
        .iter()
        .map(|&p| vec![(base[p], 1 + neighbors as u32)])
        .collect();
    if num_uncertain > 0 {
        let edits = cfg.edits_per_neighbor.min(num_uncertain);
        let mut pick: Vec<usize> = (0..num_uncertain).collect();
        for _ in 0..neighbors {
            // Each neighbour substitutes at `edits` *distinct* uncertain
            // positions (edit distance ≤ edits_per_neighbor).
            for i in 0..edits {
                let j = rng.gen_range(i..num_uncertain);
                pick.swap(i, j);
            }
            for &k in &pick[..edits] {
                let p = uncertain[k];
                let sub = sample_substitute(rng, base[p]);
                let row = &mut votes[k];
                // The edited neighbour votes for `sub` instead of the base.
                row[0].1 -= 1;
                match row.iter_mut().find(|(c, _)| *c == sub) {
                    Some(entry) => entry.1 += 1,
                    None => row.push((sub, 1)),
                }
            }
        }
    }

    let mut positions: Vec<UncertainChar> = base
        .iter()
        .map(|&c| UncertainChar::deterministic(c))
        .collect();
    for (k, &p) in uncertain.iter().enumerate() {
        let total: u32 = votes[k].iter().map(|&(_, v)| v).sum();
        let mut rows: Vec<(u8, f64)> = votes[k]
            .iter()
            .filter(|&&(_, v)| v > 0)
            .map(|&(c, v)| (c, v as f64 / total as f64))
            .collect();
        // Guarantee genuine uncertainty: if every vote collapsed onto the
        // base letter, add one alternative.
        if rows.len() == 1 {
            let alt = sample_substitute(rng, rows[0].0);
            rows[0].1 = 0.8;
            rows.push((alt, 0.2));
        }
        positions[p] = UncertainChar::new(rows, p).expect("vote pdf is valid");
    }
    UncertainString::new(positions)
}

/// Generates a single uncertain string of `cfg.n` positions by
/// concatenating segments (the substring-search experiments of §8.2–8.6).
pub fn generate_string(cfg: &DatasetConfig) -> UncertainString {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut positions = Vec::with_capacity(cfg.n);
    while positions.len() < cfg.n {
        let want = cfg.n - positions.len();
        let len = segment_length(&mut rng, cfg.segment_len).min(want.max(1));
        let seg = generate_segment(&mut rng, len, cfg);
        positions.extend(seg.positions().iter().cloned());
    }
    positions.truncate(cfg.n);
    UncertainString::new(positions)
}

/// Generates a collection of uncertain strings totalling `cfg.n` positions
/// (the string-listing experiments).
pub fn generate_collection(cfg: &DatasetConfig) -> Vec<UncertainString> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut docs = Vec::new();
    let mut total = 0usize;
    while total < cfg.n {
        let want = cfg.n - total;
        let len = segment_length(&mut rng, cfg.segment_len).min(want.max(1));
        docs.push(generate_segment(&mut rng, len, cfg));
        total += len;
    }
    docs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_has_requested_length_and_theta() {
        let cfg = DatasetConfig::new(5000, 0.3, 11);
        let s = generate_string(&cfg);
        assert_eq!(s.len(), 5000);
        let theta = s.uncertain_fraction();
        assert!(
            (theta - 0.3).abs() < 0.05,
            "uncertain fraction {theta} should approximate 0.3"
        );
    }

    #[test]
    fn average_choices_near_five() {
        let cfg = DatasetConfig::new(5000, 0.4, 3);
        let s = generate_string(&cfg);
        let uncertain: Vec<_> = s
            .positions()
            .iter()
            .filter(|p| p.num_choices() > 1)
            .collect();
        let avg: f64 = uncertain
            .iter()
            .map(|p| p.num_choices() as f64)
            .sum::<f64>()
            / uncertain.len() as f64;
        assert!(
            (3.0..=7.0).contains(&avg),
            "average choices {avg} should be near the paper's 5"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = DatasetConfig::new(500, 0.2, 9);
        let a = generate_string(&cfg);
        let b = generate_string(&cfg);
        assert_eq!(a.to_string(), b.to_string());
        let c = generate_string(&DatasetConfig::new(500, 0.2, 10));
        assert_ne!(a.to_string(), c.to_string());
    }

    #[test]
    fn theta_zero_is_fully_deterministic() {
        let s = generate_string(&DatasetConfig::new(300, 0.0, 5));
        assert_eq!(s.uncertain_fraction(), 0.0);
    }

    #[test]
    fn pdfs_are_valid_distributions() {
        let s = generate_string(&DatasetConfig::new(2000, 0.5, 21));
        for (i, p) in s.positions().iter().enumerate() {
            let sum: f64 = p.choices().iter().map(|&(_, pr)| pr).sum();
            assert!((sum - 1.0).abs() < 1e-9, "position {i} sums to {sum}");
        }
    }

    #[test]
    fn collection_lengths_respect_bounds() {
        let cfg = DatasetConfig::new(3000, 0.2, 77);
        let docs = generate_collection(&cfg);
        let total: usize = docs.iter().map(|d| d.len()).sum();
        assert!(total >= 3000);
        for d in &docs[..docs.len() - 1] {
            assert!((20..=45).contains(&d.len()), "len {}", d.len());
        }
    }
}
