//! IUPAC nucleotide ambiguity codes → uncertain strings.
//!
//! §2 of the paper points at the NC-IUB recommendation (Lilley et al.) that
//! standardises *incompletely specified bases* in DNA: `R` means A or G,
//! `N` means any base, and so on. A sequence containing ambiguity codes is
//! exactly a character-level uncertain string — each code expands to a
//! uniform (or user-weighted) distribution over its base set — which makes
//! every index in this workspace directly applicable to real FASTA data.

use ustr_uncertain::{ModelError, UncertainChar, UncertainString};

/// The base set of one IUPAC nucleotide code, or `None` for non-code bytes.
///
/// Both cases are accepted; `U` is treated as `T`.
pub fn iupac_bases(code: u8) -> Option<&'static [u8]> {
    match code.to_ascii_uppercase() {
        b'A' => Some(b"A"),
        b'C' => Some(b"C"),
        b'G' => Some(b"G"),
        b'T' | b'U' => Some(b"T"),
        b'R' => Some(b"AG"),
        b'Y' => Some(b"CT"),
        b'S' => Some(b"CG"),
        b'W' => Some(b"AT"),
        b'K' => Some(b"GT"),
        b'M' => Some(b"AC"),
        b'B' => Some(b"CGT"),
        b'D' => Some(b"AGT"),
        b'H' => Some(b"ACT"),
        b'V' => Some(b"ACG"),
        b'N' => Some(b"ACGT"),
        _ => None,
    }
}

/// Converts an IUPAC-annotated nucleotide sequence into an uncertain string:
/// every ambiguity code becomes a uniform distribution over its base set.
///
/// ```
/// use ustr_workload::iupac::from_iupac;
/// let s = from_iupac(b"ACGRN").unwrap();
/// assert_eq!(s.len(), 5);
/// assert_eq!(s.position(3).prob_of(b'A'), 0.5); // R = A|G
/// assert_eq!(s.position(4).prob_of(b'T'), 0.25); // N = any
/// // "ACGA" matches with probability .5 * 1 = ... times N's tail:
/// assert!((s.match_probability(b"ACGA", 0) - 0.5).abs() < 1e-12);
/// ```
pub fn from_iupac(sequence: &[u8]) -> Result<UncertainString, ModelError> {
    from_iupac_weighted(sequence, &|_, bases| {
        let p = 1.0 / bases.len() as f64;
        bases.iter().map(|&b| (b, p)).collect()
    })
}

/// Like [`from_iupac`] with caller-provided weights: `weigh(position,
/// base_set)` returns the `(base, probability)` rows for one ambiguity code
/// (e.g. genome-wide base composition priors instead of uniform weights).
pub fn from_iupac_weighted(
    sequence: &[u8],
    weigh: &dyn Fn(usize, &'static [u8]) -> Vec<(u8, f64)>,
) -> Result<UncertainString, ModelError> {
    let mut positions = Vec::with_capacity(sequence.len());
    for (i, &code) in sequence.iter().enumerate() {
        let bases = iupac_bases(code).ok_or_else(|| ModelError::Parse {
            detail: format!(
                "byte {:?} at position {i} is not an IUPAC nucleotide code",
                code as char
            ),
        })?;
        positions.push(UncertainChar::new(weigh(i, bases), i)?);
    }
    Ok(UncertainString::new(positions))
}

/// Fraction of ambiguous (multi-base) codes in a sequence — the θ this
/// sequence would have as an uncertain string.
pub fn ambiguity_fraction(sequence: &[u8]) -> f64 {
    if sequence.is_empty() {
        return 0.0;
    }
    let ambiguous = sequence
        .iter()
        .filter(|&&c| iupac_bases(c).is_some_and(|b| b.len() > 1))
        .count();
    ambiguous as f64 / sequence.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fifteen_codes_expand() {
        let codes = b"ACGTRYSWKMBDHVN";
        for &c in codes {
            let bases = iupac_bases(c).unwrap();
            assert!(!bases.is_empty());
            // Base sets are sorted, distinct, and drawn from ACGT.
            assert!(bases.windows(2).all(|w| w[0] < w[1]));
            assert!(bases.iter().all(|b| b"ACGT".contains(b)));
        }
        assert_eq!(iupac_bases(b'u'), Some(&b"T"[..]), "U = T, case folded");
        assert_eq!(iupac_bases(b'X'), None);
        assert_eq!(iupac_bases(b'-'), None);
    }

    #[test]
    fn uniform_expansion_probabilities() {
        let s = from_iupac(b"ANRB").unwrap();
        assert_eq!(s.position(0).prob_of(b'A'), 1.0);
        for b in b"ACGT" {
            assert_eq!(s.position(1).prob_of(*b), 0.25);
        }
        assert_eq!(s.position(2).prob_of(b'A'), 0.5);
        assert_eq!(s.position(2).prob_of(b'G'), 0.5);
        assert!((s.position(3).prob_of(b'C') - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.position(3).prob_of(b'A'), 0.0);
    }

    #[test]
    fn weighted_expansion() {
        // GC-rich prior: weight G/C twice as much as A/T.
        let weigh = |_: usize, bases: &'static [u8]| -> Vec<(u8, f64)> {
            let w = |b: u8| if b == b'G' || b == b'C' { 2.0 } else { 1.0 };
            let total: f64 = bases.iter().map(|&b| w(b)).sum();
            bases.iter().map(|&b| (b, w(b) / total)).collect()
        };
        let s = from_iupac_weighted(b"R", &weigh).unwrap();
        assert!((s.position(0).prob_of(b'G') - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.position(0).prob_of(b'A') - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_iupac_bytes() {
        assert!(from_iupac(b"ACGT").is_ok());
        assert!(from_iupac(b"ACGT-").is_err());
        assert!(from_iupac(b"AC GT").is_err());
    }

    #[test]
    fn ambiguity_fraction_counts_multi_base_codes() {
        assert_eq!(ambiguity_fraction(b"ACGT"), 0.0);
        assert_eq!(ambiguity_fraction(b"ANGN"), 0.5);
        assert_eq!(ambiguity_fraction(b""), 0.0);
    }

    #[test]
    fn searching_iupac_sequences_end_to_end() {
        use ustr_baseline::NaiveScanner;
        // "ACGRNT": "GAT" matches at 2 (G, R→A, N→T) and at 3 (R→G, N→A, T),
        // each with probability .5 * .25 = .125.
        let s = from_iupac(b"ACGRNT").unwrap();
        let hits = NaiveScanner::find_with_probs(&s, b"GAT", 0.05);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 2);
        assert_eq!(hits[1].0, 3);
        for &(_, p) in &hits {
            assert!((p - 0.125).abs() < 1e-12);
        }
        // Raising the threshold above .125 excludes both.
        assert!(NaiveScanner::find(&s, b"GAT", 0.2).is_empty());
    }
}
