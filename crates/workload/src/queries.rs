//! Query-pattern sampling for the evaluation sweeps.

use rand::{rngs::StdRng, Rng, SeedableRng};
use ustr_uncertain::UncertainString;

/// How patterns are drawn from the indexed string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternMode {
    /// Follow the most probable character at each position: patterns that
    /// actually match with high probability ("hit" workload).
    Probable,
    /// Sample each character proportionally to its probability: a mix of
    /// strong and weak matches.
    Weighted,
    /// Uniform random letters from the string's alphabet: mostly misses.
    Random,
}

/// Samples `count` patterns of length `m` anchored at random positions of
/// `s`. Deterministic under `seed`.
pub fn sample_patterns(
    s: &UncertainString,
    m: usize,
    count: usize,
    mode: PatternMode,
    seed: u64,
) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = s.len();
    if n == 0 || m == 0 || m > n {
        return Vec::new();
    }
    // Alphabet observed in the string, for Random mode.
    let mut alphabet: Vec<u8> = s
        .positions()
        .iter()
        .flat_map(|p| p.choices().iter().map(|&(c, _)| c))
        .collect();
    alphabet.sort_unstable();
    alphabet.dedup();

    (0..count)
        .map(|_| {
            let start = rng.gen_range(0..=n - m);
            (0..m)
                .map(|k| match mode {
                    PatternMode::Probable => s.position(start + k).most_probable().0,
                    PatternMode::Weighted => {
                        let choices = s.position(start + k).choices();
                        let total: f64 = choices.iter().map(|&(_, p)| p).sum();
                        let mut x: f64 = rng.gen::<f64>() * total;
                        for &(c, p) in choices {
                            x -= p;
                            if x <= 0.0 {
                                return c;
                            }
                        }
                        choices[choices.len() - 1].0
                    }
                    PatternMode::Random => alphabet[rng.gen_range(0..alphabet.len())],
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_string, DatasetConfig};

    #[test]
    fn probable_patterns_usually_match() {
        let s = generate_string(&DatasetConfig::new(2000, 0.2, 1));
        let patterns = sample_patterns(&s, 8, 20, PatternMode::Probable, 2);
        assert_eq!(patterns.len(), 20);
        let hits = patterns
            .iter()
            .filter(|p| (0..=s.len() - p.len()).any(|i| s.match_probability(p, i) > 0.0))
            .count();
        assert!(hits >= 18, "probable patterns should nearly always occur");
    }

    #[test]
    fn deterministic_under_seed() {
        let s = generate_string(&DatasetConfig::new(500, 0.3, 4));
        let a = sample_patterns(&s, 10, 5, PatternMode::Weighted, 9);
        let b = sample_patterns(&s, 10, 5, PatternMode::Weighted, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs_yield_empty() {
        let s = generate_string(&DatasetConfig::new(50, 0.1, 4));
        assert!(sample_patterns(&s, 0, 5, PatternMode::Probable, 1).is_empty());
        assert!(sample_patterns(&s, 100, 5, PatternMode::Probable, 1).is_empty());
        let empty = UncertainString::new(Vec::new());
        assert!(sample_patterns(&empty, 3, 5, PatternMode::Probable, 1).is_empty());
    }

    #[test]
    fn pattern_lengths_are_exact() {
        let s = generate_string(&DatasetConfig::new(300, 0.2, 6));
        for m in [1, 5, 17] {
            for p in sample_patterns(&s, m, 10, PatternMode::Random, 3) {
                assert_eq!(p.len(), m);
            }
        }
    }
}
