//! Synthetic workloads reproducing the paper's evaluation setup (§8.1).
//!
//! The authors derive a character-level probabilistic dataset from a
//! concatenated mouse+human protein sequence (|Σ| = 22): the sequence is
//! broken into short strings (lengths ≈ normal over \[20, 45\]); for each
//! string `s` a set `A(s)` of strings within edit distance 4 is generated,
//! and the pdf of each position is the normalized letter frequency over
//! `A(s)`. The fraction of uncertain positions θ is varied in \[0.1, 0.5\]
//! and each uncertain position averages 5 character choices.
//!
//! The original corpus is not redistributable, so [`protein`] synthesises
//! protein-like sequences from published amino-acid frequencies — the same
//! alphabet size and the same pdf construction, which is all the evaluation
//! sweeps (n, θ, τ, τmin, m) depend on. Everything is deterministic under a
//! seed.

#![forbid(unsafe_code)]

pub mod dataset;
pub mod iupac;
pub mod protein;
pub mod queries;

pub use dataset::{generate_collection, generate_string, DatasetConfig};
pub use iupac::{ambiguity_fraction, from_iupac, from_iupac_weighted};
pub use protein::{random_protein, PROTEIN_ALPHABET};
pub use queries::{sample_patterns, PatternMode};
