//! Single-file **collection snapshots**: a whole document collection (one or
//! two index snapshots per document) packed into one artifact.
//!
//! The per-document directory layout (`doc_<id>.idx` files) ties a collection
//! to a filesystem tree: moving it means moving thousands of files, and
//! nothing ties the files to each other. A collection snapshot is one file
//! with a manifest up front, so a whole collection can be shipped, checksummed
//! and memory-planned as a unit. This is the primary persistence path of the
//! `ustr-service` serving layer (`QueryService::{save_collection,
//! load_collection}`); the directory layout remains supported but deprecated.
//!
//! # Container format
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0  | 8 | magic `"USTRCOLL"` |
//! | 8  | 4 | collection format version, `u32` little-endian (currently 1) |
//! | 12 | 4 | reserved, must be zero |
//! | 16 | 8 | document count, `u64` little-endian |
//! | 24 | 8 | shard plan hint (shard count at save time), `u64` little-endian |
//! | 32 | 8 | section count, `u64` little-endian |
//! | 40 | 33 × sections | manifest entries |
//! | …  | … | section bytes, contiguous, in manifest order |
//!
//! Each manifest entry is `doc_id: u64 | kind: u8 | offset: u64 | len: u64 |
//! checksum: u64` (all little-endian; offsets from the start of the file;
//! checksums are FNV-1a 64 over the section bytes). Every section is itself a
//! complete single-index snapshot (`USTRSNAP` header + payload), so sections
//! carry their own version and kind and can be extracted verbatim.
//!
//! Reading validates the magic, version, reserved bytes, manifest bounds,
//! section contiguity, and every per-section checksum before returning; any
//! truncation or corruption surfaces as a [`StoreError`], never a panic.

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use crate::io::{RealIo, StoreIo};
use crate::{fnv1a, SnapshotKind, StoreError};

/// The 8-byte magic prefix of every collection snapshot file.
pub const COLLECTION_MAGIC: [u8; 8] = *b"USTRCOLL";

/// Current collection container version (independent of the per-index
/// snapshot [`crate::FORMAT_VERSION`]; sections carry their own).
pub const COLLECTION_VERSION: u32 = 1;

/// Fixed-size collection header length in bytes.
pub const COLLECTION_HEADER_LEN: usize = 40;

/// Size of one manifest entry in bytes.
const MANIFEST_ENTRY_LEN: usize = 33;

/// One section of a collection file: a complete single-index snapshot
/// belonging to one document.
#[derive(Debug, Clone)]
pub struct CollectionSection {
    /// Document id the section belongs to.
    pub doc: usize,
    /// Index kind the section holds (mirrors the section's own header).
    pub kind: SnapshotKind,
    /// The complete snapshot bytes (`USTRSNAP` header + payload).
    pub bytes: Vec<u8>,
}

/// A decoded collection file: the manifest-level metadata plus every
/// checksum-verified section.
#[derive(Debug)]
pub struct Collection {
    /// Number of documents the collection declares.
    pub num_docs: usize,
    /// Shard count the collection was built with (a planning hint; loaders
    /// may override it).
    pub shard_hint: usize,
    /// All sections, in manifest order.
    pub sections: Vec<CollectionSection>,
}

/// Writes a collection snapshot: header, manifest, then the sections
/// back-to-back. `sections` must be in the order they should be laid out
/// (by ascending document id for deterministic loads).
pub fn write_collection(
    mut out: impl Write,
    num_docs: usize,
    shard_hint: usize,
    sections: &[CollectionSection],
) -> Result<(), StoreError> {
    let mut header = Vec::with_capacity(COLLECTION_HEADER_LEN);
    header.extend_from_slice(&COLLECTION_MAGIC);
    header.extend_from_slice(&COLLECTION_VERSION.to_le_bytes());
    header.extend_from_slice(&[0, 0, 0, 0]);
    header.extend_from_slice(&(num_docs as u64).to_le_bytes());
    header.extend_from_slice(&(shard_hint as u64).to_le_bytes());
    header.extend_from_slice(&(sections.len() as u64).to_le_bytes());
    out.write_all(&header)?;

    let mut offset = (COLLECTION_HEADER_LEN + MANIFEST_ENTRY_LEN * sections.len()) as u64;
    for s in sections {
        out.write_all(&(s.doc as u64).to_le_bytes())?;
        out.write_all(&[s.kind as u8])?;
        out.write_all(&offset.to_le_bytes())?;
        out.write_all(&(s.bytes.len() as u64).to_le_bytes())?;
        out.write_all(&fnv1a(&s.bytes).to_le_bytes())?;
        offset += s.bytes.len() as u64;
    }
    for s in sections {
        out.write_all(&s.bytes)?;
    }
    Ok(())
}

/// Convenience wrapper: [`write_collection`] to a file path (buffered).
/// The file is fsynced before returning, so callers recording it in a
/// manifest (the live serving path truncates its WAL once a segment is
/// manifested) can rely on the bytes surviving a power loss.
pub fn save_collection_file(
    path: impl AsRef<Path>,
    num_docs: usize,
    shard_hint: usize,
    sections: &[CollectionSection],
) -> Result<(), StoreError> {
    save_collection_file_with(&RealIo, path, num_docs, shard_hint, sections)
}

/// [`save_collection_file`] through an injectable [`StoreIo`].
pub fn save_collection_file_with(
    io: &dyn StoreIo,
    path: impl AsRef<Path>,
    num_docs: usize,
    shard_hint: usize,
    sections: &[CollectionSection],
) -> Result<(), StoreError> {
    let file = io.create(path.as_ref())?;
    let mut out = BufWriter::new(file);
    write_collection(&mut out, num_docs, shard_hint, sections)?;
    out.flush()?;
    out.get_mut().sync_data()?;
    Ok(())
}

fn corrupt(detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        detail: detail.into(),
    }
}

/// Parsed collection header fields (shared by the full reader and the
/// manifest-only inspector, so the two can never drift).
struct HeaderFields {
    version: u32,
    num_docs: usize,
    shard_hint: usize,
    num_sections: usize,
}

/// Parses and validates the fixed-size collection header.
fn parse_collection_header(header: &[u8]) -> Result<HeaderFields, StoreError> {
    if header.len() < COLLECTION_HEADER_LEN {
        return Err(StoreError::Truncated {
            context: "collection header",
        });
    }
    if header[0..8] != COLLECTION_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if version != COLLECTION_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    if header[12..16] != [0, 0, 0, 0] {
        return Err(corrupt("reserved collection header bytes are not zero"));
    }
    let num_docs = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let shard_hint = u64::from_le_bytes(header[24..32].try_into().unwrap());
    let num_sections = u64::from_le_bytes(header[32..40].try_into().unwrap());
    Ok(HeaderFields {
        version,
        num_docs: usize::try_from(num_docs).map_err(|_| corrupt("document count overflows"))?,
        shard_hint: usize::try_from(shard_hint).unwrap_or(0),
        num_sections: usize::try_from(num_sections)
            .map_err(|_| corrupt("section count overflows"))?,
    })
}

/// Decodes one 33-byte manifest row.
fn parse_manifest_entry(entry: &[u8]) -> Result<ManifestEntry, StoreError> {
    let doc = u64::from_le_bytes(entry[0..8].try_into().unwrap());
    Ok(ManifestEntry {
        doc: usize::try_from(doc).map_err(|_| corrupt("document id overflows"))?,
        kind: SnapshotKind::from_byte(entry[8])?,
        offset: u64::from_le_bytes(entry[9..17].try_into().unwrap()),
        len: u64::from_le_bytes(entry[17..25].try_into().unwrap()),
        checksum: u64::from_le_bytes(entry[25..33].try_into().unwrap()),
    })
}

/// One manifest row, as stored (nothing about the section bytes is read).
#[derive(Debug, Clone)]
pub struct ManifestEntry {
    /// Document id the section belongs to.
    pub doc: usize,
    /// Index kind the section holds.
    pub kind: SnapshotKind,
    /// Byte offset of the section from the start of the file.
    pub offset: u64,
    /// Section length in bytes.
    pub len: u64,
    /// Recorded FNV-1a 64 checksum of the section bytes.
    pub checksum: u64,
}

/// The manifest-level metadata of a collection snapshot, read without
/// touching (or verifying) any section payload.
#[derive(Debug, Clone)]
pub struct CollectionManifest {
    /// Collection container format version.
    pub version: u32,
    /// Number of documents the collection declares.
    pub num_docs: usize,
    /// Shard count recorded at save time.
    pub shard_hint: usize,
    /// All manifest rows, in stored order.
    pub entries: Vec<ManifestEntry>,
}

/// Reads only the header and manifest of a collection snapshot — O(manifest)
/// work and memory regardless of how large the index payloads are. Used to
/// *inspect* a `.coll` file (`ustr stats`) without loading any index.
pub fn read_collection_manifest(path: impl AsRef<Path>) -> Result<CollectionManifest, StoreError> {
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut header = [0u8; COLLECTION_HEADER_LEN];
    let mut filled = 0;
    while filled < COLLECTION_HEADER_LEN {
        let n = file.read(&mut header[filled..])?;
        if n == 0 {
            return Err(StoreError::Truncated {
                context: "collection header",
            });
        }
        filled += n;
    }
    let h = parse_collection_header(&header)?;
    // The header is not checksummed: bound the declared manifest size
    // against the actual file before allocating anything for it.
    let manifest_len = h
        .num_sections
        .checked_mul(MANIFEST_ENTRY_LEN)
        .filter(|&m| {
            m.checked_add(COLLECTION_HEADER_LEN)
                .is_some_and(|end| end as u64 <= file_len)
        })
        .ok_or(StoreError::Truncated {
            context: "collection manifest",
        })?;
    let mut manifest = vec![0u8; manifest_len];
    let mut filled = 0;
    while filled < manifest_len {
        let n = file.read(&mut manifest[filled..])?;
        if n == 0 {
            return Err(StoreError::Truncated {
                context: "collection manifest",
            });
        }
        filled += n;
    }
    let entries = manifest
        .chunks_exact(MANIFEST_ENTRY_LEN)
        .map(parse_manifest_entry)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CollectionManifest {
        version: h.version,
        num_docs: h.num_docs,
        shard_hint: h.shard_hint,
        entries,
    })
}

/// Reads and validates a collection snapshot: magic, version, manifest
/// bounds, section contiguity, and every per-section checksum. Sections are
/// returned verbatim; decoding each into an index (which re-verifies the
/// section's own header) is the caller's job.
pub fn read_collection(mut input: impl Read) -> Result<Collection, StoreError> {
    let mut bytes = Vec::new();
    input.read_to_end(&mut bytes)?;
    let h = parse_collection_header(&bytes)?;
    let (num_docs, shard_hint, num_sections) = (h.num_docs, h.shard_hint, h.num_sections);
    let manifest_end = num_sections
        .checked_mul(MANIFEST_ENTRY_LEN)
        .and_then(|m| m.checked_add(COLLECTION_HEADER_LEN))
        .ok_or_else(|| corrupt("manifest size overflows"))?;
    if manifest_end > bytes.len() {
        return Err(StoreError::Truncated {
            context: "collection manifest",
        });
    }
    // The header itself is not checksummed, so bound the declared doc count
    // before anyone allocates per-document state: every servable document
    // needs at least one section, and num_sections is already bounded by the
    // manifest-fits-in-file check above.
    if num_docs > num_sections {
        return Err(corrupt(format!(
            "collection declares {num_docs} documents but only {num_sections} sections"
        )));
    }

    let mut sections = Vec::with_capacity(num_sections.min(1024));
    let mut expected_offset = manifest_end as u64;
    for i in 0..num_sections {
        let e = COLLECTION_HEADER_LEN + i * MANIFEST_ENTRY_LEN;
        let entry = parse_manifest_entry(&bytes[e..e + MANIFEST_ENTRY_LEN])?;
        if entry.doc >= num_docs {
            return Err(corrupt(format!(
                "manifest entry {i} names document {}, but the collection declares {num_docs}",
                entry.doc
            )));
        }
        if entry.offset != expected_offset {
            return Err(corrupt(format!(
                "section {i} is not contiguous (offset {}, expected {expected_offset})",
                entry.offset
            )));
        }
        let end = entry
            .offset
            .checked_add(entry.len)
            .ok_or_else(|| corrupt("section extent overflows"))?;
        if end > bytes.len() as u64 {
            return Err(StoreError::Truncated {
                context: "collection section",
            });
        }
        let section = bytes[entry.offset as usize..end as usize].to_vec();
        if fnv1a(&section) != entry.checksum {
            return Err(StoreError::ChecksumMismatch);
        }
        expected_offset = end;
        sections.push(CollectionSection {
            doc: entry.doc,
            kind: entry.kind,
            bytes: section,
        });
    }
    if expected_offset != bytes.len() as u64 {
        return Err(corrupt("trailing bytes after the last section"));
    }
    Ok(Collection {
        num_docs,
        shard_hint,
        sections,
    })
}

/// Convenience wrapper: [`read_collection`] from a file path.
pub fn load_collection_file(path: impl AsRef<Path>) -> Result<Collection, StoreError> {
    read_collection(File::open(path)?)
}

/// [`load_collection_file`] through an injectable [`StoreIo`]. A missing
/// file is an error here (unlike [`StoreIo::read`]'s `None`): segment
/// files are always named by a manifest, so absence means a broken
/// directory, not an empty collection.
pub fn load_collection_file_with(
    io: &dyn StoreIo,
    path: impl AsRef<Path>,
) -> Result<Collection, StoreError> {
    let path = path.as_ref();
    let Some(bytes) = io.read(path)? else {
        return Err(StoreError::Io(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("segment file {} does not exist", path.display()),
        )));
    };
    read_collection(&bytes[..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Snapshot;
    use ustr_core::Index;
    use ustr_uncertain::UncertainString;

    fn sample_sections() -> Vec<CollectionSection> {
        ["a:.5,b:.5 | b | a", "b | a:.9,c:.1 | c | c"]
            .iter()
            .enumerate()
            .map(|(doc, spec)| {
                let s = UncertainString::parse(spec).unwrap();
                let mut bytes = Vec::new();
                Index::build(&s, 0.1)
                    .unwrap()
                    .write_snapshot(&mut bytes)
                    .unwrap();
                CollectionSection {
                    doc,
                    kind: SnapshotKind::Index,
                    bytes,
                }
            })
            .collect()
    }

    fn sample_bytes() -> Vec<u8> {
        let sections = sample_sections();
        let mut out = Vec::new();
        write_collection(&mut out, sections.len(), 2, &sections).unwrap();
        out
    }

    #[test]
    fn collection_round_trips() {
        let bytes = sample_bytes();
        let coll = read_collection(&bytes[..]).unwrap();
        assert_eq!(coll.num_docs, 2);
        assert_eq!(coll.shard_hint, 2);
        assert_eq!(coll.sections.len(), 2);
        for (i, s) in coll.sections.iter().enumerate() {
            assert_eq!(s.doc, i);
            assert_eq!(s.kind, SnapshotKind::Index);
            let _ = Index::read_snapshot(&s.bytes[..]).unwrap();
        }
    }

    #[test]
    fn every_truncation_point_errors() {
        let bytes = sample_bytes();
        for cut in 0..bytes.len() {
            assert!(
                read_collection(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not load"
            );
        }
    }

    #[test]
    fn flipped_section_byte_fails_checksum() {
        let mut bytes = sample_bytes();
        let at = bytes.len() - 10; // inside the last section
        bytes[at] ^= 0xFF;
        assert!(matches!(
            read_collection(&bytes[..]),
            Err(StoreError::ChecksumMismatch)
        ));
    }

    #[test]
    fn wrong_magic_and_version_are_clean_errors() {
        let mut bytes = sample_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            read_collection(&bytes[..]),
            Err(StoreError::BadMagic)
        ));
        let mut bytes = sample_bytes();
        bytes[8..12].copy_from_slice(&(COLLECTION_VERSION + 1).to_le_bytes());
        assert!(matches!(
            read_collection(&bytes[..]),
            Err(StoreError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn absurd_doc_count_is_rejected_without_allocating() {
        // The header carries no checksum, so a flipped doc-count field must
        // be caught by the docs-vs-sections bound, not by an allocation.
        let mut bytes = sample_bytes();
        bytes[16..24].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(matches!(
            read_collection(&bytes[..]),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn manifest_reader_inspects_without_decoding() {
        let bytes = sample_bytes();
        let path = std::env::temp_dir().join("ustr_store_manifest_read.coll");
        std::fs::write(&path, &bytes).unwrap();
        let m = read_collection_manifest(&path).unwrap();
        assert_eq!(m.version, COLLECTION_VERSION);
        assert_eq!(m.num_docs, 2);
        assert_eq!(m.shard_hint, 2);
        assert_eq!(m.entries.len(), 2);
        // Entries agree with the full reader's sections.
        let coll = read_collection(&bytes[..]).unwrap();
        for (e, s) in m.entries.iter().zip(coll.sections.iter()) {
            assert_eq!(e.doc, s.doc);
            assert_eq!(e.kind, s.kind);
            assert_eq!(e.len as usize, s.bytes.len());
            assert_eq!(e.checksum, fnv1a(&s.bytes));
        }
        // A corrupt section count must fail cleanly *before* any
        // allocation sized from the untrusted header.
        let mut huge = bytes.clone();
        huge[32..40].copy_from_slice(&(u64::MAX / 64).to_le_bytes());
        std::fs::write(&path, &huge).unwrap();
        assert!(matches!(
            read_collection_manifest(&path),
            Err(StoreError::Truncated { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_bytes();
        bytes.extend_from_slice(b"junk");
        assert!(matches!(
            read_collection(&bytes[..]),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
