//! Injectable filesystem seam for the persistence layer.
//!
//! Every durability-relevant filesystem operation the store performs —
//! creating a file, appending, reading a whole file, renaming, removing,
//! fsyncing a directory — goes through a [`StoreIo`] so a test harness can
//! interpose deterministic faults (see `ustr-chaos`): fail the Nth fsync,
//! tear a write at byte k, error a rename. Production code passes
//! [`RealIo`], a zero-state passthrough to `std::fs`, so the seam costs one
//! dynamic dispatch per (already syscall-bound) operation and nothing else.
//!
//! The seam deliberately traffics in whole operations, not POSIX minutiae:
//! [`StoreIo::read`] returns the full contents (or `None` for a missing
//! file) because every store reader consumes whole files; writers get a
//! [`StoreFile`] handle exposing exactly the operations the WAL and
//! snapshot paths use (`write`, `sync_data`, `set_len`). Keeping the
//! surface minimal keeps fault coverage honest — there is no untested side
//! door to the filesystem.

use std::fmt::Debug;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// An open file handle as the store uses one: a writable, fsyncable,
/// truncatable sink. `std::fs::File` is the production implementation;
/// fault-injecting wrappers implement it to tear writes or fail syncs.
pub trait StoreFile: Write + Send + Debug {
    /// Flushes file content to stable storage (`fsync`/`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;

    /// Truncates (or extends) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
}

impl StoreFile for File {
    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        File::set_len(self, len)
    }
}

/// The filesystem operations the persistence layer performs, as an
/// injectable object. Implementations must be shareable across threads:
/// the live collection's maintenance thread and its writers use one
/// instance concurrently.
pub trait StoreIo: Send + Sync + Debug {
    /// Creates (truncating) a writable file at `path`. Writes must land
    /// at end-of-file (append semantics): the WAL's failed-append recovery
    /// truncates with [`StoreFile::set_len`] and keeps writing, and a
    /// positional cursor left beyond the truncation point would silently
    /// fill the gap with zeros — corrupting the log.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StoreFile>>;

    /// Opens `path` for appending, creating it when absent; returns the
    /// handle and the current length in bytes.
    fn open_append(&self, path: &Path) -> io::Result<(Box<dyn StoreFile>, u64)>;

    /// Reads the entire file at `path`; `Ok(None)` when it does not exist.
    fn read(&self, path: &Path) -> io::Result<Option<Vec<u8>>>;

    /// Renames `from` over `to` (the atomic-replace primitive). Callers
    /// are responsible for the fsync-before / directory-fsync-after
    /// ordering; see INVARIANTS.md §4.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Fsyncs the directory `dir` itself, making renames and file
    /// creations within it durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production [`StoreIo`]: a stateless passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StoreFile>> {
        // O_APPEND, not a positional cursor: set_len rollback must compose
        // with subsequent writes (see the trait docs). OpenOptions forbids
        // truncate+append in one call, so truncate first, then reopen.
        drop(
            OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(path)?,
        );
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Box::new(file))
    }

    fn open_append(&self, path: &Path) -> io::Result<(Box<dyn StoreFile>, u64)> {
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok((Box::new(file), len))
    }

    fn read(&self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        match File::open(path) {
            Ok(mut f) => {
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes)?;
                Ok(Some(bytes))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_io_round_trips_and_reports_missing_files() {
        let dir = std::env::temp_dir().join("ustr_store_io_real");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.bin");
        let _ = std::fs::remove_file(&path);

        let io = RealIo;
        assert!(io.read(&path).unwrap().is_none());

        let mut f = io.create(&path).unwrap();
        f.write_all(b"hello ").unwrap();
        f.sync_data().unwrap();
        drop(f);

        let (mut f, len) = io.open_append(&path).unwrap();
        assert_eq!(len, 6);
        f.write_all(b"world").unwrap();
        f.sync_data().unwrap();
        drop(f);

        assert_eq!(io.read(&path).unwrap().unwrap(), b"hello world");

        let moved = dir.join("moved.bin");
        io.rename(&path, &moved).unwrap();
        io.sync_dir(&dir).unwrap();
        assert!(io.read(&path).unwrap().is_none());
        assert_eq!(io.read(&moved).unwrap().unwrap(), b"hello world");

        io.remove_file(&moved).unwrap();
        assert!(io.read(&moved).unwrap().is_none());
    }

    #[test]
    fn set_len_truncates_to_a_boundary() {
        let dir = std::env::temp_dir().join("ustr_store_io_real");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.bin");
        let io = RealIo;
        let mut f = io.create(&path).unwrap();
        f.write_all(b"0123456789").unwrap();
        f.set_len(4).unwrap();
        // Writes after a truncation land at the *new* end of file — no
        // zero-filled hole from a stale cursor (the WAL rollback relies
        // on this).
        f.write_all(b"X").unwrap();
        drop(f);
        assert_eq!(io.read(&path).unwrap().unwrap(), b"0123X");
        let _ = std::fs::remove_file(&path);
    }
}
