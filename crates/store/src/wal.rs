//! Write-ahead log and live-collection manifest: the durability substrate
//! of the mutable (`ustr-live`) serving path.
//!
//! Both artifacts share one checksummed record framing (the same FNV-1a
//! and little-endian wire conventions as index snapshots):
//!
//! ```text
//! file   := header record*
//! header := magic "USTRWAL1" | version u32 | reserved u32 (zero)
//! record := kind u8 | seq u64 | payload_len u64 | payload | checksum u64
//! ```
//!
//! `checksum` is FNV-1a 64 over `kind | seq | payload`. Record kinds:
//!
//! | kind | record | payload |
//! |---|---|---|
//! | 1 | document insert | `doc_id u64` + encoded [`UncertainString`] |
//! | 2 | document delete (tombstone) | `doc_id u64` |
//! | 3 | live manifest state | segment list, tombstones, counters |
//!
//! A **WAL** is an append-only stream of insert/delete records; every
//! append is flushed and fsynced before the mutation is acknowledged. A
//! **manifest** is a file in the same format holding manifest-state
//! records; it is rewritten atomically (temp file + rename) and the *last*
//! state record wins, so a reader never observes a half-applied manifest.
//!
//! # Crash model
//!
//! [`read_wal`] distinguishes a *torn tail* from *corruption*. A crash can
//! only truncate the file mid-record — or, crashing during creation, mid
//! *header*, which replays as an empty log — bytes are never altered, so a
//! record whose declared extent runs past the end of the file is dropped
//! and every complete record before it is recovered —
//! [`WalReplay::clean`] reports whether that happened. A complete record
//! that fails its checksum, declares an unknown kind, has a non-monotone
//! sequence number, or carries an undecodable payload is *corruption* and
//! surfaces as a [`StoreError`]. Replay therefore never panics, never
//! yields a duplicate sequence number, and never yields a torn document.

use std::io::Write;
use std::path::Path;

use ustr_uncertain::UncertainString;

use crate::io::{RealIo, StoreFile, StoreIo};
use crate::{decode_uncertain_string, encode_uncertain_string, fnv1a, Reader, StoreError, Writer};

/// The 8-byte magic prefix of every WAL / manifest file.
pub const WAL_MAGIC: [u8; 8] = *b"USTRWAL1";

/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;

/// Fixed-size WAL header length in bytes.
pub const WAL_HEADER_LEN: usize = 16;

/// `kind + seq + payload_len` — the fixed prefix of every record.
const RECORD_PREFIX_LEN: usize = 1 + 8 + 8;

/// One logged operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A document was added under `doc` (a stable, never-reused id).
    Insert {
        /// The stable document id.
        doc: u64,
        /// The document body.
        body: UncertainString,
    },
    /// The document `doc` was tombstoned.
    Delete {
        /// The stable document id.
        doc: u64,
    },
    /// A full manifest state (only meaningful in manifest files).
    Manifest(LiveManifest),
}

impl WalOp {
    fn kind(&self) -> u8 {
        match self {
            WalOp::Insert { .. } => 1,
            WalOp::Delete { .. } => 2,
            WalOp::Manifest(_) => 3,
        }
    }
}

/// One WAL record: a monotone sequence number and the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Strictly increasing across the live collection's whole history.
    pub seq: u64,
    /// The logged operation.
    pub op: WalOp,
}

/// One sealed segment as the manifest records it.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentMeta {
    /// Segment id (monotone; never reused).
    pub id: u64,
    /// File name of the segment's `.coll` snapshot, relative to the live
    /// directory.
    pub file: String,
    /// Stable document ids in segment order: the segment file's local
    /// document `i` is this collection's document `docs[i]`.
    pub docs: Vec<u64>,
}

/// The durable state of a live collection minus the WAL tail: which
/// segments exist, which documents are tombstoned, and where the counters
/// stand. Everything with `seq ≤ applied_seq` is reflected here; WAL
/// records beyond it replay into the memtable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LiveManifest {
    /// Highest WAL sequence number whose effect is fully captured by the
    /// segments + tombstones below.
    pub applied_seq: u64,
    /// Next stable document id to assign.
    pub next_doc_id: u64,
    /// Next segment id to assign.
    pub next_segment_id: u64,
    /// Construction threshold every segment (and the memtable) uses.
    pub tau_min: f64,
    /// ε for per-document approx indexes in sealed segments, when enabled.
    pub epsilon: Option<f64>,
    /// Tombstoned stable document ids (sorted ascending).
    pub tombstones: Vec<u64>,
    /// Sealed segments in ascending document order.
    pub segments: Vec<SegmentMeta>,
}

fn encode_op(w: &mut Writer, op: &WalOp) {
    match op {
        WalOp::Insert { doc, body } => {
            w.put_u64(*doc);
            encode_uncertain_string(w, body);
        }
        WalOp::Delete { doc } => w.put_u64(*doc),
        WalOp::Manifest(m) => {
            w.put_u64(m.applied_seq);
            w.put_u64(m.next_doc_id);
            w.put_u64(m.next_segment_id);
            w.put_f64(m.tau_min);
            w.put_bool(m.epsilon.is_some());
            w.put_f64(m.epsilon.unwrap_or(0.0));
            w.put_u64s(&m.tombstones);
            w.put_u64(m.segments.len() as u64);
            for s in &m.segments {
                w.put_u64(s.id);
                w.put_bytes(s.file.as_bytes());
                w.put_u64s(&s.docs);
            }
        }
    }
}

fn decode_op(kind: u8, r: &mut Reader<'_>) -> Result<WalOp, StoreError> {
    match kind {
        1 => Ok(WalOp::Insert {
            doc: r.get_u64()?,
            body: decode_uncertain_string(r)?,
        }),
        2 => Ok(WalOp::Delete { doc: r.get_u64()? }),
        3 => {
            let applied_seq = r.get_u64()?;
            let next_doc_id = r.get_u64()?;
            let next_segment_id = r.get_u64()?;
            let tau_min = r.get_f64()?;
            let has_eps = r.get_bool()?;
            let eps = r.get_f64()?;
            let tombstones = r.get_u64s()?;
            let num_segments = r.get_len(17)?;
            let mut segments = Vec::with_capacity(num_segments);
            for _ in 0..num_segments {
                let id = r.get_u64()?;
                let file = String::from_utf8(r.get_bytes()?).map_err(|_| StoreError::Corrupt {
                    detail: "segment file name is not UTF-8".into(),
                })?;
                let docs = r.get_u64s()?;
                segments.push(SegmentMeta { id, file, docs });
            }
            Ok(WalOp::Manifest(LiveManifest {
                applied_seq,
                next_doc_id,
                next_segment_id,
                tau_min,
                epsilon: has_eps.then_some(eps),
                tombstones,
                segments,
            }))
        }
        other => Err(StoreError::UnknownKind { found: other }),
    }
}

/// Serializes one record into its framed byte form.
fn frame_record(record: &WalRecord) -> Vec<u8> {
    let mut w = Writer::new();
    encode_op(&mut w, &record.op);
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(RECORD_PREFIX_LEN + payload.len() + 8);
    out.push(record.op.kind());
    out.extend_from_slice(&record.seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let mut sum = Vec::with_capacity(9 + payload.len());
    sum.push(record.op.kind());
    sum.extend_from_slice(&record.seq.to_le_bytes());
    sum.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a(&sum).to_le_bytes());
    out
}

fn wal_header() -> [u8; WAL_HEADER_LEN] {
    let mut h = [0u8; WAL_HEADER_LEN];
    h[0..8].copy_from_slice(&WAL_MAGIC);
    h[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h
}

/// Fsyncs the directory containing `path`, making a just-persisted rename
/// or file creation durable (the file's own fsync does not cover its
/// directory entry).
pub fn fsync_parent_dir(path: impl AsRef<Path>) -> Result<(), StoreError> {
    fsync_parent_dir_with(&RealIo, path)
}

/// [`fsync_parent_dir`] through an injectable [`StoreIo`].
pub fn fsync_parent_dir_with(io: &dyn StoreIo, path: impl AsRef<Path>) -> Result<(), StoreError> {
    let dir = path.as_ref().parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        io.sync_dir(dir)?;
    }
    Ok(())
}

/// Append-only WAL writer. Every [`WalWriter::append`] flushes and fsyncs
/// before returning, so an acknowledged record survives a crash.
///
/// A failed append **rolls the file back** to the previous record
/// boundary (a half-written frame in the middle of the log would make
/// every *later* record unrecoverable — torn bytes are only tolerated at
/// the tail). If the rollback itself fails, the writer is poisoned and
/// refuses further appends.
#[derive(Debug)]
pub struct WalWriter {
    file: Box<dyn StoreFile>,
    /// Committed length: the file ends exactly here after every
    /// successful append.
    len: u64,
    poisoned: bool,
}

impl WalWriter {
    /// Creates (truncating) a new WAL at `path` and writes the header.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::create_with(&RealIo, path)
    }

    /// [`WalWriter::create`] through an injectable [`StoreIo`].
    pub fn create_with(io: &dyn StoreIo, path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let mut file = io.create(path)?;
        file.write_all(&wal_header())?;
        file.sync_data()?;
        fsync_parent_dir_with(io, path)?;
        Ok(Self {
            file,
            len: WAL_HEADER_LEN as u64,
            poisoned: false,
        })
    }

    /// Opens an existing WAL for appending (creating an empty one with a
    /// header when absent). The caller is expected to have replayed the
    /// file first; this does not validate existing content.
    pub fn open_append(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_append_with(&RealIo, path)
    }

    /// [`WalWriter::open_append`] through an injectable [`StoreIo`].
    pub fn open_append_with(io: &dyn StoreIo, path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let (mut file, mut len) = io.open_append(path)?;
        if len == 0 {
            file.write_all(&wal_header())?;
            file.sync_data()?;
            fsync_parent_dir_with(io, path)?;
            len = WAL_HEADER_LEN as u64;
        }
        Ok(Self {
            file,
            len,
            poisoned: false,
        })
    }

    /// Appends one record, flushing and fsyncing before returning; on
    /// success yields the framed byte count (telemetry feeds on it). On
    /// failure the partial frame is truncated away; an unrecoverable
    /// partial write poisons the writer.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, StoreError> {
        if self.poisoned {
            return Err(StoreError::Corrupt {
                detail: "WAL writer is poisoned by an earlier failed append".into(),
            });
        }
        let frame = frame_record(record);
        let result = self
            .file
            .write_all(&frame)
            .and_then(|()| self.file.sync_data());
        match result {
            Ok(()) => {
                self.len += frame.len() as u64;
                Ok(frame.len() as u64)
            }
            Err(e) => {
                // Roll back to the last record boundary so the log stays
                // replayable; poison on a failed rollback.
                if self.file.set_len(self.len).is_err() {
                    self.poisoned = true;
                }
                Err(e.into())
            }
        }
    }
}

/// Writes a complete WAL file (header + `records`) to `path` with **one**
/// fsync at the end, then fsyncs the parent directory. Used by rewrite
/// paths (log compaction after a seal, torn-tail trimming on recovery)
/// where per-record fsyncs would multiply latency for no durability gain:
/// the rewrite only becomes visible via a subsequent rename.
pub fn write_wal_file(path: impl AsRef<Path>, records: &[WalRecord]) -> Result<(), StoreError> {
    write_wal_file_with(&RealIo, path, records)
}

/// [`write_wal_file`] through an injectable [`StoreIo`].
pub fn write_wal_file_with(
    io: &dyn StoreIo,
    path: impl AsRef<Path>,
    records: &[WalRecord],
) -> Result<(), StoreError> {
    let path = path.as_ref();
    let mut file = io.create(path)?;
    let mut bytes = wal_header().to_vec();
    for record in records {
        bytes.extend_from_slice(&frame_record(record));
    }
    file.write_all(&bytes)?;
    file.sync_data()?;
    fsync_parent_dir_with(io, path)?;
    Ok(())
}

/// The outcome of replaying a WAL.
#[derive(Debug)]
pub struct WalReplay {
    /// Every complete, checksum-verified record, in log order (strictly
    /// increasing `seq`).
    pub records: Vec<WalRecord>,
    /// `false` when a torn tail record (an interrupted final append) was
    /// discarded; the records above are still a correct committed prefix.
    pub clean: bool,
}

/// Replays WAL bytes. See the [module docs](self) for the crash model:
/// truncation recovers a committed prefix; corruption is an error.
pub fn read_wal_bytes(bytes: &[u8]) -> Result<WalReplay, StoreError> {
    if bytes.is_empty() {
        // A WAL that was never created: nothing was committed.
        return Ok(WalReplay {
            records: Vec::new(),
            clean: true,
        });
    }
    if bytes.len() < WAL_HEADER_LEN {
        // A sub-header file can only be a crash during WAL creation (the
        // header is the first thing ever written): nothing was committed.
        // Reporting it torn lets recovery rewrite a clean log instead of
        // failing on every reopen.
        return Ok(WalReplay {
            records: Vec::new(),
            clean: false,
        });
    }
    if bytes[0..8] != WAL_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    if bytes[12..16] != [0, 0, 0, 0] {
        return Err(StoreError::Corrupt {
            detail: "reserved WAL header bytes are not zero".into(),
        });
    }
    let mut records = Vec::new();
    let mut last_seq: Option<u64> = None;
    let mut at = WAL_HEADER_LEN;
    while at < bytes.len() {
        let remaining = bytes.len() - at;
        if remaining < RECORD_PREFIX_LEN {
            // Torn tail: the final append was interrupted mid-prefix.
            return Ok(WalReplay {
                records,
                clean: false,
            });
        }
        let kind = bytes[at];
        let seq = u64::from_le_bytes(bytes[at + 1..at + 9].try_into().unwrap());
        let payload_len = u64::from_le_bytes(bytes[at + 9..at + 17].try_into().unwrap());
        let payload_len = usize::try_from(payload_len).map_err(|_| StoreError::Corrupt {
            detail: "WAL record length overflows".into(),
        })?;
        let Some(body_end) = at
            .checked_add(RECORD_PREFIX_LEN)
            .and_then(|s| s.checked_add(payload_len))
        else {
            return Err(StoreError::Corrupt {
                detail: "WAL record extent overflows".into(),
            });
        };
        let Some(frame_end) = body_end.checked_add(8) else {
            return Err(StoreError::Corrupt {
                detail: "WAL record extent overflows".into(),
            });
        };
        if frame_end > bytes.len() {
            // Torn tail: the payload or checksum never finished writing.
            return Ok(WalReplay {
                records,
                clean: false,
            });
        }
        let payload = &bytes[at + RECORD_PREFIX_LEN..body_end];
        let stored_sum = u64::from_le_bytes(bytes[body_end..frame_end].try_into().unwrap());
        let mut sum = Vec::with_capacity(9 + payload.len());
        sum.push(kind);
        sum.extend_from_slice(&seq.to_le_bytes());
        sum.extend_from_slice(payload);
        if fnv1a(&sum) != stored_sum {
            return Err(StoreError::ChecksumMismatch);
        }
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(StoreError::Corrupt {
                    detail: format!("WAL sequence {seq} does not advance past {prev}"),
                });
            }
        }
        let mut r = Reader::new(payload);
        let op = decode_op(kind, &mut r)?;
        if !r.is_exhausted() {
            return Err(StoreError::Corrupt {
                detail: "trailing bytes inside a WAL record payload".into(),
            });
        }
        last_seq = Some(seq);
        records.push(WalRecord { seq, op });
        at = frame_end;
    }
    Ok(WalReplay {
        records,
        clean: true,
    })
}

/// Replays the WAL at `path` ([`read_wal_bytes`] over the file contents).
/// A missing file replays as empty — the collection simply has no
/// committed writes yet.
pub fn read_wal(path: impl AsRef<Path>) -> Result<WalReplay, StoreError> {
    read_wal_with(&RealIo, path)
}

/// [`read_wal`] through an injectable [`StoreIo`].
pub fn read_wal_with(io: &dyn StoreIo, path: impl AsRef<Path>) -> Result<WalReplay, StoreError> {
    let bytes = io.read(path.as_ref())?.unwrap_or_default();
    read_wal_bytes(&bytes)
}

/// Atomically replaces the WAL at `path` with one containing exactly
/// `records`: sibling temp file, one fsync, rename, directory fsync. Used
/// to shrink the log after a seal (dropping records the manifest now
/// covers) and to trim a torn tail on recovery.
pub fn replace_wal_file(path: impl AsRef<Path>, records: &[WalRecord]) -> Result<(), StoreError> {
    replace_wal_file_with(&RealIo, path, records)
}

/// [`replace_wal_file`] through an injectable [`StoreIo`].
pub fn replace_wal_file_with(
    io: &dyn StoreIo,
    path: impl AsRef<Path>,
    records: &[WalRecord],
) -> Result<(), StoreError> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    write_wal_file_with(io, &tmp, records)?;
    io.rename(&tmp, path)?;
    fsync_parent_dir_with(io, path)?;
    Ok(())
}

/// Atomically writes `manifest` to `path`: the state is written to a
/// sibling temp file (WAL header + one kind-3 record), fsynced, renamed
/// over `path`, and the directory entry is fsynced — so a reader sees
/// either the old or the new state, never a mixture, even across power
/// loss.
pub fn save_manifest(path: impl AsRef<Path>, manifest: &LiveManifest) -> Result<(), StoreError> {
    save_manifest_with(&RealIo, path, manifest)
}

/// [`save_manifest`] through an injectable [`StoreIo`].
pub fn save_manifest_with(
    io: &dyn StoreIo,
    path: impl AsRef<Path>,
    manifest: &LiveManifest,
) -> Result<(), StoreError> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    write_wal_file_with(
        io,
        &tmp,
        std::slice::from_ref(&WalRecord {
            seq: manifest.applied_seq.max(1),
            op: WalOp::Manifest(manifest.clone()),
        }),
    )?;
    io.rename(&tmp, path)?;
    fsync_parent_dir_with(io, path)?;
    Ok(())
}

/// Loads the manifest at `path`: the last manifest-state record wins.
/// `Ok(None)` when the file does not exist (a brand-new live directory).
pub fn load_manifest(path: impl AsRef<Path>) -> Result<Option<LiveManifest>, StoreError> {
    load_manifest_with(&RealIo, path)
}

/// [`load_manifest`] through an injectable [`StoreIo`].
pub fn load_manifest_with(
    io: &dyn StoreIo,
    path: impl AsRef<Path>,
) -> Result<Option<LiveManifest>, StoreError> {
    let path = path.as_ref();
    let Some(bytes) = io.read(path)? else {
        return Ok(None);
    };
    let replay = read_wal_bytes(&bytes)?;
    let mut state = None;
    for record in replay.records {
        if let WalOp::Manifest(m) = record.op {
            state = Some(m);
        }
    }
    match state {
        Some(m) => Ok(Some(m)),
        None => Err(StoreError::Corrupt {
            detail: "manifest file holds no manifest-state record".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(spec: &str) -> UncertainString {
        UncertainString::parse(spec).unwrap()
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                seq: 1,
                op: WalOp::Insert {
                    doc: 0,
                    body: doc("a:.5,b:.5 | b | a"),
                },
            },
            WalRecord {
                seq: 2,
                op: WalOp::Insert {
                    doc: 1,
                    body: doc("c | c | a:.9,b:.1"),
                },
            },
            WalRecord {
                seq: 3,
                op: WalOp::Delete { doc: 0 },
            },
        ]
    }

    fn wal_bytes(records: &[WalRecord]) -> Vec<u8> {
        let mut out = wal_header().to_vec();
        for r in records {
            out.extend_from_slice(&frame_record(r));
        }
        out
    }

    #[test]
    fn wal_round_trips_through_a_file() {
        let path = std::env::temp_dir().join("ustr_wal_round_trip.wal");
        let _ = std::fs::remove_file(&path);
        let records = sample_records();
        let mut w = WalWriter::create(&path).unwrap();
        for r in &records {
            w.append(r).unwrap();
        }
        drop(w);
        let replay = read_wal(&path).unwrap();
        assert!(replay.clean);
        assert_eq!(replay.records, records);
        // Reopen and append more.
        let mut w = WalWriter::open_append(&path).unwrap();
        w.append(&WalRecord {
            seq: 9,
            op: WalOp::Delete { doc: 1 },
        })
        .unwrap();
        drop(w);
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.records.len(), 4);
        assert_eq!(replay.records[3].seq, 9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_wal_replays_empty() {
        let replay = read_wal(std::env::temp_dir().join("ustr_wal_never_created.wal")).unwrap();
        assert!(replay.clean);
        assert!(replay.records.is_empty());
    }

    #[test]
    fn every_truncation_recovers_a_prefix_or_errors() {
        let records = sample_records();
        let bytes = wal_bytes(&records);
        let mut recovered_full_prefixes = 0;
        for cut in 0..bytes.len() {
            // A clean error (header truncation) is the acceptable alternative.
            if let Ok(replay) = read_wal_bytes(&bytes[..cut]) {
                assert!(replay.records.len() <= records.len());
                assert_eq!(
                    replay.records,
                    records[..replay.records.len()],
                    "cut {cut}: recovered records must be a committed prefix"
                );
                recovered_full_prefixes += 1;
            }
        }
        assert!(recovered_full_prefixes > 0, "some cuts recover records");
    }

    #[test]
    fn flipped_byte_is_corruption_not_recovery() {
        let bytes = wal_bytes(&sample_records());
        // Flip a byte inside the first record's payload.
        let mut flipped = bytes.clone();
        flipped[WAL_HEADER_LEN + RECORD_PREFIX_LEN + 2] ^= 0xFF;
        assert!(matches!(
            read_wal_bytes(&flipped),
            Err(StoreError::ChecksumMismatch)
        ));
    }

    #[test]
    fn non_monotone_sequences_are_rejected() {
        let mut records = sample_records();
        records[2].seq = 2; // duplicate of the previous record
        let bytes = wal_bytes(&records);
        assert!(matches!(
            read_wal_bytes(&bytes),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn manifest_round_trips_atomically() {
        let path = std::env::temp_dir().join("ustr_wal_manifest.mf");
        let _ = std::fs::remove_file(&path);
        assert!(load_manifest(&path).unwrap().is_none());
        let manifest = LiveManifest {
            applied_seq: 7,
            next_doc_id: 5,
            next_segment_id: 2,
            tau_min: 0.05,
            epsilon: Some(0.1),
            tombstones: vec![1, 3],
            segments: vec![SegmentMeta {
                id: 0,
                file: "segment_0.coll".into(),
                docs: vec![0, 1, 2],
            }],
        };
        save_manifest(&path, &manifest).unwrap();
        assert_eq!(load_manifest(&path).unwrap().unwrap(), manifest);
        // Overwrite with new state; the replacement is whole.
        let mut next = manifest.clone();
        next.applied_seq = 12;
        next.segments.push(SegmentMeta {
            id: 1,
            file: "segment_1.coll".into(),
            docs: vec![4],
        });
        save_manifest(&path, &next).unwrap();
        assert_eq!(load_manifest(&path).unwrap().unwrap(), next);
        let _ = std::fs::remove_file(&path);
    }
}
