//! Little-endian payload encoding primitives and checksummed framing.
//!
//! Scalars are fixed-width little-endian; `f64`s travel as IEEE-754 bit
//! patterns (bit-exact round trips); sequences are `u64`-length-prefixed.
//! Every [`Reader`] accessor bounds-checks before touching the buffer and
//! validates declared sequence lengths against the bytes actually remaining,
//! so corrupt length fields fail cleanly instead of over-allocating.
//!
//! [`write_frame`] / [`read_frame`] wrap one payload in the shared frame
//! format used by streaming consumers (the WAL's cousins and the `ustr-net`
//! wire protocol): a `u32` payload length, the payload, and an FNV-1a 64-bit
//! checksum trailer. Reading is total: truncation mid-frame, a length above
//! the caller's limit, and a checksum mismatch are all clean [`StoreError`]s,
//! and end-of-stream *between* frames is a well-formed `None`.

use std::io::{Read, Write};

use crate::StoreError;

/// Byte overhead of one frame around its payload: the `u32` length prefix
/// plus the `u64` FNV-1a checksum trailer.
pub const FRAME_OVERHEAD: usize = 4 + 8;

/// Writes one frame: `u32` payload length (little-endian), the payload
/// bytes, and the payload's FNV-1a 64-bit checksum (little-endian).
pub fn write_frame(mut out: impl Write, payload: &[u8]) -> Result<(), StoreError> {
    let len = u32::try_from(payload.len()).map_err(|_| StoreError::Corrupt {
        detail: format!("frame payload of {} bytes exceeds u32::MAX", payload.len()),
    })?;
    out.write_all(&len.to_le_bytes())?;
    out.write_all(payload)?;
    out.write_all(&crate::fnv1a(payload).to_le_bytes())?;
    Ok(())
}

/// Fills `buf` from `input`; `Ok(0)` on immediate end-of-stream, an error on
/// end-of-stream after a partial read (a torn frame is never returned).
fn read_exact_or_eof(
    mut input: impl Read,
    buf: &mut [u8],
    context: &'static str,
) -> Result<usize, StoreError> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(0),
            Ok(0) => return Err(StoreError::Truncated { context }),
            Ok(n) => filled += n,
            // A signal mid-read is not end-of-stream: retry, exactly as
            // `Read::read_exact` does.
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

/// Reads one frame written by [`write_frame`]. Returns `Ok(None)` on a clean
/// end-of-stream at a frame boundary; a stream ending mid-frame is
/// [`StoreError::Truncated`], a declared length above `max_payload_len` is
/// [`StoreError::Corrupt`] (over-allocation guard — the oversized body is
/// **not** read), and a checksum mismatch is
/// [`StoreError::ChecksumMismatch`].
pub fn read_frame(
    mut input: impl Read,
    max_payload_len: usize,
) -> Result<Option<Vec<u8>>, StoreError> {
    let mut len_buf = [0u8; 4];
    if read_exact_or_eof(&mut input, &mut len_buf, "frame length")? == 0 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_payload_len {
        return Err(StoreError::Corrupt {
            detail: format!(
                "frame payload of {len} bytes exceeds the {max_payload_len}-byte limit"
            ),
        });
    }
    let mut payload = vec![0u8; len];
    if len > 0 && read_exact_or_eof(&mut input, &mut payload, "frame payload")? == 0 {
        return Err(StoreError::Truncated {
            context: "frame payload",
        });
    }
    let mut sum_buf = [0u8; 8];
    if read_exact_or_eof(&mut input, &mut sum_buf, "frame checksum")? == 0 {
        return Err(StoreError::Truncated {
            context: "frame checksum",
        });
    }
    if u64::from_le_bytes(sum_buf) != crate::fnv1a(&payload) {
        return Err(StoreError::ChecksumMismatch);
    }
    Ok(Some(payload))
}

/// Append-only payload buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Length-prefixed raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed `u32` sequence.
    pub fn put_u32s(&mut self, v: &[u32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Length-prefixed `u64` sequence.
    pub fn put_u64s(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Length-prefixed `f64` sequence (bit patterns).
    pub fn put_f64s(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }
}

/// Bounds-checked payload cursor.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated { context });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1, "u8")?[0])
    }

    pub fn get_bool(&mut self) -> Result<bool, StoreError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::Corrupt {
                detail: format!("invalid bool byte {other}"),
            }),
        }
    }

    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// A `u64` that must fit in `usize`.
    pub fn get_usize(&mut self) -> Result<usize, StoreError> {
        usize::try_from(self.get_u64()?).map_err(|_| StoreError::Corrupt {
            detail: "value exceeds the platform word size".into(),
        })
    }

    pub fn get_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// A sequence length whose elements occupy at least `min_elem_bytes`
    /// each; rejects lengths that could not possibly fit in the remaining
    /// input (over-allocation guard for corrupt length fields).
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, StoreError> {
        let len = self.get_usize()?;
        if len.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(StoreError::Truncated {
                context: "sequence length",
            });
        }
        Ok(len)
    }

    /// Length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, StoreError> {
        let len = self.get_len(1)?;
        Ok(self.take(len, "byte sequence")?.to_vec())
    }

    /// Length-prefixed `u32` sequence.
    pub fn get_u32s(&mut self) -> Result<Vec<u32>, StoreError> {
        let len = self.get_len(4)?;
        let raw = self.take(len * 4, "u32 sequence")?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Length-prefixed `u64` sequence.
    pub fn get_u64s(&mut self) -> Result<Vec<u64>, StoreError> {
        let len = self.get_len(8)?;
        let raw = self.take(len * 8, "u64 sequence")?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Length-prefixed `f64` sequence (bit patterns).
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, StoreError> {
        let len = self.get_len(8)?;
        let raw = self.take(len * 8, "f64 sequence")?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_sequences_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(123_456);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.25);
        w.put_bytes(b"hello");
        w.put_u32s(&[1, 2, 3]);
        w.put_u64s(&[u64::MAX, 0]);
        w.put_f64s(&[1.5, f64::NEG_INFINITY]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 123_456);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap(), -0.25);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_u32s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u64s().unwrap(), vec![u64::MAX, 0]);
        let f = r.get_f64s().unwrap();
        assert_eq!(f[0], 1.5);
        assert!(f[1].is_infinite());
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_detected_not_panicked() {
        let mut w = Writer::new();
        w.put_u32s(&[1, 2, 3, 4]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.get_u32s().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn oversized_length_field_is_rejected() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // a sequence length no buffer can satisfy
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_u32s(), Err(StoreError::Truncated { .. })));
    }

    #[test]
    fn invalid_bool_is_corrupt() {
        let mut r = Reader::new(&[2u8]);
        assert!(matches!(r.get_bool(), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"first").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, &[0xABu8; 300]).unwrap();
        let mut cursor = &stream[..];
        assert_eq!(read_frame(&mut cursor, 1024).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut cursor, 1024).unwrap().unwrap(), b"");
        assert_eq!(
            read_frame(&mut cursor, 1024).unwrap().unwrap(),
            vec![0xAB; 300]
        );
        // Clean end-of-stream at a frame boundary.
        assert!(read_frame(&mut cursor, 1024).unwrap().is_none());
    }

    #[test]
    fn truncated_frames_error_at_every_cut() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"payload bytes").unwrap();
        for cut in 1..stream.len() {
            let mut cursor = &stream[..cut];
            assert!(
                matches!(
                    read_frame(&mut cursor, 1024),
                    Err(StoreError::Truncated { .. })
                ),
                "cut at {cut} must be a clean truncation error"
            );
        }
    }

    #[test]
    fn oversize_frame_length_is_rejected_without_reading_the_body() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&u32::MAX.to_le_bytes());
        // No body at all: the length check must fire before any body read.
        let mut cursor = &stream[..];
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn flipped_frame_byte_fails_the_checksum() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"sensitive").unwrap();
        for at in 4..4 + 9 {
            let mut mutated = stream.clone();
            mutated[at] ^= 0x40;
            let mut cursor = &mutated[..];
            assert!(
                matches!(
                    read_frame(&mut cursor, 1024),
                    Err(StoreError::ChecksumMismatch)
                ),
                "flip at {at} must fail the checksum"
            );
        }
    }
}
