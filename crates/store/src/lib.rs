//! Versioned binary snapshots for the uncertain-string indexes.
//!
//! The paper's indexes are built once and queried many times; this crate
//! makes the "built once" part durable. [`Snapshot::save`] serializes the
//! query-critical state of an [`Index`], [`SpecialIndex`], [`ListingIndex`],
//! or [`ApproxIndex`] — the source model, the transformed text with its
//! position mapping, the suffix substrate as a `(text, SA, LCP)` triple, the
//! cumulative log-probability prefix sums, and every per-level RMQ table
//! (champion indices + duplicate masks; for the approximate index, the
//! ε-refined sub-link table instead) — and [`Snapshot::load`] reassembles
//! an index that answers **byte-identical** query results, skipping the
//! expensive construction passes (the Lemma-2 transform, SA-IS, and the
//! level mask sweeps).
//!
//! Beyond single indexes, the [`collection`] module defines a one-file
//! container for a whole document collection (manifest + per-section
//! checksums) — the primary persistence path of the `ustr-service` serving
//! layer.
//!
//! # Snapshot container format
//!
//! Every snapshot is a 32-byte header followed by one payload:
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0  | 8 | magic `"USTRSNAP"` |
//! | 8  | 4 | format version, `u32` little-endian (currently 2) |
//! | 12 | 1 | index kind: 1 = `Index`, 2 = `SpecialIndex`, 3 = `ListingIndex`, 4 = `ApproxIndex` |
//! | 13 | 3 | reserved, must be zero |
//! | 16 | 8 | payload length in bytes, `u64` little-endian |
//! | 24 | 8 | FNV-1a 64-bit checksum of the payload |
//! | 32 | …  | payload |
//!
//! All payload integers are little-endian; `f64`s are stored as their IEEE-754
//! bit patterns (so probabilities and prefix sums survive round-trips
//! bit-exactly); variable-length sequences are length-prefixed with a `u64`.
//!
//! # Versioning policy
//!
//! The format version is bumped whenever the payload layout changes in any
//! way. Readers accept exactly their own version — a snapshot written by a
//! different version fails with [`StoreError::UnsupportedVersion`] instead of
//! being misdecoded; rebuilding from source data is always possible and is
//! the supported migration path. The reserved header bytes allow future flags
//! without disturbing the field offsets.
//!
//! # Failure model
//!
//! Loading never panics on bad input: wrong magic, a foreign version, a
//! kind mismatch, truncation, checksum failures, and structurally
//! inconsistent (but well-checksummed) payloads all surface as
//! [`StoreError`] values.
//!
//! ```
//! use ustr_core::Index;
//! use ustr_store::Snapshot;
//! use ustr_uncertain::UncertainString;
//!
//! let s = UncertainString::parse("Q:.7,S:.3 | Q:.3,P:.7 | P | A:.4,F:.3,P:.2,Q:.1").unwrap();
//! let built = Index::build(&s, 0.1).unwrap();
//!
//! let mut bytes = Vec::new();
//! built.write_snapshot(&mut bytes).unwrap();
//! let loaded = Index::read_snapshot(&bytes[..]).unwrap();
//!
//! assert_eq!(
//!     built.query(b"QP", 0.2).unwrap().hits(),
//!     loaded.query(b"QP", 0.2).unwrap().hits(),
//! );
//! ```

#![forbid(unsafe_code)]

pub mod collection;
mod error;
pub mod io;
pub mod wal;
pub mod wire;

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use ustr_core::snapshot::{
    ApproxIndexState, ApproxLinkState, CumState, IndexState, ListingIndexState, SpecialIndexState,
    TreeState,
};
use ustr_core::{
    ApproxIndex, BuildStats, Index, LevelsParts, ListingIndex, LongLevelParts, ShortLevelParts,
    SpecialIndex,
};
use ustr_uncertain::{Correlation, SpecialUncertainString, Transformed, UncertainString};

pub use collection::{
    read_collection, read_collection_manifest, write_collection, Collection, CollectionManifest,
    CollectionSection, ManifestEntry, COLLECTION_MAGIC, COLLECTION_VERSION,
};
pub use error::StoreError;
pub use io::{RealIo, StoreFile, StoreIo};
pub use wal::{
    fsync_parent_dir, fsync_parent_dir_with, load_manifest, load_manifest_with, read_wal,
    read_wal_bytes, read_wal_with, replace_wal_file, replace_wal_file_with, save_manifest,
    save_manifest_with, write_wal_file, write_wal_file_with, LiveManifest, SegmentMeta, WalOp,
    WalRecord, WalReplay, WalWriter, WAL_MAGIC, WAL_VERSION,
};
pub use wire::{read_frame, write_frame, Reader, Writer, FRAME_OVERHEAD};

/// The 8-byte magic prefix of every snapshot file.
pub const MAGIC: [u8; 8] = *b"USTRSNAP";

/// Current snapshot format version (see the crate docs for the policy).
/// Version 2 added the `ApproxIndex` record kind.
pub const FORMAT_VERSION: u32 = 2;

/// Total header size in bytes.
pub const HEADER_LEN: usize = 32;

/// Which index type a snapshot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A general substring [`Index`].
    Index = 1,
    /// A [`SpecialIndex`].
    Special = 2,
    /// A [`ListingIndex`].
    Listing = 3,
    /// An [`ApproxIndex`].
    Approx = 4,
}

impl SnapshotKind {
    pub(crate) fn from_byte(b: u8) -> Result<Self, StoreError> {
        match b {
            1 => Ok(SnapshotKind::Index),
            2 => Ok(SnapshotKind::Special),
            3 => Ok(SnapshotKind::Listing),
            4 => Ok(SnapshotKind::Approx),
            other => Err(StoreError::UnknownKind { found: other }),
        }
    }
}

/// FNV-1a 64-bit hash (the payload checksum).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Parsed snapshot header.
#[derive(Debug, Clone, Copy)]
pub struct Header {
    /// Format version the snapshot was written with.
    pub version: u32,
    /// Index type held by the payload.
    pub kind: SnapshotKind,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// FNV-1a checksum of the payload.
    pub checksum: u64,
}

impl Header {
    /// Parses and validates the fixed-size header (magic, version, kind).
    pub fn parse(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Truncated {
                context: "snapshot header",
            });
        }
        if bytes[0..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let kind = SnapshotKind::from_byte(bytes[12])?;
        if bytes[13..16] != [0, 0, 0] {
            return Err(StoreError::Corrupt {
                detail: "reserved header bytes are not zero".into(),
            });
        }
        let payload_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let checksum = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        Ok(Self {
            version,
            kind,
            payload_len,
            checksum,
        })
    }
}

/// Reads a snapshot's header without decoding its payload (e.g. to discover
/// which index type a file holds).
pub fn read_header(path: impl AsRef<Path>) -> Result<Header, StoreError> {
    let mut file = File::open(path)?;
    let mut buf = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = file.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    Header::parse(&buf[..filled])
}

/// Save/load support for an index type.
///
/// The provided methods wrap the type-specific payload codec in the common
/// container: header, length, checksum. `save`/`load` are the file-path
/// conveniences over `write_snapshot`/`read_snapshot`.
pub trait Snapshot: Sized {
    /// The kind byte identifying this index type in the header.
    const KIND: SnapshotKind;

    /// Encodes the payload (no header) into `w`.
    fn encode_payload(&self, w: &mut Writer);

    /// Decodes the payload (no header) and reassembles the index.
    fn decode_payload(r: &mut Reader<'_>) -> Result<Self, StoreError>;

    /// Writes a complete snapshot (header + checksummed payload).
    fn write_snapshot(&self, mut out: impl Write) -> Result<(), StoreError> {
        let mut w = Writer::new();
        self.encode_payload(&mut w);
        let payload = w.into_bytes();
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.push(Self::KIND as u8);
        header.extend_from_slice(&[0, 0, 0]);
        header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        header.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.write_all(&header)?;
        out.write_all(&payload)?;
        Ok(())
    }

    /// Reads a complete snapshot, verifying magic, version, kind, length,
    /// and checksum before decoding.
    fn read_snapshot(mut input: impl Read) -> Result<Self, StoreError> {
        let mut bytes = Vec::new();
        input.read_to_end(&mut bytes)?;
        let header = Header::parse(&bytes)?;
        if header.kind != Self::KIND {
            return Err(StoreError::KindMismatch {
                expected: Self::KIND as u8,
                found: header.kind as u8,
            });
        }
        let payload = &bytes[HEADER_LEN..];
        if payload.len() as u64 != header.payload_len {
            return Err(StoreError::Truncated {
                context: "snapshot payload",
            });
        }
        if fnv1a(payload) != header.checksum {
            return Err(StoreError::ChecksumMismatch);
        }
        let mut r = Reader::new(payload);
        let value = Self::decode_payload(&mut r)?;
        if !r.is_exhausted() {
            return Err(StoreError::Corrupt {
                detail: "trailing bytes after payload".into(),
            });
        }
        Ok(value)
    }

    /// Saves a snapshot to `path` (buffered).
    fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        self.write_snapshot(&mut out)?;
        out.flush()?;
        Ok(())
    }

    /// [`Snapshot::save`] through an injectable [`StoreIo`].
    fn save_with(&self, io: &dyn StoreIo, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let file = io.create(path.as_ref())?;
        let mut out = BufWriter::new(file);
        self.write_snapshot(&mut out)?;
        out.flush()?;
        Ok(())
    }

    /// Loads a snapshot from `path` (buffered).
    fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let file = File::open(path)?;
        Self::read_snapshot(BufReader::new(file))
    }

    /// [`Snapshot::load`] through an injectable [`StoreIo`]. A missing
    /// file surfaces as [`StoreError::Io`] with `NotFound`, matching
    /// [`Snapshot::load`].
    fn load_with(io: &dyn StoreIo, path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let Some(bytes) = io.read(path)? else {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("snapshot file {} does not exist", path.display()),
            )));
        };
        Self::read_snapshot(&bytes[..])
    }
}

// ---------------------------------------------------------------------------
// Payload codecs for the shared building blocks.
// ---------------------------------------------------------------------------

pub(crate) fn encode_uncertain_string(w: &mut Writer, s: &UncertainString) {
    w.put_u64(s.len() as u64);
    for pos in s.positions() {
        let choices = pos.choices();
        w.put_u32(choices.len() as u32);
        for &(c, p) in choices {
            w.put_u8(c);
            w.put_f64(p);
        }
    }
    let correlations: Vec<&Correlation> = s.correlations().iter().collect();
    w.put_u64(correlations.len() as u64);
    for corr in correlations {
        w.put_u64(corr.subject_pos as u64);
        w.put_u8(corr.subject_char);
        w.put_u64(corr.cond_pos as u64);
        w.put_u8(corr.cond_char);
        w.put_f64(corr.p_present);
        w.put_f64(corr.p_absent);
    }
}

fn decode_correlation(r: &mut Reader<'_>) -> Result<Correlation, StoreError> {
    Ok(Correlation {
        subject_pos: r.get_usize()?,
        subject_char: r.get_u8()?,
        cond_pos: r.get_usize()?,
        cond_char: r.get_u8()?,
        p_present: r.get_f64()?,
        p_absent: r.get_f64()?,
    })
}

pub(crate) fn decode_uncertain_string(r: &mut Reader<'_>) -> Result<UncertainString, StoreError> {
    let n = r.get_len(1)?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let k = r.get_u32()? as usize;
        if k.saturating_mul(9) > r.remaining() {
            return Err(StoreError::Truncated {
                context: "uncertain character choices",
            });
        }
        let mut row = Vec::with_capacity(k);
        for _ in 0..k {
            let c = r.get_u8()?;
            let p = r.get_f64()?;
            row.push((c, p));
        }
        rows.push(row);
    }
    let mut s = UncertainString::from_rows(rows)?;
    let num_corr = r.get_len(27)?;
    if num_corr > 0 {
        let mut set = ustr_uncertain::CorrelationSet::new();
        for _ in 0..num_corr {
            set.add(decode_correlation(r)?)?;
        }
        s.set_correlations(set)?;
    }
    Ok(s)
}

fn encode_special(w: &mut Writer, x: &SpecialUncertainString) {
    w.put_bytes(x.chars());
    w.put_f64s(x.probs());
}

fn decode_special(r: &mut Reader<'_>) -> Result<SpecialUncertainString, StoreError> {
    let chars = r.get_bytes()?;
    let probs = r.get_f64s()?;
    Ok(SpecialUncertainString::new(chars, probs)?)
}

fn encode_transformed(w: &mut Writer, t: &Transformed) {
    encode_special(w, &t.special);
    w.put_u32s(&t.pos);
    w.put_f64(t.tau_min);
    w.put_u64(t.num_factors as u64);
    w.put_u64(t.source_len as u64);
}

fn decode_transformed(r: &mut Reader<'_>) -> Result<Transformed, StoreError> {
    Ok(Transformed {
        special: decode_special(r)?,
        pos: r.get_u32s()?,
        tau_min: r.get_f64()?,
        num_factors: r.get_usize()?,
        source_len: r.get_usize()?,
    })
}

fn encode_tree(w: &mut Writer, t: &TreeState) {
    w.put_bytes(&t.text);
    w.put_u32s(&t.sa);
    w.put_u32s(&t.lcp);
}

fn decode_tree(r: &mut Reader<'_>) -> Result<TreeState, StoreError> {
    Ok(TreeState {
        text: r.get_bytes()?,
        sa: r.get_u32s()?,
        lcp: r.get_u32s()?,
    })
}

fn encode_cum(w: &mut Writer, c: &CumState) {
    w.put_f64s(&c.prefix);
    w.put_u32s(&c.sentinels);
}

fn decode_cum(r: &mut Reader<'_>) -> Result<CumState, StoreError> {
    Ok(CumState {
        prefix: r.get_f64s()?,
        sentinels: r.get_u32s()?,
    })
}

fn encode_levels(w: &mut Writer, l: &LevelsParts) {
    w.put_u64(l.max_short as u64);
    w.put_u64(l.short.len() as u64);
    for s in &l.short {
        w.put_u64s(&s.mask_words);
        w.put_u64(s.block_size as u64);
        w.put_u32s(&s.champions);
    }
    w.put_u64(l.long.len() as u64);
    for lv in &l.long {
        w.put_u64(lv.len as u64);
        w.put_u64(lv.block_size as u64);
        w.put_u32s(&lv.champions);
    }
}

fn decode_levels(r: &mut Reader<'_>) -> Result<LevelsParts, StoreError> {
    let max_short = r.get_usize()?;
    let num_short = r.get_len(8)?;
    let mut short = Vec::with_capacity(num_short);
    for _ in 0..num_short {
        short.push(ShortLevelParts {
            mask_words: r.get_u64s()?,
            block_size: r.get_usize()?,
            champions: r.get_u32s()?,
        });
    }
    let num_long = r.get_len(8)?;
    let mut long = Vec::with_capacity(num_long);
    for _ in 0..num_long {
        long.push(LongLevelParts {
            len: r.get_usize()?,
            block_size: r.get_usize()?,
            champions: r.get_u32s()?,
        });
    }
    Ok(LevelsParts {
        max_short,
        short,
        long,
    })
}

fn encode_stats(w: &mut Writer, s: &BuildStats) {
    w.put_u64(s.source_len as u64);
    w.put_u64(s.transformed_len as u64);
    w.put_u64(s.num_factors as u64);
    w.put_u64(s.build_time.as_nanos().min(u64::MAX as u128) as u64);
    w.put_u64(s.heap_bytes as u64);
}

fn decode_stats(r: &mut Reader<'_>) -> Result<BuildStats, StoreError> {
    Ok(BuildStats {
        source_len: r.get_usize()?,
        transformed_len: r.get_usize()?,
        num_factors: r.get_usize()?,
        build_time: std::time::Duration::from_nanos(r.get_u64()?),
        heap_bytes: r.get_usize()?,
    })
}

// ---------------------------------------------------------------------------
// Snapshot impls for the three index types.
// ---------------------------------------------------------------------------

impl Snapshot for Index {
    const KIND: SnapshotKind = SnapshotKind::Index;

    fn encode_payload(&self, w: &mut Writer) {
        let state = self.to_snapshot();
        encode_uncertain_string(w, &state.source);
        encode_transformed(w, &state.transformed);
        encode_tree(w, &state.tree);
        encode_cum(w, &state.cum);
        encode_levels(w, &state.levels);
        w.put_f64(state.tau_min);
        w.put_bool(state.dedup_enabled);
        encode_stats(w, &state.stats);
    }

    fn decode_payload(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let state = IndexState {
            source: decode_uncertain_string(r)?,
            transformed: decode_transformed(r)?,
            tree: decode_tree(r)?,
            cum: decode_cum(r)?,
            levels: decode_levels(r)?,
            tau_min: r.get_f64()?,
            dedup_enabled: r.get_bool()?,
            stats: decode_stats(r)?,
        };
        Ok(Index::from_snapshot(state)?)
    }
}

impl Snapshot for SpecialIndex {
    const KIND: SnapshotKind = SnapshotKind::Special;

    fn encode_payload(&self, w: &mut Writer) {
        let state = self.to_snapshot();
        encode_special(w, &state.special);
        w.put_u64(state.correlations.len() as u64);
        for corr in &state.correlations {
            w.put_u64(corr.subject_pos as u64);
            w.put_u8(corr.subject_char);
            w.put_u64(corr.cond_pos as u64);
            w.put_u8(corr.cond_char);
            w.put_f64(corr.p_present);
            w.put_f64(corr.p_absent);
        }
        encode_tree(w, &state.tree);
        encode_cum(w, &state.cum);
        encode_levels(w, &state.levels);
        encode_stats(w, &state.stats);
    }

    fn decode_payload(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let special = decode_special(r)?;
        let num_corr = r.get_len(27)?;
        let mut correlations = Vec::with_capacity(num_corr);
        for _ in 0..num_corr {
            correlations.push(decode_correlation(r)?);
        }
        let state = SpecialIndexState {
            special,
            correlations,
            tree: decode_tree(r)?,
            cum: decode_cum(r)?,
            levels: decode_levels(r)?,
            stats: decode_stats(r)?,
        };
        Ok(SpecialIndex::from_snapshot(state)?)
    }
}

impl Snapshot for ListingIndex {
    const KIND: SnapshotKind = SnapshotKind::Listing;

    fn encode_payload(&self, w: &mut Writer) {
        let state = self.to_snapshot();
        w.put_u64(state.docs.len() as u64);
        for doc in &state.docs {
            encode_uncertain_string(w, doc);
        }
        encode_tree(w, &state.tree);
        encode_cum(w, &state.cum);
        encode_levels(w, &state.levels);
        w.put_u32s(&state.doc_of);
        w.put_u32s(&state.src_of);
        w.put_u32s(&state.doc_base);
        w.put_f64(state.tau_min);
        encode_stats(w, &state.stats);
    }

    fn decode_payload(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let num_docs = r.get_len(9)?;
        let mut docs = Vec::with_capacity(num_docs);
        for _ in 0..num_docs {
            docs.push(decode_uncertain_string(r)?);
        }
        let state = ListingIndexState {
            docs,
            tree: decode_tree(r)?,
            cum: decode_cum(r)?,
            levels: decode_levels(r)?,
            doc_of: r.get_u32s()?,
            src_of: r.get_u32s()?,
            doc_base: r.get_u32s()?,
            tau_min: r.get_f64()?,
            stats: decode_stats(r)?,
        };
        Ok(ListingIndex::from_snapshot(state)?)
    }
}

impl Snapshot for ApproxIndex {
    const KIND: SnapshotKind = SnapshotKind::Approx;

    fn encode_payload(&self, w: &mut Writer) {
        let state = self.to_snapshot();
        encode_transformed(w, &state.transformed);
        encode_tree(w, &state.tree);
        encode_cum(w, &state.cum);
        w.put_u64(state.links.len() as u64);
        for link in &state.links {
            w.put_u32(link.origin_pre);
            w.put_u32(link.origin_depth);
            w.put_u32(link.target_depth);
            w.put_u32(link.source_pos);
            w.put_f64(link.prob);
        }
        w.put_f64(state.epsilon);
        w.put_f64(state.tau_min);
        encode_stats(w, &state.stats);
    }

    fn decode_payload(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let transformed = decode_transformed(r)?;
        let tree = decode_tree(r)?;
        let cum = decode_cum(r)?;
        let num_links = r.get_len(24)?;
        let mut links = Vec::with_capacity(num_links);
        for _ in 0..num_links {
            links.push(ApproxLinkState {
                origin_pre: r.get_u32()?,
                origin_depth: r.get_u32()?,
                target_depth: r.get_u32()?,
                source_pos: r.get_u32()?,
                prob: r.get_f64()?,
            });
        }
        let state = ApproxIndexState {
            transformed,
            tree,
            cum,
            links,
            epsilon: r.get_f64()?,
            tau_min: r.get_f64()?,
            stats: decode_stats(r)?,
        };
        Ok(ApproxIndex::from_snapshot(state)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> Index {
        let s = UncertainString::parse("Q:.7,S:.3 | Q:.3,P:.7 | P | A:.4,F:.3,P:.2,Q:.1").unwrap();
        Index::build(&s, 0.1).unwrap()
    }

    #[test]
    fn header_survives_round_trip() {
        let mut bytes = Vec::new();
        sample_index().write_snapshot(&mut bytes).unwrap();
        let header = Header::parse(&bytes).unwrap();
        assert_eq!(header.version, FORMAT_VERSION);
        assert_eq!(header.kind, SnapshotKind::Index);
        assert_eq!(header.payload_len as usize, bytes.len() - HEADER_LEN);
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let mut bytes = Vec::new();
        sample_index().write_snapshot(&mut bytes).unwrap();
        let Err(err) = SpecialIndex::read_snapshot(&bytes[..]) else {
            panic!("wrong kind must fail");
        };
        assert!(matches!(err, StoreError::KindMismatch { .. }), "{err:?}");
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let mut bytes = Vec::new();
        sample_index().write_snapshot(&mut bytes).unwrap();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0xFF;
        let Err(err) = Index::read_snapshot(&bytes[..]) else {
            panic!("corrupt payload must fail");
        };
        assert!(matches!(err, StoreError::ChecksumMismatch), "{err:?}");
    }

    #[test]
    fn listing_snapshot_round_trips() {
        let docs = vec![
            UncertainString::parse("A:.4,B:.3,F:.3 | B:.3,L:.3,F:.3,J:.1 | F:.5,J:.5").unwrap(),
            UncertainString::parse("A:.6,C:.4 | B:.5,F:.3,E:.2 | B:.4,C:.3,P:.2,F:.1").unwrap(),
        ];
        let built = ListingIndex::build(&docs, 0.05).unwrap();
        let mut bytes = Vec::new();
        built.write_snapshot(&mut bytes).unwrap();
        let loaded = ListingIndex::read_snapshot(&bytes[..]).unwrap();
        for pattern in [&b"BF"[..], b"A", b"F", b"ZZ"] {
            for tau in [0.05, 0.1, 0.3] {
                assert_eq!(
                    built.query(pattern, tau).unwrap(),
                    loaded.query(pattern, tau).unwrap(),
                    "pattern {pattern:?} tau {tau}"
                );
            }
        }
        assert_eq!(built.num_docs(), loaded.num_docs());
    }

    #[test]
    fn approx_snapshot_round_trips() {
        let s = UncertainString::parse(
            "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 | \
             I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
        )
        .unwrap();
        let built = ApproxIndex::build(&s, 0.02, 0.03).unwrap();
        let mut bytes = Vec::new();
        built.write_snapshot(&mut bytes).unwrap();
        let header = Header::parse(&bytes).unwrap();
        assert_eq!(header.kind, SnapshotKind::Approx);
        let loaded = ApproxIndex::read_snapshot(&bytes[..]).unwrap();
        assert_eq!(built.num_links(), loaded.num_links());
        for pattern in [&b"AT"[..], b"PQ", b"SFPQ", b"PA", b"FPQP"] {
            for tau in [0.05, 0.12, 0.3, 0.5] {
                assert_eq!(
                    built.query(pattern, tau).unwrap().hits(),
                    loaded.query(pattern, tau).unwrap().hits(),
                );
            }
        }
    }

    #[test]
    fn special_snapshot_round_trips() {
        let x = SpecialUncertainString::new(b"banana".to_vec(), vec![0.4, 0.7, 0.5, 0.8, 0.9, 0.6])
            .unwrap();
        let built = SpecialIndex::build(&x).unwrap();
        let mut bytes = Vec::new();
        built.write_snapshot(&mut bytes).unwrap();
        let loaded = SpecialIndex::read_snapshot(&bytes[..]).unwrap();
        for pattern in [&b"ana"[..], b"a", b"banana", b"nan"] {
            for tau in [0.05, 0.2, 0.3, 0.5] {
                assert_eq!(
                    built.query(pattern, tau).unwrap().hits(),
                    loaded.query(pattern, tau).unwrap().hits(),
                );
            }
        }
    }
}
