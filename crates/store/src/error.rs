//! Errors surfaced by snapshot reading and writing.

use std::fmt;

/// Everything that can go wrong saving or loading a snapshot. Loading is
/// total: malformed input of any shape produces one of these variants, never
/// a panic.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem / stream error.
    Io(std::io::Error),
    /// The file does not start with the `USTRSNAP` magic.
    BadMagic,
    /// The file was written by a different format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The kind byte is not a known index type.
    UnknownKind {
        /// Byte found in the header.
        found: u8,
    },
    /// The snapshot holds a different index type than requested.
    KindMismatch {
        /// Kind byte the caller expected.
        expected: u8,
        /// Kind byte in the header.
        found: u8,
    },
    /// The input ended before the structure it encodes was complete.
    Truncated {
        /// What was being decoded when the input ran out.
        context: &'static str,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch,
    /// The payload decodes but its structure is inconsistent.
    Corrupt {
        /// Human-readable description.
        detail: String,
    },
    /// The decoded state fails the index layer's invariants.
    Index(ustr_core::Error),
    /// The decoded model data fails validation.
    Model(ustr_uncertain::ModelError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            StoreError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            StoreError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot format version {found} (this build reads version {})",
                    crate::FORMAT_VERSION
                )
            }
            StoreError::UnknownKind { found } => {
                write!(f, "unknown snapshot kind byte {found}")
            }
            StoreError::KindMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot holds kind {found}, but kind {expected} was requested"
                )
            }
            StoreError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            StoreError::ChecksumMismatch => write!(f, "snapshot payload checksum mismatch"),
            StoreError::Corrupt { detail } => write!(f, "corrupt snapshot: {detail}"),
            StoreError::Index(e) => write!(f, "snapshot state rejected: {e}"),
            StoreError::Model(e) => write!(f, "snapshot model data rejected: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Index(e) => Some(e),
            StoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<ustr_core::Error> for StoreError {
    fn from(e: ustr_core::Error) -> Self {
        StoreError::Index(e)
    }
}

impl From<ustr_uncertain::ModelError> for StoreError {
    fn from(e: ustr_uncertain::ModelError) -> Self {
        StoreError::Model(e)
    }
}
