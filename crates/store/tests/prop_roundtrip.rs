//! Property tests for the snapshot round-trip guarantee: a loaded index
//! answers *identically* (positions and exact probabilities) to the index it
//! was saved from, for random uncertain strings across τmin values — and
//! every flavour of file corruption fails with a clean error, never a panic.

use proptest::prelude::*;
use ustr_core::{ApproxIndex, Index, ListingIndex, SpecialIndex};
use ustr_store::{Snapshot, StoreError, FORMAT_VERSION, HEADER_LEN, MAGIC};
use ustr_uncertain::{SpecialUncertainString, UncertainString};

/// Random rows over {a, b, c} with 1–3 normalized choices per position.
fn rows(max_len: usize) -> impl Strategy<Value = Vec<Vec<(u8, f64)>>> {
    prop::collection::vec(
        prop::collection::vec((0u8..3, 1u32..80), 1..=3),
        1..=max_len,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|mut row| {
                row.sort_by_key(|&(c, _)| c);
                row.dedup_by_key(|&mut (c, _)| c);
                let total: u32 = row.iter().map(|&(_, w)| w).sum();
                row.into_iter()
                    .map(|(c, w)| (b'a' + c, w as f64 / total as f64))
                    .collect()
            })
            .collect()
    })
}

fn pattern(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..3, 1..=max_len)
        .prop_map(|v| v.into_iter().map(|c| b'a' + c).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// save → load → query is exact for the general index, across τmin
    /// values: positions AND probabilities are bit-identical.
    #[test]
    fn index_round_trip_is_exact(
        r in rows(14),
        p in pattern(5),
        tau_min_idx in 0usize..4,
        tau_idx in 0usize..4,
    ) {
        let tau_min = [0.02, 0.05, 0.1, 0.2][tau_min_idx];
        let tau = [0.2, 0.35, 0.5, 0.8][tau_idx];
        let s = UncertainString::from_rows(r).unwrap();
        let built = Index::build(&s, tau_min).unwrap();
        let mut bytes = Vec::new();
        built.write_snapshot(&mut bytes).unwrap();
        let loaded = Index::read_snapshot(&bytes[..]).unwrap();

        let a = built.query(&p, tau).unwrap();
        let b = loaded.query(&p, tau).unwrap();
        prop_assert_eq!(a.hits(), b.hits(), "threshold query diverged");

        // Top-k agrees too (exercises the RMQ levels directly).
        let ta = built.query_top_k(&p, 5).unwrap();
        let tb = loaded.query_top_k(&p, 5).unwrap();
        prop_assert_eq!(ta, tb, "top-k diverged");

        // Metadata survives.
        prop_assert_eq!(built.tau_min().to_bits(), loaded.tau_min().to_bits());
        prop_assert_eq!(built.stats().transformed_len, loaded.stats().transformed_len);
    }

    /// The special index round-trips exactly.
    #[test]
    fn special_round_trip_is_exact(
        r in rows(12),
        p in pattern(4),
        tau_idx in 0usize..3,
    ) {
        let tau = [0.1, 0.3, 0.6][tau_idx];
        // Collapse each row to its most probable choice: a valid special
        // string with varied probabilities.
        let s = UncertainString::from_rows(r).unwrap();
        let chars: Vec<u8> = (0..s.len()).map(|i| s.position(i).most_probable().0).collect();
        let probs: Vec<f64> = (0..s.len()).map(|i| s.position(i).most_probable().1).collect();
        let x = SpecialUncertainString::new(chars, probs).unwrap();
        let built = SpecialIndex::build(&x).unwrap();
        let mut bytes = Vec::new();
        built.write_snapshot(&mut bytes).unwrap();
        let loaded = SpecialIndex::read_snapshot(&bytes[..]).unwrap();
        prop_assert_eq!(
            built.query(&p, tau).unwrap().hits(),
            loaded.query(&p, tau).unwrap().hits()
        );
    }

    /// The listing index round-trips exactly (docs, relevances, top-k).
    #[test]
    fn listing_round_trip_is_exact(
        docs in prop::collection::vec(rows(8), 1..5),
        p in pattern(3),
        tau_idx in 0usize..3,
    ) {
        let tau = [0.1, 0.25, 0.5][tau_idx];
        let docs: Vec<UncertainString> = docs
            .into_iter()
            .map(|r| UncertainString::from_rows(r).unwrap())
            .collect();
        let built = ListingIndex::build(&docs, 0.05).unwrap();
        let mut bytes = Vec::new();
        built.write_snapshot(&mut bytes).unwrap();
        let loaded = ListingIndex::read_snapshot(&bytes[..]).unwrap();
        prop_assert_eq!(
            built.query(&p, tau).unwrap(),
            loaded.query(&p, tau).unwrap()
        );
        prop_assert_eq!(
            built.query_top_k(&p, 3).unwrap(),
            loaded.query_top_k(&p, 3).unwrap()
        );
    }

    /// The approximate index round-trips byte-identically: positions AND
    /// reported (ε-approximate) probabilities, across ε and τ values — both
    /// through `to_snapshot`/`from_snapshot` directly and through the full
    /// byte encoding.
    #[test]
    fn approx_round_trip_is_exact(
        r in rows(14),
        p in pattern(4),
        eps_idx in 0usize..3,
        tau_idx in 0usize..4,
    ) {
        let epsilon = [0.02, 0.05, 0.2][eps_idx];
        let tau = [0.1, 0.25, 0.5, 0.8][tau_idx];
        let s = UncertainString::from_rows(r).unwrap();
        let built = ApproxIndex::build(&s, 0.05, epsilon).unwrap();

        let reassembled = ApproxIndex::from_snapshot(built.to_snapshot()).unwrap();
        prop_assert_eq!(
            built.query(&p, tau).unwrap().hits(),
            reassembled.query(&p, tau).unwrap().hits(),
            "state round-trip diverged"
        );

        let mut bytes = Vec::new();
        built.write_snapshot(&mut bytes).unwrap();
        let loaded = ApproxIndex::read_snapshot(&bytes[..]).unwrap();
        let a = built.query(&p, tau).unwrap();
        let b = loaded.query(&p, tau).unwrap();
        prop_assert_eq!(a.hits(), b.hits(), "byte round-trip diverged");
        for (&(_, pa), &(_, pb)) in a.hits().iter().zip(b.hits().iter()) {
            prop_assert_eq!(pa.to_bits(), pb.to_bits(), "probabilities not bit-exact");
        }
        prop_assert_eq!(built.num_links(), loaded.num_links());
        prop_assert_eq!(built.epsilon().to_bits(), loaded.epsilon().to_bits());
        prop_assert_eq!(built.tau_min().to_bits(), loaded.tau_min().to_bits());
    }

    /// Every truncation point of a valid approx snapshot fails cleanly.
    #[test]
    fn approx_truncation_always_errors(r in rows(8), cut_seed in 0u32..10_000) {
        let s = UncertainString::from_rows(r).unwrap();
        let built = ApproxIndex::build(&s, 0.1, 0.1).unwrap();
        let mut bytes = Vec::new();
        built.write_snapshot(&mut bytes).unwrap();
        let cut = cut_seed as usize % bytes.len();
        prop_assert!(
            ApproxIndex::read_snapshot(&bytes[..cut]).is_err(),
            "prefix of {} bytes must not load", cut
        );
    }

    /// Every truncation point of a valid snapshot fails cleanly (no panic,
    /// no bogus success).
    #[test]
    fn truncation_always_errors(r in rows(8), cut_seed in 0u32..10_000) {
        let s = UncertainString::from_rows(r).unwrap();
        let built = Index::build(&s, 0.1).unwrap();
        let mut bytes = Vec::new();
        built.write_snapshot(&mut bytes).unwrap();
        let cut = cut_seed as usize % bytes.len();
        prop_assert!(
            Index::read_snapshot(&bytes[..cut]).is_err(),
            "prefix of {} bytes must not load", cut
        );
    }

    /// A flipped byte anywhere in the payload is caught by the checksum (or,
    /// in the header, by magic/version/kind/length validation).
    #[test]
    fn bit_flips_never_load_silently(r in rows(8), flip_seed in 0u32..10_000) {
        let s = UncertainString::from_rows(r).unwrap();
        let built = Index::build(&s, 0.1).unwrap();
        let mut bytes = Vec::new();
        built.write_snapshot(&mut bytes).unwrap();
        let baseline = built.query(b"a", 0.1).unwrap();
        let at = flip_seed as usize % bytes.len();
        bytes[at] ^= 0x40;
        match Index::read_snapshot(&bytes[..]) {
            Err(_) => {}
            Ok(loaded) => {
                // Only a flip inside the checksum field itself could still
                // load; then the payload is untouched and answers match.
                prop_assert!((24..32).contains(&at), "flip at {} loaded", at);
                prop_assert_eq!(baseline.hits(), loaded.query(b"a", 0.1).unwrap().hits());
            }
        }
    }
}

#[test]
fn bad_magic_is_a_clean_error() {
    let s = UncertainString::parse("a:.5,b:.5 | b | a").unwrap();
    let built = Index::build(&s, 0.1).unwrap();
    let mut bytes = Vec::new();
    built.write_snapshot(&mut bytes).unwrap();
    bytes[0..8].copy_from_slice(b"NOTSNAPS");
    assert!(matches!(
        Index::read_snapshot(&bytes[..]),
        Err(StoreError::BadMagic)
    ));
}

#[test]
fn wrong_version_is_a_clean_error() {
    let s = UncertainString::parse("a:.5,b:.5 | b | a").unwrap();
    let built = Index::build(&s, 0.1).unwrap();
    let mut bytes = Vec::new();
    built.write_snapshot(&mut bytes).unwrap();
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match Index::read_snapshot(&bytes[..]) {
        Err(StoreError::UnsupportedVersion { found }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
        }
        Err(other) => panic!("expected UnsupportedVersion, got {other:?}"),
        Ok(_) => panic!("foreign version must not load"),
    }
}

#[test]
fn empty_and_header_only_files_error() {
    assert!(matches!(
        Index::read_snapshot(&b""[..]),
        Err(StoreError::Truncated { .. })
    ));
    let mut header_only = Vec::new();
    header_only.extend_from_slice(&MAGIC);
    header_only.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header_only.push(1);
    header_only.extend_from_slice(&[0, 0, 0]);
    header_only.extend_from_slice(&1000u64.to_le_bytes()); // claims a payload
    header_only.extend_from_slice(&0u64.to_le_bytes());
    assert_eq!(header_only.len(), HEADER_LEN);
    assert!(Index::read_snapshot(&header_only[..]).is_err());
}

#[test]
fn save_load_files_round_trip() {
    let s = UncertainString::parse("Q:.7,S:.3 | Q:.3,P:.7 | P | A:.4,F:.3,P:.2,Q:.1").unwrap();
    let built = Index::build(&s, 0.1).unwrap();
    let path = std::env::temp_dir().join("ustr_store_prop_file.idx");
    built.save(&path).unwrap();
    let loaded = Index::load(&path).unwrap();
    assert_eq!(
        built.query(b"QP", 0.2).unwrap().hits(),
        loaded.query(b"QP", 0.2).unwrap().hits()
    );
    // Loading the wrong type from the same file fails cleanly.
    assert!(matches!(
        SpecialIndex::load(&path),
        Err(StoreError::KindMismatch { .. })
    ));
    let _ = std::fs::remove_file(&path);
}
