//! Crash-recovery property tests for the WAL: replaying a log truncated at
//! **every** byte boundary either recovers a prefix of the committed writes
//! or fails with a clean [`StoreError`] — never a panic, never a duplicate
//! sequence number, never a torn document.

use proptest::prelude::*;
use ustr_store::{read_wal_bytes, StoreError, WalOp, WalRecord, WalWriter};
use ustr_uncertain::UncertainString;

/// Strategy: a small uncertain document over {a, b, c} with random pdfs.
fn uncertain_doc(max_len: usize) -> impl Strategy<Value = UncertainString> {
    prop::collection::vec(
        prop::collection::vec((0u8..3, 1u32..100), 1..=3),
        1..=max_len,
    )
    .prop_map(|rows| {
        let rows: Vec<Vec<(u8, f64)>> = rows
            .into_iter()
            .map(|mut row| {
                row.sort_by_key(|&(c, _)| c);
                row.dedup_by_key(|&mut (c, _)| c);
                let total: u32 = row.iter().map(|&(_, w)| w).sum();
                row.into_iter()
                    .map(|(c, w)| (b'a' + c, w as f64 / total as f64))
                    .collect()
            })
            .collect();
        UncertainString::from_rows(rows).expect("normalized rows are valid")
    })
}

/// Strategy: a mixed log of inserts and deletes with strictly increasing
/// sequence numbers and never-reused document ids.
fn wal_records(max_records: usize) -> impl Strategy<Value = Vec<WalRecord>> {
    prop::collection::vec((uncertain_doc(8), 0u8..4, 1u64..4), 1..=max_records).prop_map(
        |entries| {
            let mut records = Vec::with_capacity(entries.len());
            let mut seq = 0u64;
            let mut next_doc = 0u64;
            for (body, op_kind, seq_gap) in entries {
                seq += seq_gap; // gaps are legal; regressions are not
                let op = if op_kind == 0 && next_doc > 0 {
                    WalOp::Delete { doc: next_doc - 1 }
                } else {
                    let doc = next_doc;
                    next_doc += 1;
                    WalOp::Insert { doc, body }
                };
                records.push(WalRecord { seq, op });
            }
            records
        },
    )
}

/// Writes records through the real writer and returns the file bytes.
fn committed_bytes(records: &[WalRecord]) -> Vec<u8> {
    // Unique per call: the two property tests run concurrently and would
    // otherwise collide on a pid+len-keyed filename.
    static CALLS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let call = CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let path =
        std::env::temp_dir().join(format!("ustr_prop_wal_{}_{}.wal", std::process::id(), call));
    let _ = std::fs::remove_file(&path);
    let mut w = WalWriter::create(&path).unwrap();
    for r in records {
        w.append(r).unwrap();
    }
    drop(w);
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncation at every byte boundary: a committed prefix or a clean
    /// error, with no duplicates and no torn documents.
    #[test]
    fn truncated_wal_recovers_a_prefix_or_errors(records in wal_records(6)) {
        let bytes = committed_bytes(&records);
        // Sanity: the untruncated log replays completely and cleanly.
        let full = read_wal_bytes(&bytes).unwrap();
        prop_assert!(full.clean);
        prop_assert_eq!(&full.records, &records);

        for cut in 0..bytes.len() {
            match read_wal_bytes(&bytes[..cut]) {
                Ok(replay) => {
                    // Exactly a prefix: every recovered record is one of the
                    // committed records, in order, starting from the first.
                    prop_assert!(replay.records.len() <= records.len());
                    prop_assert_eq!(
                        &replay.records[..],
                        &records[..replay.records.len()],
                        "cut at {} must recover a committed prefix", cut
                    );
                    // No duplicate sequence numbers (strictly increasing).
                    for w in replay.records.windows(2) {
                        prop_assert!(w[0].seq < w[1].seq);
                    }
                }
                Err(e) => {
                    // Clean error (header truncation); formatting must not
                    // panic either.
                    let _ = e.to_string();
                }
            }
        }
    }

    /// A flipped byte anywhere in the record stream is never silently
    /// accepted as extra data: replay errors, or recovers no more than what
    /// was committed.
    #[test]
    fn flipped_bytes_never_fabricate_records(
        records in wal_records(4),
        flip_seed in 0usize..997,
    ) {
        let bytes = committed_bytes(&records);
        let at = flip_seed % bytes.len();
        let mut mutated = bytes.clone();
        mutated[at] ^= 0xA5;
        match read_wal_bytes(&mutated) {
            Ok(replay) => {
                prop_assert!(replay.records.len() <= records.len());
                for w in replay.records.windows(2) {
                    prop_assert!(w[0].seq < w[1].seq);
                }
            }
            Err(e) => {
                prop_assert!(matches!(
                    e,
                    StoreError::ChecksumMismatch
                        | StoreError::Corrupt { .. }
                        | StoreError::Truncated { .. }
                        | StoreError::BadMagic
                        | StoreError::UnsupportedVersion { .. }
                        | StoreError::UnknownKind { .. }
                ));
            }
        }
    }
}
