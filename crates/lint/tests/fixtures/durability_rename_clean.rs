//! Fixture: the full temp-file + rename protocol — content fsync before
//! the rename, directory fsync after it.

use std::fs;
use std::io::Write;
use std::path::Path;

pub fn replace(target: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = target.with_extension("tmp");
    let mut f = fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    fs::rename(&tmp, target)?;
    fsync_parent_dir(target)?;
    Ok(())
}

fn fsync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = path.parent().unwrap_or_else(|| Path::new("."));
    fs::File::open(parent)?.sync_all()
}
