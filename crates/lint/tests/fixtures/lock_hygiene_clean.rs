//! Fixture: the same update with the guard explicitly dropped before the
//! blocking call.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

pub fn send(state: &Mutex<u64>, sock: &mut TcpStream, frame: &[u8]) -> std::io::Result<()> {
    let mut guard = state.lock().unwrap();
    *guard += 1;
    drop(guard);
    sock.write_all(frame)?;
    Ok(())
}
