//! Fixture: the same access through the safe, checked API.

pub fn read_first(xs: &[u8]) -> Option<u8> {
    xs.first().copied()
}
