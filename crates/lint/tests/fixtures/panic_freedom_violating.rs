//! Fixture: implicit panics on a serving path. Trips `panic-freedom`
//! via slice indexing, `.unwrap()`, and an `unreachable!` macro.

pub fn answer(results: Vec<Result<u32, String>>, i: usize) -> u32 {
    let first = results[i].as_ref().unwrap();
    if *first > 7 {
        unreachable!("a response slot held an impossible value");
    }
    *first
}
