//! Fixture: ad-hoc probability math that forks the canonical kernel.
//! Trips `float-determinism` three ways: a float-literal comparison, a
//! transcendental method call, and arithmetic with a float literal.

pub fn tau_ok(tau: f64) -> bool {
    tau > 0.0 && tau <= 1.0
}

pub fn log_prob(p: f64) -> f64 {
    p.ln()
}

pub fn complement(p: f64) -> f64 {
    1.0 - p
}
