//! Fixture: the same lookup degrading to an error instead of panicking.

pub fn answer(results: &[Result<u32, String>], i: usize) -> Result<u32, String> {
    match results.get(i) {
        Some(Ok(v)) => Ok(*v),
        Some(Err(e)) => Err(e.clone()),
        None => Err("no response was recorded for that slot".into()),
    }
}
