//! Fixture: an atomic ordering chosen silently. Trips `atomics-justify`
//! because neither site carries a `// ordering:` comment.

use std::sync::atomic::{AtomicU64, Ordering};

pub static HITS: AtomicU64 = AtomicU64::new(0);

pub fn bump() {
    HITS.fetch_add(1, Ordering::Relaxed);
}

pub fn total() -> u64 {
    HITS.load(Ordering::Relaxed)
}
