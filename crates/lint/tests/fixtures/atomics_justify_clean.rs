//! Fixture: the same atomics with their ordering choices written down.

use std::sync::atomic::{AtomicU64, Ordering};

pub static HITS: AtomicU64 = AtomicU64::new(0);

pub fn bump() {
    // ordering: Relaxed — a standalone telemetry counter; nothing
    // synchronizes on its value.
    HITS.fetch_add(1, Ordering::Relaxed);
}

pub fn total() -> u64 {
    // ordering: Relaxed — a racy read of a monotone counter is fine.
    HITS.load(Ordering::Relaxed)
}
