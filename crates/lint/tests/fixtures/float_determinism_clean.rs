//! Fixture: the same checks routed through the canonical-probability
//! module — no raw float literals, comparisons, or transcendentals.

use ustr_uncertain::canon;

pub fn tau_ok(tau: f64) -> bool {
    canon::valid_tau(tau)
}

pub fn log_prob(p: f64) -> f64 {
    canon::ln(p)
}

pub fn any_hit(probs: &[f64]) -> f64 {
    canon::independent_or(probs.iter().copied())
}
