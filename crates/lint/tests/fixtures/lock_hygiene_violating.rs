//! Fixture: a mutex guard held across socket I/O. Trips `lock-hygiene`
//! because `guard` is still live when `write_all` blocks.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

pub fn send(state: &Mutex<u64>, sock: &mut TcpStream, frame: &[u8]) -> std::io::Result<()> {
    let mut guard = state.lock().unwrap();
    *guard += 1;
    sock.write_all(frame)?;
    Ok(())
}
