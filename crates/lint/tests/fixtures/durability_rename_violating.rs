//! Fixture: atomic-replace with no fsync on either side. Trips
//! `durability-rename` twice: the renamed content is never synced, and
//! neither is the parent directory after the rename.

use std::fs;
use std::io::Write;
use std::path::Path;

pub fn replace(target: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = target.with_extension("tmp");
    let mut f = fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    fs::rename(&tmp, target)?;
    Ok(())
}
