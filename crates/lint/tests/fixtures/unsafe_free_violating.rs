//! Fixture: an `unsafe` block in project code. Trips `unsafe-free`.

pub fn read_first(xs: &[u8]) -> u8 {
    unsafe { *xs.get_unchecked(0) }
}
