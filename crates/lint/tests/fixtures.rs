//! End-to-end linter tests: every rule fires on its violating fixture and
//! stays quiet on the clean twin (through the real binary, exit codes and
//! all), and the workspace itself lints green against the committed
//! `lint-allow.toml` baseline.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Every rule, paired with the fixture slug its files are named after.
const RULES: &[(&str, &str)] = &[
    ("float-determinism", "float_determinism"),
    ("panic-freedom", "panic_freedom"),
    ("atomics-justify", "atomics_justify"),
    ("durability-rename", "durability_rename"),
    ("lock-hygiene", "lock_hygiene"),
    ("unsafe-free", "unsafe_free"),
];

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Runs the real `ustr-lint` binary in fixture mode (`--rule R --deny F`)
/// and returns `(succeeded, combined output)`.
fn lint_fixture(rule: &str, file: &str) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ustr-lint"))
        .arg("--rule")
        .arg(rule)
        .arg("--deny")
        .arg(fixture(file))
        .output()
        .expect("ustr-lint binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn every_rule_fires_on_its_violating_fixture() {
    for (rule, slug) in RULES {
        let (ok, text) = lint_fixture(rule, &format!("{slug}_violating.rs"));
        assert!(
            !ok,
            "{rule} should exit nonzero on its violating fixture; output:\n{text}"
        );
        assert!(
            text.contains(&format!("[{rule}]")),
            "{rule} diagnostics should name the rule; output:\n{text}"
        );
    }
}

#[test]
fn every_rule_passes_its_clean_fixture() {
    for (rule, slug) in RULES {
        let (ok, text) = lint_fixture(rule, &format!("{slug}_clean.rs"));
        assert!(
            ok,
            "{rule} should exit zero on its clean fixture; output:\n{text}"
        );
        assert!(
            text.contains("0 violation(s)"),
            "{rule} clean fixture should report zero violations; output:\n{text}"
        );
    }
}

#[test]
fn explain_and_list_cover_every_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_ustr-lint"))
        .arg("--list")
        .output()
        .expect("ustr-lint --list runs");
    let listing = String::from_utf8_lossy(&out.stdout).into_owned();
    for (rule, _) in RULES {
        assert!(listing.contains(rule), "--list should mention {rule}");
        let out = Command::new(env!("CARGO_BIN_EXE_ustr-lint"))
            .arg("--explain")
            .arg(rule)
            .output()
            .expect("ustr-lint --explain runs");
        assert!(out.status.success(), "--explain {rule} should succeed");
        assert!(
            out.stdout.len() > 200,
            "--explain {rule} should print a real rationale"
        );
    }
}

/// The acceptance gate: the workspace as committed has zero unjustified
/// violations, every baseline entry is live, and the exception budget
/// stays small.
#[test]
fn workspace_lints_green_with_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = ustr_lint::workspace_files(&root).expect("workspace walk succeeds");
    assert!(
        files.len() > 50,
        "workspace walk should see the whole repo, got {} files",
        files.len()
    );
    let allow = ustr_lint::AllowList::load(&root.join("lint-allow.toml"))
        .expect("committed baseline parses");
    assert!(
        allow.entries.len() <= 10,
        "audited-exception budget exceeded: {} entries (max 10)",
        allow.entries.len()
    );
    let report = ustr_lint::lint_files(&files, &ustr_lint::all_rules(), &allow);
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        report.diagnostics.is_empty(),
        "workspace has unjustified violations:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale lint-allow.toml entries: {:?}",
        report.unused_allows
    );
}
