//! The `ustr-lint` binary: lint the workspace (CI mode) or explicit files
//! (fixture mode), explain rules, list rules.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use ustr_lint::{all_rules, lint_files, lint_source_forced, AllowList, Rule};

const USAGE: &str = "\
ustr-lint — workspace invariant linter (determinism, panic-freedom, atomics)

USAGE:
    ustr-lint --workspace [--root DIR] [--deny] [--allow FILE]
    ustr-lint --rule NAME [--rule NAME]... [--deny] FILE...
    ustr-lint --explain NAME
    ustr-lint --list

MODES:
    --workspace        Lint every project source under DIR (default `.`):
                       src/ of the root crate and of each crate under
                       crates/. vendor/, tests/, benches/, examples/ and
                       #[cfg(test)] regions are exempt.
    FILE...            Lint specific files with the rules named by --rule,
                       ignoring rule path scopes (fixture mode).

OPTIONS:
    --deny             Exit nonzero when any violation is reported.
    --root DIR         Workspace root for --workspace (default `.`).
    --allow FILE       Baseline file (default ROOT/lint-allow.toml).
    --rule NAME        Restrict to (workspace mode) or force (file mode)
                       the named rule. Repeatable.
    --explain NAME     Print a rule's rationale and exit.
    --list             List rules and exit.
";

struct Args {
    workspace: bool,
    deny: bool,
    root: PathBuf,
    allow: Option<PathBuf>,
    rules: Vec<String>,
    explain: Option<String>,
    list: bool,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        deny: false,
        root: PathBuf::from("."),
        allow: None,
        rules: Vec::new(),
        explain: None,
        list: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--deny" => args.deny = true,
            "--list" => args.list = true,
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a value")?),
            "--allow" => {
                args.allow = Some(PathBuf::from(it.next().ok_or("--allow needs a value")?))
            }
            "--rule" => args.rules.push(it.next().ok_or("--rule needs a value")?),
            "--explain" => args.explain = Some(it.next().ok_or("--explain needs a value")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            file => args.files.push(PathBuf::from(file)),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let rules = all_rules();

    if args.list {
        for rule in &rules {
            println!("{:<20} {}", rule.name(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }
    if let Some(name) = &args.explain {
        return match rules.iter().find(|r| r.name() == name.as_str()) {
            Some(rule) => {
                println!("{}: {}\n\n{}", rule.name(), rule.summary(), rule.explain());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("error: no rule named `{name}` (try --list)");
                ExitCode::from(2)
            }
        };
    }
    for name in &args.rules {
        if !rules.iter().any(|r| r.name() == name.as_str()) {
            eprintln!("error: no rule named `{name}` (try --list)");
            return ExitCode::from(2);
        }
    }

    if args.workspace {
        run_workspace(&args, rules)
    } else if !args.files.is_empty() {
        run_files(&args)
    } else {
        eprintln!("error: pass --workspace or at least one FILE\n\n{USAGE}");
        ExitCode::from(2)
    }
}

fn run_workspace(args: &Args, rules: Vec<Box<dyn Rule>>) -> ExitCode {
    let rules: Vec<Box<dyn Rule>> = if args.rules.is_empty() {
        rules
    } else {
        rules
            .into_iter()
            .filter(|r| args.rules.iter().any(|n| n == r.name()))
            .collect()
    };
    let files = match ustr_lint::workspace_files(&args.root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let allow_path = args
        .allow
        .clone()
        .unwrap_or_else(|| args.root.join("lint-allow.toml"));
    let allow = match AllowList::load(&allow_path) {
        Ok(allow) => allow,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = lint_files(&files, &rules, &allow);
    for diag in &report.diagnostics {
        println!("{diag}");
    }
    for stale in &report.unused_allows {
        eprintln!("warning: stale lint-allow.toml entry matched nothing: {stale}");
    }
    let n = report.diagnostics.len();
    eprintln!(
        "ustr-lint: {} file(s), {} violation(s), {} allowlisted",
        report.files, n, report.suppressed
    );
    if n > 0 {
        eprintln!(
            "ustr-lint: run `ustr-lint --explain <rule>` for any rule above; audited \
             exceptions go in lint-allow.toml"
        );
    }
    exit_for(n, args.deny)
}

fn run_files(args: &Args) -> ExitCode {
    if args.rules.is_empty() {
        eprintln!("error: file mode needs at least one --rule NAME\n\n{USAGE}");
        return ExitCode::from(2);
    }
    let names: Vec<&str> = args.rules.iter().map(String::as_str).collect();
    let mut n = 0usize;
    for path in &args.files {
        let src = match std::fs::read_to_string(path) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let rel = path.to_string_lossy().replace('\\', "/");
        for diag in lint_source_forced(&rel, &src, &names) {
            println!("{diag}");
            n += 1;
        }
    }
    eprintln!(
        "ustr-lint: {} file(s), {} violation(s) [rules: {}]",
        args.files.len(),
        n,
        names.join(", ")
    );
    exit_for(n, args.deny)
}

fn exit_for(violations: usize, deny: bool) -> ExitCode {
    if violations > 0 && deny {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
