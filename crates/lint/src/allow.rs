//! The `lint-allow.toml` baseline: audited, justified exceptions.
//!
//! The file is a flat list of `[[allow]]` tables, each naming a rule, a
//! workspace-relative path, and a human reason. An entry suppresses every
//! diagnostic of that rule in that file — exceptions are audited at file
//! granularity so a *new* file never inherits a free pass. A trailing `/`
//! on `path` makes the entry a directory prefix (discouraged; kept for
//! completeness).
//!
//! The parser is a deliberately tiny TOML subset (this workspace builds
//! with no external crates): `[[allow]]` headers, `key = "string"` pairs,
//! `#` comments, blank lines. Anything else is a hard error — a baseline
//! that cannot be parsed must fail the build, not silently allow nothing.

use std::path::Path;

/// One audited exception.
#[derive(Debug, Clone, Default)]
pub struct AllowEntry {
    /// Rule name the exception applies to.
    pub rule: String,
    /// Workspace-relative path (exact file, or directory prefix when it
    /// ends with `/`).
    pub path: String,
    /// Why this exception is sound. Required: an unexplained exception is
    /// a parse error.
    pub reason: String,
}

/// The parsed baseline.
#[derive(Debug, Default)]
pub struct AllowList {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl AllowList {
    /// Loads and parses `path`. A missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Self, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }

    /// Parses the TOML-subset text.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut in_entry = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(last) = entries.last() {
                    validate(last, lineno)?;
                }
                entries.push(AllowEntry::default());
                in_entry = true;
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("lint-allow.toml:{lineno}: expected `key = \"value\"`"))?;
            if !in_entry {
                return Err(format!(
                    "lint-allow.toml:{lineno}: key outside an [[allow]] table"
                ));
            }
            let key = key.trim();
            let value = parse_string(value.trim())
                .ok_or_else(|| format!("lint-allow.toml:{lineno}: value must be a \"string\""))?;
            let entry = entries.last_mut().ok_or("lint-allow.toml: no entry")?;
            match key {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "reason" => entry.reason = value,
                other => {
                    return Err(format!(
                        "lint-allow.toml:{lineno}: unknown key `{other}` \
                         (expected rule/path/reason)"
                    ))
                }
            }
        }
        if let Some(last) = entries.last() {
            validate(last, text.lines().count())?;
        }
        Ok(Self { entries })
    }

    /// Whether `(rule, rel_path)` is covered by an entry. Marks the entry
    /// used via the parallel `used` slice (same indexing as `entries`).
    pub fn covers(&self, rule: &str, rel_path: &str, used: &mut [bool]) -> bool {
        let mut hit = false;
        for (i, e) in self.entries.iter().enumerate() {
            let path_match = if e.path.ends_with('/') {
                rel_path.starts_with(&e.path)
            } else {
                rel_path == e.path
            };
            if e.rule == rule && path_match {
                used[i] = true;
                hit = true;
            }
        }
        hit
    }
}

fn validate(entry: &AllowEntry, lineno: usize) -> Result<(), String> {
    if entry.rule.is_empty() || entry.path.is_empty() || entry.reason.is_empty() {
        return Err(format!(
            "lint-allow.toml: entry ending near line {lineno} must set rule, path, \
             and a non-empty reason"
        ));
    }
    Ok(())
}

/// Parses a basic TOML string: double quotes, `\\` and `\"` escapes.
fn parse_string(v: &str) -> Option<String> {
    let inner = v.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            }
        } else if c == '"' {
            return None; // unescaped quote mid-string: malformed
        } else {
            out.push(c);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_matches_paths() {
        let text = r#"
# audited exceptions
[[allow]]
rule = "float-determinism"
path = "crates/core/src/levels.rs"
reason = "construction-time level probabilities"

[[allow]]
rule = "lock-hygiene"
path = "crates/net/src/"
reason = "writer lock serializes frames"
"#;
        let list = AllowList::parse(text).unwrap();
        assert_eq!(list.entries.len(), 2);
        let mut used = vec![false; 2];
        assert!(list.covers("float-determinism", "crates/core/src/levels.rs", &mut used));
        assert!(!list.covers("float-determinism", "crates/core/src/index.rs", &mut used));
        assert!(list.covers("lock-hygiene", "crates/net/src/server.rs", &mut used));
        assert_eq!(used, vec![true, true]);
    }

    #[test]
    fn rejects_missing_reason() {
        let text = "[[allow]]\nrule = \"x\"\npath = \"y\"\n";
        assert!(AllowList::parse(text).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(AllowList::parse("[allow]\nrule = \"x\"").is_err());
        assert!(AllowList::parse("[[allow]]\nrule = unquoted").is_err());
    }
}
