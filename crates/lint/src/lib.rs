//! `ustr-lint` — the workspace invariant linter.
//!
//! The repo's core guarantees — byte-identical probability answers across
//! every executor, panic-free serving paths, justified atomic orderings,
//! fsync-before-rename durability, and mutex guards that never straddle
//! blocking calls — used to live only in tests and reviewer memory. This
//! crate makes them structural: a lightweight Rust [`lexer`] feeds a
//! [`rules`] engine that walks every workspace source file and reports
//! named, `--explain`-able violations with `file:line` diagnostics.
//! Audited exceptions live in the checked-in `lint-allow.toml` baseline
//! ([`allow`]); CI runs the binary with `--workspace --deny` so an
//! unjustified regression fails the build.
//!
//! The linter is std-only (this workspace builds with no external crates,
//! so no `syn`, no dylint) and lexical by design: rules are heuristics
//! over a token stream, tuned to this codebase's idioms, not a type
//! checker. See `INVARIANTS.md` at the workspace root for the catalog of
//! enforced invariants and `ustr-lint --explain <rule>` for each rule's
//! rationale and escape hatch.

#![forbid(unsafe_code)]

pub mod allow;
pub mod lexer;
pub mod rules;

use std::collections::HashMap;
use std::path::{Path, PathBuf};

pub use allow::AllowList;
use lexer::{lex, strip_test_regions, Comment, Tok};
pub use rules::{all_rules, Rule};

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule name (`float-determinism`, `panic-freedom`, …).
    pub rule: &'static str,
    /// Workspace-relative path, unix separators.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// What is wrong at the site.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A lexed source file ready for rule checks: test regions stripped,
/// comments in a by-line side table.
pub struct SourceFile {
    /// Workspace-relative path, unix separators (rules scope on it).
    pub rel: String,
    /// Token stream with `#[test]` / `#[cfg(test)]` items removed.
    pub tokens: Vec<Tok>,
    /// Comment text concatenated per starting line.
    pub comment_by_line: HashMap<u32, String>,
}

impl SourceFile {
    /// Lexes `src` as the file at `rel`.
    pub fn new(rel: impl Into<String>, src: &str) -> Self {
        let lexed = lex(src);
        let mut comment_by_line: HashMap<u32, String> = HashMap::new();
        for Comment { line, text } in &lexed.comments {
            let slot = comment_by_line.entry(*line).or_default();
            slot.push_str(text);
            slot.push(' ');
        }
        Self {
            rel: rel.into(),
            tokens: strip_test_regions(lexed.tokens),
            comment_by_line,
        }
    }

    /// Whether any comment starting on `line` or up to `back` lines above
    /// it contains `needle`.
    pub fn comment_near(&self, line: u32, back: u32, needle: &str) -> bool {
        (line.saturating_sub(back)..=line).any(|l| {
            self.comment_by_line
                .get(&l)
                .is_some_and(|c| c.contains(needle))
        })
    }

    /// Brace depth *before* each token (index `i` is the depth at which
    /// token `i` sits). Used by the scope-sensitive rules.
    pub fn depths(&self) -> Vec<u32> {
        let mut depths = Vec::with_capacity(self.tokens.len());
        let mut d = 0u32;
        for t in &self.tokens {
            match t.text.as_str() {
                "{" => {
                    depths.push(d);
                    d += 1;
                }
                "}" => {
                    d = d.saturating_sub(1);
                    depths.push(d);
                }
                _ => depths.push(d),
            }
        }
        depths
    }

    /// `fn` body token ranges `(start, end)` — `start` is the index of the
    /// opening `{`, `end` of the matching `}`. Nested functions/closures
    /// produce nested ranges; callers wanting the innermost enclosing body
    /// pick the tightest range containing their index.
    pub fn fn_bodies(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let toks = &self.tokens;
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].text == "fn"
                && toks
                    .get(i + 1)
                    .is_some_and(|t| t.kind == lexer::Kind::Ident)
            {
                // Find the body's opening brace: the first `{` before a `;`
                // (a `;` first means a trait method signature / extern fn).
                let mut j = i + 2;
                let mut angle = 0i32; // `where` clauses and generics may nest
                let mut open = None;
                while let Some(t) = toks.get(j) {
                    match t.text.as_str() {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        ";" if angle <= 0 => break,
                        "{" if angle <= 0 => {
                            open = Some(j);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(open) = open {
                    let mut depth = 0usize;
                    let mut k = open;
                    while let Some(t) = toks.get(k) {
                        match t.text.as_str() {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    out.push((open, k));
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
            }
            i += 1;
        }
        out
    }
}

/// Everything `lint_paths` found, plus allowlist bookkeeping.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations not covered by the baseline.
    pub diagnostics: Vec<Diagnostic>,
    /// Violations suppressed by a baseline entry.
    pub suppressed: usize,
    /// Baseline entries that matched nothing (stale — should be pruned).
    pub unused_allows: Vec<String>,
    /// Files checked.
    pub files: usize,
}

/// Lints one in-memory file with an explicit rule set, ignoring each
/// rule's path scope (fixture mode: the caller vouches the file stands in
/// for an in-scope one).
pub fn lint_source_forced(rel: &str, src: &str, rule_names: &[&str]) -> Vec<Diagnostic> {
    let file = SourceFile::new(rel, src);
    all_rules()
        .iter()
        .filter(|r| rule_names.contains(&r.name()))
        .flat_map(|r| r.check(&file))
        .collect()
}

/// Lints `files` (workspace-relative path, contents) against `rules`,
/// applying scopes and the baseline.
pub fn lint_files(
    files: &[(String, String)],
    rules: &[Box<dyn Rule>],
    allow: &AllowList,
) -> LintReport {
    let mut report = LintReport {
        files: files.len(),
        ..Default::default()
    };
    let mut used = vec![false; allow.entries.len()];
    for (rel, src) in files {
        let file = SourceFile::new(rel.clone(), src);
        for rule in rules {
            if !rule.applies(rel) {
                continue;
            }
            for diag in rule.check(&file) {
                if allow.covers(diag.rule, rel, &mut used) {
                    report.suppressed += 1;
                } else {
                    report.diagnostics.push(diag);
                }
            }
        }
    }
    for (i, u) in used.iter().enumerate() {
        if !u {
            let e = &allow.entries[i];
            report
                .unused_allows
                .push(format!("{} @ {}", e.rule, e.path));
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
}

/// Walks the workspace at `root` and returns `(rel_path, contents)` for
/// every project source file: `src/**/*.rs` of the root crate and of each
/// crate under `crates/`. Excluded: `vendor/` (third-party stand-ins),
/// `target/`, and the per-crate `tests/`, `benches/`, `examples/` trees
/// (non-production code may panic and compare floats freely — in-file
/// `#[cfg(test)]` regions are stripped separately by the lexer).
pub fn workspace_files(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, root, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)
            .map_err(|e| format!("cannot read {}: {e}", crates.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect_rs(&src, root, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("{} escapes the workspace root", path.display()))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            out.push((rel, src));
        }
    }
    Ok(())
}

/// Lints the whole workspace at `root` with every rule and the baseline at
/// `root/lint-allow.toml`.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let files = workspace_files(root)?;
    let allow = AllowList::load(&root.join("lint-allow.toml"))?;
    Ok(lint_files(&files, &all_rules(), &allow))
}
