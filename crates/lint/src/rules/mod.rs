//! The rule registry: every enforced invariant as a named, explainable
//! check over a lexed [`SourceFile`].

mod atomics;
mod durability;
mod float;
mod locks;
mod panics;
mod unsafe_free;

use crate::{Diagnostic, SourceFile};

pub use atomics::AtomicsJustify;
pub use durability::DurabilityRename;
pub use float::FloatDeterminism;
pub use locks::LockHygiene;
pub use panics::PanicFreedom;
pub use unsafe_free::UnsafeFree;

/// One lint rule. Rules are lexical heuristics tuned to this codebase —
/// see each `explain()` for what is matched, why the invariant exists,
/// and how to record an audited exception.
pub trait Rule {
    /// Stable kebab-case name (diagnostics, `--rule`, `--explain`,
    /// `lint-allow.toml` all use it).
    fn name(&self) -> &'static str;

    /// One-line summary shown by `--list`.
    fn summary(&self) -> &'static str;

    /// Long-form rationale shown by `--explain`.
    fn explain(&self) -> &'static str;

    /// Whether the rule runs on the workspace-relative path `rel` (unix
    /// separators). Bypassed in fixture mode (`--rule` with explicit
    /// files).
    fn applies(&self, rel: &str) -> bool;

    /// Runs the check.
    fn check(&self, file: &SourceFile) -> Vec<Diagnostic>;
}

/// Every rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(FloatDeterminism),
        Box::new(PanicFreedom),
        Box::new(AtomicsJustify),
        Box::new(DurabilityRename),
        Box::new(LockHygiene),
        Box::new(UnsafeFree),
    ]
}

/// Rust keywords that may legitimately precede a `[` without the bracket
/// being an index expression (`return [..]`, `match x { [a] => .. }`).
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "union",
    "unsafe", "use", "where", "while",
];
