//! `panic-freedom`: serving paths never panic.

use crate::lexer::Kind;
use crate::{Diagnostic, SourceFile};

use super::{Rule, KEYWORDS};

/// The request-handling crates: one panic here takes a worker thread (or
/// a whole connection) down with it.
const SCOPE: &[&str] = &["crates/net/src/", "crates/service/src/", "crates/live/src/"];

/// Method calls that panic on the failure case.
const PANICKY_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that are unconditional (or reachable-by-bug) panics.
const PANICKY_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// Flags `unwrap()`/`expect()`, panicking macros, and slice indexing in
/// the serving crates.
pub struct PanicFreedom;

impl Rule for PanicFreedom {
    fn name(&self) -> &'static str {
        "panic-freedom"
    }

    fn summary(&self) -> &'static str {
        "unwrap/expect/panic!/indexing in the request-handling crates"
    }

    fn explain(&self) -> &'static str {
        "A panic in ustr-net, ustr-service, or ustr-live does not return an error frame — it \
         kills the worker or connection thread mid-request, poisons every mutex it held, and \
         degrades the whole server (a poisoned pool queue takes down all workers). Serving \
         code must degrade instead: poisoned locks recover the guard (`into_inner`), channel \
         send failures release their permits, impossible states become error frames or \
         `StoreError`s. This rule flags `.unwrap()`, `.expect(…)`, the `panic!`/`todo!`/\
         `unimplemented!`/`unreachable!` macros, and slice/array indexing (`xs[i]` can \
         panic; prefer `.get(i)` or iterate) in those crates' sources. Test code is exempt \
         (stripped before rules run), as are `assert!` family macros — invariant checks are \
         welcome; implicit panics on the request path are not. Audited exceptions go in \
         lint-allow.toml with a reason why the site cannot be reached with a panicking \
         value. See INVARIANTS.md."
    }

    fn applies(&self, rel: &str) -> bool {
        SCOPE.iter().any(|p| rel.starts_with(p))
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let toks = &file.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind == Kind::Ident
                && PANICKY_METHODS.contains(&t.text.as_str())
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|n| n.text == "(")
            {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "`.{}()` on a serving path can panic; degrade to an error instead",
                        t.text
                    ),
                });
            }
            if t.kind == Kind::Ident
                && PANICKY_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.text == "!")
            {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.rel.clone(),
                    line: t.line,
                    message: format!("`{}!` on a serving path", t.text),
                });
            }
            // Index expressions: `[` directly after an identifier (that is
            // not a keyword or a macro name), `)`, or `]`.
            if t.text == "[" && i > 0 {
                let prev = &toks[i - 1];
                let is_expr_head = match prev.kind {
                    Kind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
                    Kind::Punct => prev.text == ")" || prev.text == "]",
                    _ => false,
                };
                if is_expr_head {
                    out.push(Diagnostic {
                        rule: self.name(),
                        path: file.rel.clone(),
                        line: t.line,
                        message: "slice/array indexing can panic on a serving path; \
                                  prefer `.get(…)` or a checked split"
                            .into(),
                    });
                }
            }
        }
        out
    }
}
