//! `durability-rename`: atomic-replace renames are fsynced on both sides.

use crate::{Diagnostic, SourceFile};

use super::Rule;

/// Persistence code lives here.
const SCOPE: &[&str] = &["crates/store/src/"];

/// Calls that establish the renamed file's content durability before the
/// rename: anything fsync-flavored, plus the project helpers that fsync
/// internally before returning.
const DURABLE_WRITERS: &[&str] = &["write_wal_file", "write_wal_file_with"];

/// Flags `rename(…)` calls in `ustr-store` without a preceding
/// content-fsync and a following directory-fsync in the same function.
pub struct DurabilityRename;

impl Rule for DurabilityRename {
    fn name(&self) -> &'static str {
        "durability-rename"
    }

    fn summary(&self) -> &'static str {
        "rename without fsync-before and directory-fsync-after in ustr-store"
    }

    fn explain(&self) -> &'static str {
        "The store's crash-safety story is temp-file + rename: write the new bytes to a \
         sibling file, fsync them, rename over the target, fsync the parent directory. Skip \
         the first fsync and a crash can leave the *renamed* file empty or torn (the rename \
         survived, the data did not — the classic ext4 trap); skip the directory fsync and \
         the rename itself may vanish. This rule requires every `rename(…)` call in \
         crates/store/src to have, within the same function, (a) an earlier call whose name \
         contains `sync` or is a known fsyncing writer (`write_wal_file`), and (b) a later \
         call whose name contains `sync` (normally `fsync_parent_dir`). Helpers that fsync \
         internally keep the rule green at their call sites by being listed as durable \
         writers — extend the list (in crates/lint/src/rules/durability.rs) when adding \
         one, or record a lint-allow.toml exception with the reason the ordering is safe. \
         See INVARIANTS.md."
    }

    fn applies(&self, rel: &str) -> bool {
        SCOPE.iter().any(|p| rel.starts_with(p))
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let toks = &file.tokens;
        let bodies = file.fn_bodies();
        for (i, t) in toks.iter().enumerate() {
            if t.text != "rename" || toks.get(i + 1).map(|n| n.text.as_str()) != Some("(") {
                continue;
            }
            // Innermost enclosing fn body.
            let Some(&(start, end)) = bodies
                .iter()
                .filter(|(s, e)| *s < i && i < *e)
                .min_by_key(|(s, e)| e - s)
            else {
                continue;
            };
            let is_durable_call = |j: usize| {
                let t = &toks[j];
                (t.text.contains("sync") || DURABLE_WRITERS.contains(&t.text.as_str()))
                    && toks.get(j + 1).is_some_and(|n| n.text == "(")
            };
            let fsynced_before = (start..i).any(is_durable_call);
            let dir_fsynced_after = (i + 1..end).any(|j| {
                toks[j].text.contains("sync") && toks.get(j + 1).is_some_and(|n| n.text == "(")
            });
            if !fsynced_before {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.rel.clone(),
                    line: t.line,
                    message: "rename without a preceding fsync of the renamed content in \
                              the same function"
                        .into(),
                });
            }
            if !dir_fsynced_after {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.rel.clone(),
                    line: t.line,
                    message: "rename without a following directory fsync \
                              (fsync_parent_dir) in the same function"
                        .into(),
                });
            }
        }
        out
    }
}
