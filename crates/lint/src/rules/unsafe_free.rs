//! `unsafe-free`: the workspace stays `#![forbid(unsafe_code)]`.

use crate::{Diagnostic, SourceFile};

use super::Rule;

/// Requires `#![forbid(unsafe_code)]` in every crate root and rejects the
/// `unsafe` keyword anywhere in project sources.
pub struct UnsafeFree;

/// Whether `rel` is a crate (or binary-target) root that must carry the
/// forbid attribute.
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || rel.ends_with("/src/lib.rs")
        || rel.ends_with("/src/main.rs")
        || (rel.contains("/src/bin/") && rel.ends_with(".rs"))
}

impl Rule for UnsafeFree {
    fn name(&self) -> &'static str {
        "unsafe-free"
    }

    fn summary(&self) -> &'static str {
        "crate roots must forbid unsafe_code; no unsafe blocks anywhere"
    }

    fn explain(&self) -> &'static str {
        "The workspace currently contains zero `unsafe` blocks, and the compiler can hold \
         that line for free: `#![forbid(unsafe_code)]` in a crate root makes any future \
         unsafe block a hard error that even `#[allow]` cannot re-enable. Locking this in \
         matters now because the succinct-index work ahead (bit-packed suffix arrays, mmap \
         snapshot loading) is exactly the kind of code that tempts one \"small\" unsafe \
         shortcut. This rule checks that every crate root (`src/lib.rs`, `src/main.rs`, \
         `src/bin/*.rs`) carries the attribute, and flags the `unsafe` keyword in any \
         project source. If unsafe ever becomes genuinely necessary (e.g. mmap), the \
         decision is made explicit: relax the attribute in one crate, justify the sites, \
         and update INVARIANTS.md — not slip a block in unnoticed."
    }

    fn applies(&self, _rel: &str) -> bool {
        true
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let toks = &file.tokens;
        if is_crate_root(&file.rel) {
            let has_forbid = toks.windows(6).any(|w| {
                w[0].text == "#"
                    && w[1].text == "!"
                    && w[2].text == "["
                    && w[3].text == "forbid"
                    && w[4].text == "("
                    && w[5].text == "unsafe_code"
            });
            if !has_forbid {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.rel.clone(),
                    line: 1,
                    message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
                });
            }
        }
        for t in toks {
            if t.text == "unsafe" {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.rel.clone(),
                    line: t.line,
                    message: "`unsafe` in a forbid(unsafe_code) workspace".into(),
                });
            }
        }
        out
    }
}
