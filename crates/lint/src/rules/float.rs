//! `float-determinism`: probability arithmetic stays in the canonical
//! modules.

use crate::lexer::Kind;
use crate::{Diagnostic, SourceFile};

use super::Rule;

/// Crates whose sources carry query answers and must not grow ad-hoc
/// float math (probabilities are computed once, canonically, in
/// `ustr-uncertain`).
const SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/baseline/src/",
    "crates/service/src/",
    "crates/live/src/",
    "crates/net/src/",
    "crates/store/src/",
    "crates/suffix/src/",
    "crates/rmq/src/",
];

/// The canonical-probability modules: the one place raw float arithmetic
/// is the point. (`kstats.rs` is deliberately *not* here — telemetry
/// counters must stay integer.)
const WHITELIST: &[&str] = &[
    "crates/uncertain/src/canon.rs",
    "crates/uncertain/src/string.rs",
    "crates/uncertain/src/plane.rs",
    "crates/uncertain/src/transform.rs",
    "crates/uncertain/src/chars.rs",
    "crates/uncertain/src/worlds.rs",
    "crates/uncertain/src/correlation.rs",
    "crates/uncertain/src/special.rs",
    "crates/uncertain/src/lib.rs",
    "crates/uncertain/src/error.rs",
];

/// Methods on floats that perform arithmetic whose result depends on
/// libm/rounding behavior — exactly what must happen at a single
/// summation site to keep answers byte-identical.
const FLOAT_METHODS: &[&str] = &[
    "ln", "exp", "exp2", "exp_m1", "ln_1p", "log", "log2", "log10", "powf", "powi", "sqrt", "cbrt",
    "hypot", "recip", "mul_add", "sin", "cos", "tan",
];

const ARITH: &[&str] = &["+", "-", "*", "/", "%", "+=", "-=", "*=", "/=", "%="];
const CMP: &[&str] = &["<", ">", "<=", ">=", "==", "!="];

/// Flags raw float arithmetic, transcendental calls, and float-literal
/// comparisons outside the canonical-probability modules.
pub struct FloatDeterminism;

impl Rule for FloatDeterminism {
    fn name(&self) -> &'static str {
        "float-determinism"
    }

    fn summary(&self) -> &'static str {
        "float arithmetic/comparisons outside the canonical-probability modules"
    }

    fn explain(&self) -> &'static str {
        "Every executor must return byte-identical probabilities (the PR 3/PR 5 \
         canonical-probability contract): answers are computed by one summation path in \
         ustr-uncertain (`match_probability` / `MatchKernel`), in one order, with one set of \
         `ln`/`exp` calls. A stray `f64` sum, tolerance, or comparison anywhere else can \
         silently fork that contract — two code paths that are mathematically equal but not \
         bit-equal. This rule flags, outside the whitelisted ustr-uncertain modules: float \
         transcendental/arithmetic method calls (`.ln()`, `.exp()`, `.powf()`, …), arithmetic \
         where a float literal is an operand, and comparisons against float literals. \
         It is a lexical heuristic: identifier-vs-identifier float math is not seen — reviews \
         still matter. Audited exceptions (e.g. construction-time level probabilities, the \
         cache's tau quantization) go in lint-allow.toml with a reason explaining why the \
         site cannot fork query answers. See INVARIANTS.md."
    }

    fn applies(&self, rel: &str) -> bool {
        if WHITELIST.contains(&rel) {
            return false;
        }
        SCOPE.iter().any(|p| rel.starts_with(p)) || rel.starts_with("crates/uncertain/src/")
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let toks = &file.tokens;
        for (i, t) in toks.iter().enumerate() {
            // `.ln()` and friends.
            if t.kind == Kind::Ident
                && FLOAT_METHODS.contains(&t.text.as_str())
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|n| n.text == "(")
            {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "float method `.{}()` outside the canonical-probability modules",
                        t.text
                    ),
                });
            }
            if t.kind != Kind::Float {
                continue;
            }
            // Arithmetic with a float literal operand. A `-` directly
            // after `= ( [ { , ; => return` (or a comparison) is unary
            // negation of a constant, not arithmetic.
            let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
            let prev2 = i.checked_sub(2).map(|p| toks[p].text.as_str());
            let next = toks.get(i + 1).map(|n| n.text.as_str());
            let unary_neg = prev == Some("-")
                && matches!(
                    prev2,
                    None | Some(
                        "=" | "("
                            | "["
                            | "{"
                            | ","
                            | ";"
                            | "=>"
                            | "return"
                            | "<"
                            | ">"
                            | "<="
                            | ">="
                            | "=="
                            | "!="
                            | "+"
                            | "-"
                            | "*"
                            | "/"
                    )
                );
            let prev_arith = prev.is_some_and(|p| ARITH.contains(&p)) && !unary_neg;
            let next_arith = next.is_some_and(|n| ARITH.contains(&n))
                // `0.5)` then `- x` is fine; but `0.5 - x` directly is
                // arithmetic. A trailing `-`/`+` before `)`/`,`/`;` cannot
                // happen, so any arith op directly after the literal counts.
                ;
            if prev_arith || next_arith {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "raw float arithmetic with literal `{}` outside the \
                         canonical-probability modules",
                        t.text
                    ),
                });
                continue;
            }
            let prev_cmp = prev.is_some_and(|p| CMP.contains(&p));
            let next_cmp = next.is_some_and(|n| CMP.contains(&n));
            if prev_cmp || next_cmp {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "float comparison against literal `{}` outside the \
                         canonical-probability modules",
                        t.text
                    ),
                });
            }
        }
        out
    }
}
