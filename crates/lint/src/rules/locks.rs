//! `lock-hygiene`: mutex guards do not straddle blocking calls.

use crate::lexer::Kind;
use crate::{Diagnostic, SourceFile};

use super::Rule;

/// Blocking calls a held guard must not straddle: thread joins and
/// socket/file I/O. (`Condvar::wait` is fine — it releases the lock; a
/// guard consumed by its own `recv()` is the pool's handoff idiom.)
const BLOCKING: &[&str] = &[
    "join",
    "write_all",
    "read_exact",
    "read_to_end",
    "flush",
    "accept",
    "connect",
    "sync_all",
    "sync_data",
];

/// Flags named `let guard = …lock()…` bindings whose enclosing block
/// later performs a blocking call before `drop(guard)`.
pub struct LockHygiene;

impl Rule for LockHygiene {
    fn name(&self) -> &'static str {
        "lock-hygiene"
    }

    fn summary(&self) -> &'static str {
        "mutex guards held across join()/I-O calls"
    }

    fn explain(&self) -> &'static str {
        "A mutex guard held across a blocking call turns one slow peer into a pile-up: \
         every thread that touches the same lock queues behind one socket write, fsync, or \
         thread join — in the worst case a deadlock (joining a thread that needs the held \
         lock). This rule flags `let <guard> = …lock()…;` bindings whose enclosing block \
         performs `join()`, socket/file I/O (`write_all`, `read_exact`, `flush`, …), or an \
         fsync before the guard is dropped; an explicit `drop(<guard>)` before the blocking \
         call, or a tighter `{ … }` scope, satisfies it. It is a heuristic: guards bound \
         through patterns (`if let Some(g) = …`) or temporaries are not tracked. Designs \
         that genuinely *intend* the coupling can be audited exceptions in lint-allow.toml \
         with a written reason the stall is bounded — though the last such design, \
         ustr-net's per-connection writer lock, was retired by the event loop, which \
         serializes frames with a single-owner write queue instead. See INVARIANTS.md."
    }

    fn applies(&self, _rel: &str) -> bool {
        true
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let toks = &file.tokens;
        let depths = file.depths();
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].text != "let" {
                i += 1;
                continue;
            }
            // `let [mut] NAME = … .lock( … ;` on one statement.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.text == "mut") {
                j += 1;
            }
            let Some(name_tok) = toks.get(j) else { break };
            if name_tok.kind != Kind::Ident || toks.get(j + 1).map(|t| t.text.as_str()) != Some("=")
            {
                i += 1;
                continue;
            }
            let guard = name_tok.text.clone();
            // Scan the initializer (to the `;` closing this statement) for
            // a `.lock(` call.
            let stmt_depth = depths[i];
            let mut k = j + 2;
            let mut takes_lock = false;
            while let Some(t) = toks.get(k) {
                if t.text == ";" && depths[k] == stmt_depth {
                    break;
                }
                // Only a lock taken at the statement's own brace depth makes
                // the binding a guard: a lock taken inside a `{ … }` block
                // initializer dies with that block, not with the binding.
                // Both the raw `.lock()` method and the workspace's
                // poison-recovering `lock_clean()` helper produce guards.
                let raw_lock = t.text == "lock"
                    && k > 0
                    && toks[k - 1].text == "."
                    && toks.get(k + 1).is_some_and(|n| n.text == "(");
                let helper_lock =
                    t.text == "lock_clean" && toks.get(k + 1).is_some_and(|n| n.text == "(");
                if (raw_lock || helper_lock) && depths[k] == stmt_depth {
                    takes_lock = true;
                }
                k += 1;
            }
            if !takes_lock {
                i = j;
                continue;
            }
            // From the end of the statement to the end of the enclosing
            // block: blocking calls before `drop(guard)` are violations.
            let mut m = k + 1;
            while let Some(t) = toks.get(m) {
                if depths[m] < stmt_depth {
                    break; // enclosing block closed: guard dropped
                }
                if t.text == "drop"
                    && toks.get(m + 1).is_some_and(|n| n.text == "(")
                    && toks.get(m + 2).is_some_and(|n| n.text == guard)
                {
                    break;
                }
                if t.kind == Kind::Ident
                    && BLOCKING.contains(&t.text.as_str())
                    && m > 0
                    && toks[m - 1].text == "."
                    && toks.get(m + 1).is_some_and(|n| n.text == "(")
                {
                    out.push(Diagnostic {
                        rule: self.name(),
                        path: file.rel.clone(),
                        line: t.line,
                        message: format!(
                            "mutex guard `{guard}` (bound on line {}) is still live across \
                             this blocking `.{}()` call; drop it first or shrink its scope",
                            name_tok.line, t.text
                        ),
                    });
                }
                m += 1;
            }
            i = k + 1;
        }
        out
    }
}
