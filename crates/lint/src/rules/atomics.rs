//! `atomics-justify`: every atomic ordering choice carries its reasoning.

use crate::{Diagnostic, SourceFile};

use super::Rule;

/// Atomic memory orderings (the `std::sync::atomic::Ordering` variants —
/// `cmp::Ordering`'s `Less`/`Equal`/`Greater` never match).
const ORDERINGS: &[&str] = &["Relaxed", "SeqCst", "Acquire", "Release", "AcqRel"];

/// How many lines above a site a justification comment may sit (a comment
/// block directly above a two-line call chain still counts).
const COMMENT_WINDOW: u32 = 3;

/// Flags `Ordering::*` uses without an adjacent `// ordering:` comment.
pub struct AtomicsJustify;

impl Rule for AtomicsJustify {
    fn name(&self) -> &'static str {
        "atomics-justify"
    }

    fn summary(&self) -> &'static str {
        "atomic Ordering uses without an adjacent `// ordering:` justification"
    }

    fn explain(&self) -> &'static str {
        "Relaxed vs SeqCst is a correctness decision that the code cannot express on its \
         own: a telemetry counter may be Relaxed because nobody reads it for \
         synchronization, while a shutdown flag needs SeqCst (or Acquire/Release pairing) \
         because threads coordinate through it. As the bit-packed succinct structures land, \
         the ordering-sensitive surface only grows. Every use of an atomic `Ordering::` \
         variant must therefore carry a `// ordering: <why this ordering is sufficient>` \
         comment on the same line or within the three lines above (one comment may cover a \
         small cluster of sites, e.g. a paired store/load). Unjustified sites fail CI — the \
         fix is to *write the justification down*, which is the audit. lint-allow.toml \
         exceptions are possible but discouraged for this rule: the comment is cheaper. \
         See INVARIANTS.md."
    }

    fn applies(&self, _rel: &str) -> bool {
        true
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if toks[i].text != "Ordering" {
                continue;
            }
            let Some(next) = toks.get(i + 1) else {
                continue;
            };
            let Some(variant) = toks.get(i + 2) else {
                continue;
            };
            if next.text != "::" || !ORDERINGS.contains(&variant.text.as_str()) {
                continue;
            }
            if !file.comment_near(toks[i].line, COMMENT_WINDOW, "ordering:") {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.rel.clone(),
                    line: toks[i].line,
                    message: format!(
                        "`Ordering::{}` without an adjacent `// ordering:` justification",
                        variant.text
                    ),
                });
            }
        }
        out
    }
}
