//! A lightweight Rust lexer: just enough fidelity for invariant linting.
//!
//! The lexer produces a flat token stream with line numbers, handling the
//! constructs that defeat naive regex scanning — nested block comments,
//! string/raw-string/byte-string/char literals (an `unwrap()` inside a
//! string must not trip the panic rule), lifetimes vs char literals, and
//! float vs integer vs range-expression numeric literals (`1.0` is a
//! float, `1..2` is not, `1.max(2)` is a method call). Comments are not
//! tokens; they land in a side table keyed by line so rules can look up
//! justification comments (`// ordering: …`) adjacent to a site.
//!
//! A second pass, [`strip_test_regions`], removes every item annotated
//! `#[test]` or `#[cfg(test)]` (and everything nested inside it) from the
//! stream: test code is allowed to panic, compare floats, and use any
//! atomic ordering it likes.

/// Token categories. Keywords are ordinary [`Kind::Ident`] tokens; rules
/// match on the text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including hex/octal/binary and suffixed forms).
    Int,
    /// Float literal (`1.0`, `1e-12`, `2f64`, `1.`).
    Float,
    /// String literal of any flavor (plain, raw, byte, raw byte).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Operator or delimiter, maximal-munched (`::`, `<=`, `..=`, …).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token category.
    pub kind: Kind,
    /// Exact source text (for [`Kind::Str`] the text is not preserved —
    /// literals are opaque to every rule).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// One comment (line `//…` or block `/*…*/`), with the line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text including the delimiters.
    pub text: String,
}

/// A lexed file: tokens plus the comment side table.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Unknown bytes are skipped (the linter must never panic on
/// weird input — it lints the code that enforces that very property).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..i].to_string(),
                });
            }
            b'"' => i = lex_string(b, i, &mut line, &mut out, 0),
            b'r' if matches!(b.get(i + 1), Some(b'"') | Some(b'#')) => {
                i = lex_raw_or_ident(src, b, i, &mut line, &mut out, 1)
            }
            b'b' if b.get(i + 1) == Some(&b'\'') => i = lex_char(b, i + 1, &mut line, &mut out),
            b'b' if b.get(i + 1) == Some(&b'"') => i = lex_string(b, i + 1, &mut line, &mut out, 1),
            b'b' if b.get(i + 1) == Some(&b'r')
                && matches!(b.get(i + 2), Some(b'"') | Some(b'#')) =>
            {
                i = lex_raw_or_ident(src, b, i, &mut line, &mut out, 2)
            }
            b'\'' => i = lex_quote(src, b, i, &mut line, &mut out),
            b'0'..=b'9' => i = lex_number(src, b, i, line, &mut out),
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: Kind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => i = lex_punct(src, b, i, line, &mut out),
        }
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Plain or byte string starting with the quote at `b[start + skip]`
/// (where `skip` covers a `b` prefix). Returns the index past the literal.
fn lex_string(b: &[u8], start: usize, line: &mut u32, out: &mut Lexed, skip: usize) -> usize {
    let tok_line = *line;
    let mut i = start + skip + 1; // past the opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => {
                i += 1;
                break;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    out.tokens.push(Tok {
        kind: Kind::Str,
        text: String::new(),
        line: tok_line,
    });
    i
}

/// Raw (byte) string `r#"…"#` — or a raw identifier `r#ident`, which shares
/// the `r#` prefix. `prefix` is 1 for `r`, 2 for `br`.
fn lex_raw_or_ident(
    src: &str,
    b: &[u8],
    start: usize,
    line: &mut u32,
    out: &mut Lexed,
    prefix: usize,
) -> usize {
    let mut i = start + prefix;
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        // `r#ident` (raw identifier): lex the identifier part.
        let id_start = i;
        let mut j = i;
        while j < b.len() && is_ident_continue(b[j]) {
            j += 1;
        }
        out.tokens.push(Tok {
            kind: Kind::Ident,
            text: src[id_start..j].to_string(),
            line: *line,
        });
        return j;
    }
    let tok_line = *line;
    i += 1; // past the quote
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                i += 1 + hashes;
                break;
            }
        }
        i += 1;
    }
    out.tokens.push(Tok {
        kind: Kind::Str,
        text: String::new(),
        line: tok_line,
    });
    i
}

/// Char or byte-char literal whose opening `'` is at `b[start]`.
fn lex_char(b: &[u8], start: usize, line: &mut u32, out: &mut Lexed) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => {
                i += 1;
                break;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    out.tokens.push(Tok {
        kind: Kind::Char,
        text: String::new(),
        line: *line,
    });
    i
}

/// A `'` is either a char literal (`'a'`, `'\n'`) or a lifetime (`'a`,
/// `'static`): look past the identifier run for a closing quote.
fn lex_quote(src: &str, b: &[u8], start: usize, line: &mut u32, out: &mut Lexed) -> usize {
    if let Some(&next) = b.get(start + 1) {
        if is_ident_start(next) {
            let mut j = start + 1;
            while j < b.len() && is_ident_continue(b[j]) {
                j += 1;
            }
            if b.get(j) != Some(&b'\'') {
                out.tokens.push(Tok {
                    kind: Kind::Lifetime,
                    text: src[start..j].to_string(),
                    line: *line,
                });
                return j;
            }
        }
    }
    lex_char(b, start, line, out)
}

fn lex_number(src: &str, b: &[u8], start: usize, line: u32, out: &mut Lexed) -> usize {
    let mut i = start;
    let mut kind = Kind::Int;
    if b[i] == b'0'
        && matches!(
            b.get(i + 1),
            Some(b'x') | Some(b'X') | Some(b'o') | Some(b'b')
        )
    {
        i += 2;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        out.tokens.push(Tok {
            kind,
            text: src[start..i].to_string(),
            line,
        });
        return i;
    }
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    if b.get(i) == Some(&b'.') {
        match b.get(i + 1) {
            Some(d) if d.is_ascii_digit() => {
                kind = Kind::Float;
                i += 1;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
            }
            // `1.max(2)` is a method call, `1..2` is a range; `1.` alone
            // is a float.
            Some(&d) if is_ident_start(d) || d == b'.' => {}
            _ => {
                kind = Kind::Float;
                i += 1;
            }
        }
    }
    if matches!(b.get(i), Some(b'e') | Some(b'E')) {
        let mut j = i + 1;
        if matches!(b.get(j), Some(b'+') | Some(b'-')) {
            j += 1;
        }
        if b.get(j).is_some_and(|d| d.is_ascii_digit()) {
            kind = Kind::Float;
            i = j;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix (`u64`, `f64`, …).
    let suffix_start = i;
    while i < b.len() && is_ident_continue(b[i]) {
        i += 1;
    }
    if matches!(&src[suffix_start..i], "f32" | "f64") {
        kind = Kind::Float;
    }
    out.tokens.push(Tok {
        kind,
        text: src[start..i].to_string(),
        line,
    });
    i
}

/// Multi-character operators, longest first (maximal munch).
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

fn lex_punct(src: &str, b: &[u8], start: usize, line: u32, out: &mut Lexed) -> usize {
    for op in OPS {
        if src[start..].starts_with(op) {
            out.tokens.push(Tok {
                kind: Kind::Punct,
                text: (*op).to_string(),
                line,
            });
            return start + op.len();
        }
    }
    out.tokens.push(Tok {
        kind: Kind::Punct,
        text: (b[start] as char).to_string(),
        line,
    });
    start + 1
}

/// Removes every item marked `#[test]` / `#[cfg(test)]` (attribute and
/// item body both) from the token stream. An attribute is treated as
/// test-only when it contains the identifier `test` and no `not` (so
/// `#[cfg(not(test))]` code stays linted).
pub fn strip_test_regions(tokens: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text == "#" && tokens.get(i + 1).is_some_and(|t| t.text == "[") {
            let close = match matching_bracket(&tokens, i + 1) {
                Some(c) => c,
                None => {
                    out.push(tokens[i].clone());
                    i += 1;
                    continue;
                }
            };
            let inner = &tokens[i + 2..close];
            let has = |name: &str| {
                inner
                    .iter()
                    .any(|t| t.kind == Kind::Ident && t.text == name)
            };
            if has("test") && !has("not") {
                i = skip_item(&tokens, close + 1);
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Index of the `]` matching the `[` at `open`, tolerating nested brackets.
fn matching_bracket(tokens: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Skips one item starting at `from` (more attributes, then either a
/// braced body or a `;`-terminated item). Returns the index past it.
fn skip_item(tokens: &[Tok], mut from: usize) -> usize {
    // Further attributes on the same item.
    while from < tokens.len()
        && tokens[from].text == "#"
        && tokens.get(from + 1).is_some_and(|t| t.text == "[")
    {
        match matching_bracket(tokens, from + 1) {
            Some(c) => from = c + 1,
            None => return tokens.len(),
        }
    }
    let mut depth = 0usize;
    while from < tokens.len() {
        match tokens[from].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return from + 1;
                }
            }
            ";" if depth == 0 => return from + 1,
            _ => {}
        }
        from += 1;
    }
    from
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let lexed = lex("let s = \"unwrap() // not a comment\"; // real: unwrap()\nx");
        assert!(lexed.tokens.iter().all(|t| !t.text.contains("unwrap")));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("real"));
        assert_eq!(lexed.tokens.last().map(|t| t.line), Some(2));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let lexed = lex("r#\"has \"quotes\" inside\"# r#fn b\"bytes\" br#\"raw\"#");
        let kinds: Vec<Kind> = lexed.tokens.iter().map(|t| t.kind).collect();
        assert_eq!(kinds, vec![Kind::Str, Kind::Ident, Kind::Str, Kind::Str]);
        assert_eq!(lexed.tokens[1].text, "fn");
    }

    #[test]
    fn chars_vs_lifetimes() {
        let lexed = lex("'a' 'static '\\n' &'b str b'x'");
        let kinds: Vec<Kind> = lexed.tokens.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                Kind::Char,
                Kind::Lifetime,
                Kind::Char,
                Kind::Punct,
                Kind::Lifetime,
                Kind::Ident,
                Kind::Char,
            ]
        );
    }

    #[test]
    fn number_flavors() {
        let lexed = lex("1.0 1e-12 2f64 0x1f 1..2 1.max(2) 7u64 1.");
        let kinds: Vec<(Kind, String)> = lexed
            .tokens
            .iter()
            .map(|t| (t.kind, t.text.clone()))
            .collect();
        assert_eq!(kinds[0], (Kind::Float, "1.0".into()));
        assert_eq!(kinds[1], (Kind::Float, "1e-12".into()));
        assert_eq!(kinds[2], (Kind::Float, "2f64".into()));
        assert_eq!(kinds[3], (Kind::Int, "0x1f".into()));
        assert_eq!(kinds[4].0, Kind::Int);
        assert_eq!(kinds[5], (Kind::Punct, "..".into()));
        assert_eq!(kinds[6].0, Kind::Int);
        // 1.max(2): int, dot, ident, (, int, )
        assert_eq!(kinds[7], (Kind::Int, "1".into()));
        assert_eq!(kinds[8], (Kind::Punct, ".".into()));
        assert_eq!(kinds[9], (Kind::Ident, "max".into()));
        let last = kinds.last().unwrap();
        assert_eq!(*last, (Kind::Float, "1.".into()));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ code");
        assert_eq!(lexed.tokens.len(), 1);
        assert_eq!(lexed.tokens[0].text, "code");
    }

    #[test]
    fn operators_munch_maximally() {
        assert_eq!(
            texts("a <= b >>= c ..= d"),
            vec!["a", "<=", "b", ">>=", "c", "..=", "d"]
        );
    }

    #[test]
    fn test_regions_are_stripped() {
        let src = "fn keep() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn gone() { y.unwrap(); } }\n\
                   #[test]\nfn also_gone() { z.unwrap(); }\n\
                   #[cfg(not(test))]\nfn kept_too() { w.unwrap(); }\n";
        let toks = strip_test_regions(lex(src).tokens);
        let names: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(names.contains(&"keep"));
        assert!(names.contains(&"kept_too"));
        assert!(!names.contains(&"gone"));
        assert!(!names.contains(&"also_gone"));
    }
}
