//! Ranked top-k retrieval — an extension the paper's related-work section
//! motivates (top-k queries on probabilistic data, Re et al. / Li et al.).
//!
//! The threshold machinery already retrieves occurrences in decreasing
//! probability order from RMQ ranges; replacing the recursion stack with a
//! max-heap ("best-first" search) yields the k most probable occurrences
//! without any threshold at all, in O((k + log n)·log k)-flavoured time.
//!
//! Long patterns use the *lazy bound* pattern: heap entries carry the
//! filter-level upper bound; when an entry surfaces, its exact length-`m`
//! value is computed and re-inserted, and it is only emitted once exact —
//! correct because every other entry still bounds its contents from above.
//!
//! Values ranked here are the *stored* window products read off the
//! cumulative array; the callers re-verify every emitted source through
//! the flat [`ustr_uncertain::ProbPlane`] kernel to produce the canonical
//! probabilities the [`crate::QueryExecutor`] contract reports.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use ustr_suffix::SuffixTree;

use crate::carray::CumulativeLogProb;

/// Max-heap entry: either an unexplored range (keyed by the value of its
/// best slot) or an exact candidate awaiting emission.
enum Entry {
    Range {
        key: f64,
        slot: usize,
        l: usize,
        r: usize,
    },
    Exact {
        key: f64,
        slot: usize,
    },
}

impl Entry {
    fn key(&self) -> f64 {
        match self {
            Entry::Range { key, .. } | Entry::Exact { key, .. } => *key,
        }
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key()
            .partial_cmp(&other.key())
            .unwrap_or(Ordering::Equal)
    }
}

/// Best-first top-k over `[l, r]`.
///
/// `bound(l, r) -> (slot, value)` returns the best slot of a range and an
/// *upper bound* of its value; `exact(slot)` returns the true value
/// (`-inf` to drop the slot); `source(slot)` maps a slot to the deduplicated
/// output key and position. Emits at most `k` distinct sources in
/// decreasing exact-value order, skipping values below `floor`.
pub(crate) fn top_k_search(
    l: usize,
    r: usize,
    k: usize,
    floor: f64,
    bound: impl Fn(usize, usize) -> (usize, f64),
    exact: impl Fn(usize) -> f64,
    source: impl Fn(usize) -> Option<usize>,
) -> Vec<(usize, f64)> {
    let mut out: Vec<(usize, f64)> = Vec::with_capacity(k);
    if k == 0 || l > r {
        return out;
    }
    let mut seen: HashSet<usize> = HashSet::new();
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    let (slot, key) = bound(l, r);
    heap.push(Entry::Range { key, slot, l, r });
    while let Some(entry) = heap.pop() {
        if out.len() >= k || entry.key() < floor {
            break;
        }
        match entry {
            Entry::Range { slot, l, r, .. } => {
                let v = exact(slot);
                if v >= floor {
                    heap.push(Entry::Exact { key: v, slot });
                }
                if slot > l {
                    let (s, b) = bound(l, slot - 1);
                    if b >= floor {
                        heap.push(Entry::Range {
                            key: b,
                            slot: s,
                            l,
                            r: slot - 1,
                        });
                    }
                }
                if slot < r {
                    let (s, b) = bound(slot + 1, r);
                    if b >= floor {
                        heap.push(Entry::Range {
                            key: b,
                            slot: s,
                            l: slot + 1,
                            r,
                        });
                    }
                }
            }
            Entry::Exact { key, slot } => {
                if let Some(src) = source(slot) {
                    if seen.insert(src) {
                        out.push((src, key));
                    }
                }
            }
        }
    }
    out
}

/// Shared driver used by the index types: top-k over the suffix range of a
/// pattern at window length `m`, through a level RMQ accessor pair.
/// `floor` is a log-probability cut-off: candidates whose (exact) window
/// value falls below it are never emitted (`f64::MIN` disables the cut).
#[allow(clippy::too_many_arguments)]
pub(crate) fn top_k_for_range(
    tree: &SuffixTree,
    cum: &CumulativeLogProb,
    levels: &crate::levels::Levels,
    m: usize,
    l: usize,
    r: usize,
    k: usize,
    floor: f64,
    source: impl Fn(usize) -> Option<usize>,
) -> Vec<(usize, f64)> {
    if m <= levels.max_short() {
        let (query, value) = levels.short_accessors(m, tree, cum);
        top_k_search(
            l,
            r,
            k,
            floor,
            |a, b| {
                let s = query(a, b);
                (s, value(s))
            },
            value,
            source,
        )
    } else {
        let Some((filter_len, query, value)) = levels.long_accessors(m, tree, cum) else {
            // No blocking level: rank by scanning (rare; tiny texts only).
            let mut all: Vec<(usize, f64)> = (l..=r)
                .filter_map(|j| {
                    let v = cum.window(tree.sa(j), m);
                    if v == f64::NEG_INFINITY || v < floor {
                        return None;
                    }
                    source(j).map(|s| (s, v))
                })
                .collect();
            all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal));
            let mut seen = HashSet::new();
            all.retain(|&(s, _)| seen.insert(s));
            all.truncate(k);
            return all;
        };
        debug_assert!(filter_len <= m);
        top_k_search(
            l,
            r,
            k,
            floor,
            |a, b| {
                let s = query(a, b);
                (s, value(s)) // filter-length value: an upper bound for m
            },
            |slot| cum.window(tree.sa(slot), m),
            source,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_returns_descending_distinct() {
        let values = [0.3, 0.9, 0.1, 0.7, 0.9, 0.2];
        let bound = |l: usize, r: usize| {
            let mut best = l;
            for i in l + 1..=r {
                if values[i] > values[best] {
                    best = i;
                }
            }
            (best, values[best])
        };
        let got = top_k_search(0, 5, 3, f64::MIN, bound, |s| values[s], Some);
        let vals: Vec<f64> = got.iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![0.9, 0.9, 0.7]);
    }

    #[test]
    fn top_k_dedupes_sources() {
        let values = [0.9, 0.8, 0.7];
        let bound = |l: usize, r: usize| {
            let mut best = l;
            for i in l + 1..=r {
                if values[i] > values[best] {
                    best = i;
                }
            }
            (best, values[best])
        };
        // Every slot maps to the same source: only one output.
        let got = top_k_search(0, 2, 3, f64::MIN, bound, |s| values[s], |_| Some(42));
        assert_eq!(got, vec![(42, 0.9)]);
    }

    #[test]
    fn lazy_bounds_resolve_correctly() {
        // Bounds deliberately overestimate; exact values reorder entries.
        let bounds = [1.0, 0.95, 0.9];
        let exacts = [0.1, 0.94, 0.5];
        let bound = |l: usize, r: usize| {
            let mut best = l;
            for i in l + 1..=r {
                if bounds[i] > bounds[best] {
                    best = i;
                }
            }
            (best, bounds[best])
        };
        let got = top_k_search(0, 2, 3, f64::MIN, bound, |s| exacts[s], Some);
        let vals: Vec<f64> = got.iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![0.94, 0.5, 0.1], "emitted in exact order");
    }

    #[test]
    fn zero_k_and_empty_range() {
        let bound = |_: usize, _: usize| (0, 1.0);
        assert!(top_k_search(0, 5, 0, f64::MIN, bound, |_| 1.0, Some).is_empty());
        assert!(top_k_search(3, 2, 4, f64::MIN, bound, |_| 1.0, Some).is_empty());
    }
}
