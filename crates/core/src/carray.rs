//! The cumulative probability array `C` (§4.1), in log space.
//!
//! The paper stores `C[j] = Π_{i≤j} pr(cᵢ)` and evaluates any window as
//! `C[i+j-1] / C[i-1]`. Products of hundreds of probabilities underflow
//! `f64`, so we store cumulative *log* probabilities and evaluate windows by
//! subtraction — a monotone transform, so every comparison and every RMQ
//! argmax is unchanged. Separator positions contribute 0 to the sums and are
//! tracked separately so any window crossing one evaluates to −∞.

use ustr_uncertain::canon;

/// Cumulative log-probability array with separator tracking.
///
/// ```
/// use ustr_core::CumulativeLogProb;
/// // Figure 5's special string: probabilities of "banana".
/// let cum = CumulativeLogProb::new(&[0.4, 0.7, 0.5, 0.8, 0.9, 0.6], |_| false);
/// // "ana" aligned at 1: .7*.5*.8 = .28
/// assert!((cum.window(1, 3).exp() - 0.28).abs() < 1e-12);
/// assert_eq!(cum.window(4, 3), f64::NEG_INFINITY); // out of bounds
/// ```
#[derive(Debug, Clone)]
pub struct CumulativeLogProb {
    /// `prefix[i]` = Σ log(prob) over the first `i` positions.
    prefix: Vec<f64>,
    /// `sentinels[i]` = number of separator positions among the first `i`.
    sentinels: Vec<u32>,
}

impl CumulativeLogProb {
    /// Builds from per-position probabilities; `is_sentinel(i)` marks
    /// separator positions (their probability is ignored).
    pub fn new(probs: &[f64], is_sentinel: impl Fn(usize) -> bool) -> Self {
        let n = probs.len();
        let mut prefix = Vec::with_capacity(n + 1);
        let mut sentinels = Vec::with_capacity(n + 1);
        prefix.push(0.0);
        sentinels.push(0);
        let mut sum = 0.0f64;
        let mut count = 0u32;
        for (i, &p) in probs.iter().enumerate() {
            if is_sentinel(i) {
                count += 1;
            } else {
                debug_assert!(canon::is_positive_prob(p), "probabilities must be positive");
                sum += canon::ln(p);
            }
            prefix.push(sum);
            sentinels.push(count);
        }
        Self { prefix, sentinels }
    }

    /// Decomposes into the `(prefix, sentinels)` arrays accepted by
    /// [`CumulativeLogProb::from_parts`] (the persistent representation used
    /// by index snapshots; serializing the prefix sums directly keeps window
    /// evaluations bit-identical after a load).
    pub fn to_parts(&self) -> (Vec<f64>, Vec<u32>) {
        (self.prefix.clone(), self.sentinels.clone())
    }

    /// Reassembles from parts produced by [`CumulativeLogProb::to_parts`].
    /// Fails when the arrays are structurally inconsistent (empty, unequal
    /// lengths, or a non-monotone sentinel count).
    pub fn from_parts(prefix: Vec<f64>, sentinels: Vec<u32>) -> Result<Self, &'static str> {
        if prefix.is_empty() || prefix.len() != sentinels.len() {
            return Err("prefix and sentinel arrays must be non-empty and equal-length");
        }
        if sentinels.windows(2).any(|w| w[0] > w[1]) {
            return Err("sentinel counts must be non-decreasing");
        }
        Ok(Self { prefix, sentinels })
    }

    /// Number of positions covered.
    pub fn len(&self) -> usize {
        self.prefix.len() - 1
    }

    /// Returns `true` when no positions are covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Log probability of the window `[start, start + len)`: −∞ when the
    /// window leaves the array or crosses a separator; 0 (= log 1) for the
    /// empty window.
    #[inline]
    pub fn window(&self, start: usize, len: usize) -> f64 {
        let end = start + len;
        if end > self.len() {
            return f64::NEG_INFINITY;
        }
        if self.sentinels[end] != self.sentinels[start] {
            return f64::NEG_INFINITY;
        }
        self.prefix[end] - self.prefix[start]
    }

    /// Number of positions from `start` until the next separator (or the end
    /// of the array): the longest valid window length at `start`.
    pub fn run_length(&self, start: usize) -> usize {
        // Binary search the first prefix index > start with a higher
        // separator count.
        let target = self.sentinels[start];
        let mut lo = start;
        let mut hi = self.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.sentinels[mid + 1] > target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo - start
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        self.prefix.capacity() * std::mem::size_of::<f64>()
            + self.sentinels.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_match_direct_products() {
        let probs = [0.4, 0.7, 0.5, 0.8, 0.9, 0.6];
        let cum = CumulativeLogProb::new(&probs, |_| false);
        for start in 0..probs.len() {
            for len in 0..=probs.len() - start {
                let direct: f64 = probs[start..start + len].iter().product();
                assert!(
                    (cum.window(start, len).exp() - direct).abs() < 1e-9,
                    "window({start},{len})"
                );
            }
        }
    }

    #[test]
    fn sentinel_crossing_is_rejected() {
        // probs: a b | c d  (index 2 is a separator)
        let probs = [0.5, 0.5, 1.0, 0.5, 0.5];
        let cum = CumulativeLogProb::new(&probs, |i| i == 2);
        assert!(cum.window(0, 2).is_finite());
        assert_eq!(cum.window(0, 3), f64::NEG_INFINITY);
        assert_eq!(cum.window(1, 3), f64::NEG_INFINITY);
        assert!(cum.window(3, 2).is_finite());
        assert_eq!(cum.window(2, 1), f64::NEG_INFINITY);
    }

    #[test]
    fn run_length_finds_next_separator() {
        let probs = [0.5, 0.5, 1.0, 0.5, 1.0, 0.5];
        let cum = CumulativeLogProb::new(&probs, |i| i == 2 || i == 4);
        assert_eq!(cum.run_length(0), 2);
        assert_eq!(cum.run_length(1), 1);
        assert_eq!(cum.run_length(2), 0);
        assert_eq!(cum.run_length(3), 1);
        assert_eq!(cum.run_length(5), 1);
    }

    #[test]
    fn no_underflow_on_long_products() {
        // 10^5 positions at 0.9 — a plain f64 product would underflow to 0
        // near 7000 positions; log space keeps it exact.
        let probs = vec![0.9f64; 100_000];
        let cum = CumulativeLogProb::new(&probs, |_| false);
        let logp = cum.window(0, 100_000);
        assert!(logp.is_finite());
        assert!((logp - 100_000.0 * 0.9f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn empty_array() {
        let cum = CumulativeLogProb::new(&[], |_| false);
        assert!(cum.is_empty());
        assert_eq!(cum.window(0, 0), 0.0);
        assert_eq!(cum.window(0, 1), f64::NEG_INFINITY);
    }
}
