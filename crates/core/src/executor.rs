//! Execution-strategy-independent per-document querying.
//!
//! A query over one uncertain document can be answered by very different
//! machinery: the paper's built [`Index`] (suffix tree + RMQ levels), or a
//! direct scan of the source string (as `ustr-baseline`'s `ScanIndex` does
//! for documents that have not been indexed yet — e.g. a live memtable).
//! [`QueryExecutor`] is the contract that makes those interchangeable: any
//! two executors over the same document with the same `τmin` must return
//! **bit-identical** answers for every method.
//!
//! That contract is only satisfiable because answers are *canonical*:
//!
//! * probabilities are always recomputed from the source model
//!   (`UncertainString::match_probability`), never read off an execution
//!   structure's internal arithmetic;
//! * top-k uses the total `(probability ↓, position ↑)` order, so ties at
//!   the cut are never left to implementation arbitration;
//! * the top-k candidate set is exactly the threshold answer at `τmin`.

use crate::{error::Error, index::Index};

/// The canonical total order for per-document hits: probability
/// descending, then position ascending. Every [`QueryExecutor`]'s top-k
/// ranks with exactly this comparator — it is what makes ties at the cut
/// implementation-independent.
pub fn canonical_hit_order(a: &(usize, f64), b: &(usize, f64)) -> std::cmp::Ordering {
    b.1.partial_cmp(&a.1)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.0.cmp(&b.0))
}

/// A per-document query engine for one uncertain string, fixed at a
/// construction threshold `τmin`.
///
/// **Interchangeability contract:** any two executors over the same
/// document with the same `τmin` must return bit-identical answers for
/// every method — probabilities are canonical (recomputed from the source
/// model), top-k uses the total `(probability ↓, position ↑)` order, and
/// the top-k candidate set is exactly the threshold answer at `τmin`.
pub trait QueryExecutor: Send + Sync {
    /// The smallest τ this executor accepts.
    fn tau_min(&self) -> f64;

    /// All `(position, probability)` occurrences of `pattern` with
    /// probability ≥ `tau`, sorted by position. Requires `tau ≥ tau_min`.
    fn threshold_hits(&self, pattern: &[u8], tau: f64) -> Result<Vec<(usize, f64)>, Error>;

    /// The `k` most probable occurrences with probability ≥ `tau_min`, in
    /// `(probability ↓, position ↑)` order.
    fn top_k_hits(&self, pattern: &[u8], k: usize) -> Result<Vec<(usize, f64)>, Error>;
}

impl QueryExecutor for Index {
    fn tau_min(&self) -> f64 {
        Index::tau_min(self)
    }

    fn threshold_hits(&self, pattern: &[u8], tau: f64) -> Result<Vec<(usize, f64)>, Error> {
        Ok(self.query(pattern, tau)?.into_hits())
    }

    fn top_k_hits(&self, pattern: &[u8], k: usize) -> Result<Vec<(usize, f64)>, Error> {
        self.query_top_k(pattern, k)
    }
}
