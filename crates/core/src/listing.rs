//! Uncertain string listing (§6): report every string in a collection that
//! contains a probable occurrence of the pattern.

use std::collections::HashMap;
use std::time::Instant;

use ustr_suffix::SuffixTree;
use ustr_uncertain::{canon, transform_with_options, PatternRanks, ProbPlane, UncertainString};

use crate::{
    carray::CumulativeLogProb,
    error::{validate_query, Error},
    levels::{DedupStrategy, Levels},
    options::IndexOptions,
    snapshot::{CumState, ListingIndexState, TreeState},
    stats::BuildStats,
};

/// Relevance metric for string listing (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelMetric {
    /// Maximum occurrence probability (`Rel_max`) — supports the optimal
    /// output-sensitive query path.
    Max,
    /// The paper's OR metric: `Σ prᵢ − Π prᵢ` over all occurrences with
    /// probability ≥ τmin. Requires touching every occurrence.
    Or,
    /// Independent-event OR: `1 − Π(1 − prᵢ)` — exposed alongside the
    /// paper's formula. Requires touching every occurrence.
    IndependentOr,
}

/// One listed string: its id in the collection and its relevance value.
#[derive(Debug, Clone, PartialEq)]
pub struct ListingHit {
    /// Index of the string in the collection passed to `build`.
    pub doc: usize,
    /// Relevance of the query pattern in that string.
    pub relevance: f64,
}

/// String-listing index over a collection of uncertain strings.
///
/// ```
/// use ustr_core::{ListingIndex, RelMetric};
/// use ustr_uncertain::UncertainString;
/// // Figure 2: only d1 contains "BF" with probability > 0.1.
/// let docs = vec![
///     UncertainString::parse("A:.4,B:.3,F:.3 | B:.3,L:.3,F:.3,J:.1 | F:.5,J:.5").unwrap(),
///     UncertainString::parse("A:.6,C:.4 | B:.5,F:.3,E:.2 | B:.4,C:.3,P:.2,F:.1").unwrap(),
///     UncertainString::parse("A:.4,F:.4,P:.2 | I:.3,L:.3,P:.3,T:.1 | A").unwrap(),
/// ];
/// let idx = ListingIndex::build(&docs, 0.05).unwrap();
/// let hits = idx.query(b"BF", 0.1).unwrap();
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].doc, 0);
/// ```
pub struct ListingIndex {
    docs: Vec<UncertainString>,
    /// Per-document flat verification planes — derived state, rebuilt on
    /// construction and snapshot load, never persisted.
    planes: Vec<ProbPlane>,
    tree: SuffixTree,
    cum: CumulativeLogProb,
    levels: Levels,
    /// X position → document id (`u32::MAX` at separators).
    doc_of: Vec<u32>,
    /// X position → source position *within its document*.
    src_of: Vec<u32>,
    /// Start of each document in the concatenated *source* position space
    /// (for globally-unique dedup keys).
    doc_base: Vec<u32>,
    tau_min: f64,
    has_correlations: bool,
    stats: BuildStats,
}

const NONE32: u32 = u32::MAX;

impl ListingIndex {
    /// Builds the index over `docs` with construction threshold `tau_min`.
    pub fn build(docs: &[UncertainString], tau_min: f64) -> Result<Self, Error> {
        Self::build_with(docs, tau_min, &IndexOptions::default())
    }

    /// Builds with explicit [`IndexOptions`].
    pub fn build_with(
        docs: &[UncertainString],
        tau_min: f64,
        options: &IndexOptions,
    ) -> Result<Self, Error> {
        let start = Instant::now();
        let mut chars: Vec<u8> = Vec::new();
        let mut probs: Vec<f64> = Vec::new();
        let mut doc_of: Vec<u32> = Vec::new();
        let mut src_of: Vec<u32> = Vec::new();
        let mut doc_base: Vec<u32> = Vec::with_capacity(docs.len());
        let mut source_total = 0usize;
        let mut num_factors = 0usize;
        for (id, d) in docs.iter().enumerate() {
            doc_base.push(source_total as u32);
            let t = transform_with_options(d, tau_min, &options.transform)?;
            num_factors += t.num_factors;
            chars.extend_from_slice(t.special.chars());
            probs.extend_from_slice(t.special.probs());
            for k in 0..t.len() {
                match t.source_pos(k) {
                    Some(p) => {
                        doc_of.push(id as u32);
                        src_of.push(p as u32);
                    }
                    None => {
                        doc_of.push(NONE32);
                        src_of.push(NONE32);
                    }
                }
            }
            source_total += d.len();
        }
        let has_correlations = docs.iter().any(|d| !d.correlations().is_empty());
        let tree = SuffixTree::build(chars.clone());
        let cum = CumulativeLogProb::new(&probs, |i| chars[i] == 0);
        let max_short = options.short_levels_for(tree.num_slots());

        // Doc-level dedup keeps the max-probability entry per document per
        // partition (Rel_max). Under correlations the stored values are only
        // upper bounds, so the "max" entry could be the wrong one — fall back
        // to source-level dedup and aggregate per document at query time.
        let doc_key = |j: usize| -> Option<u32> {
            let x = tree.sa(j);
            doc_of.get(x).copied().filter(|&d| d != NONE32)
        };
        let source_key = |j: usize| -> Option<u32> {
            let x = tree.sa(j);
            let d = *doc_of.get(x)?;
            if d == NONE32 {
                return None;
            }
            Some(doc_base[d as usize] + src_of[x])
        };
        let dedup = if options.disable_dedup {
            DedupStrategy::None
        } else if has_correlations {
            DedupStrategy::BySource(&source_key)
        } else {
            DedupStrategy::ByKeyMax(&doc_key)
        };
        let levels = Levels::build(
            &tree,
            &cum,
            max_short,
            options.ratio(),
            !options.disable_long_levels,
            &dedup,
        );
        let mut stats = BuildStats {
            source_len: source_total,
            transformed_len: chars.len(),
            num_factors,
            build_time: start.elapsed(),
            heap_bytes: 0,
        };
        let mut idx = Self {
            docs: docs.to_vec(),
            planes: docs.iter().map(ProbPlane::build).collect(),
            tree,
            cum,
            levels,
            doc_of,
            src_of,
            doc_base,
            tau_min,
            has_correlations,
            stats: BuildStats::default(),
        };
        stats.heap_bytes = idx.heap_size();
        idx.stats = stats;
        Ok(idx)
    }

    /// Number of strings in the collection.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// The construction-time threshold.
    pub fn tau_min(&self) -> f64 {
        self.tau_min
    }

    /// Construction statistics.
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// Decomposes the index into its persistence-ready snapshot state (see
    /// [`crate::snapshot`]).
    pub fn to_snapshot(&self) -> ListingIndexState {
        let (text, sa, lcp) = self.tree.to_parts();
        let (prefix, sentinels) = self.cum.to_parts();
        ListingIndexState {
            docs: self.docs.clone(),
            tree: TreeState { text, sa, lcp },
            cum: CumState { prefix, sentinels },
            levels: self.levels.to_parts(),
            doc_of: self.doc_of.clone(),
            src_of: self.src_of.clone(),
            doc_base: self.doc_base.clone(),
            tau_min: self.tau_min,
            stats: self.stats.clone(),
        }
    }

    /// Reassembles an index from snapshot state; the result answers every
    /// query identically to the original. Fails with
    /// [`Error::InvalidSnapshot`] on structurally inconsistent state.
    pub fn from_snapshot(state: ListingIndexState) -> Result<Self, Error> {
        use crate::snapshot::{invalid, validate_tree_state};
        validate_tree_state(&state.tree)?;
        let n = state.tree.text.len();
        if state.doc_of.len() != n || state.src_of.len() != n {
            return Err(invalid("document maps do not match the text length"));
        }
        if state.doc_base.len() != state.docs.len() {
            return Err(invalid("document base count does not match collection"));
        }
        for (&d, &s) in state.doc_of.iter().zip(state.src_of.iter()) {
            if d == NONE32 {
                continue;
            }
            let Some(doc) = state.docs.get(d as usize) else {
                return Err(invalid("document id outside the collection"));
            };
            if s == NONE32 || s as usize >= doc.len() {
                return Err(invalid("source offset outside its document"));
            }
        }
        if !canon::valid_tau(state.tau_min) {
            return Err(invalid("tau_min outside (0, 1]"));
        }
        let has_correlations = state.docs.iter().any(|d| !d.correlations().is_empty());
        let tree = SuffixTree::from_parts(state.tree.text, state.tree.sa, state.tree.lcp);
        let cum = CumulativeLogProb::from_parts(state.cum.prefix, state.cum.sentinels)
            .map_err(invalid)?;
        if cum.len() != tree.text_len() {
            return Err(invalid("cumulative array length does not match text"));
        }
        let levels = Levels::from_parts(state.levels, &tree, &cum)?;
        let planes = state.docs.iter().map(ProbPlane::build).collect();
        Ok(Self {
            docs: state.docs,
            planes,
            tree,
            cum,
            levels,
            doc_of: state.doc_of,
            src_of: state.src_of,
            doc_base: state.doc_base,
            tau_min: state.tau_min,
            has_correlations,
            stats: state.stats,
        })
    }

    /// Lists all strings with `Rel_max ≥ tau` (the default metric), sorted
    /// by document id.
    pub fn query(&self, pattern: &[u8], tau: f64) -> Result<Vec<ListingHit>, Error> {
        self.query_with_metric(pattern, tau, RelMetric::Max)
    }

    /// Lists all strings whose relevance under `metric` is ≥ `tau`.
    ///
    /// `Rel_max` runs in output-sensitive time via the RMQ recursion; the OR
    /// metrics must inspect every occurrence in the suffix range (as §6
    /// notes for complex relevance metrics).
    pub fn query_with_metric(
        &self,
        pattern: &[u8],
        tau: f64,
        metric: RelMetric,
    ) -> Result<Vec<ListingHit>, Error> {
        validate_query(pattern, tau, self.tau_min)?;
        let Some((l, r)) = self.tree.suffix_range(pattern) else {
            return Ok(Vec::new());
        };
        match metric {
            RelMetric::Max => self.query_max(pattern, tau, l, r),
            RelMetric::Or | RelMetric::IndependentOr => {
                self.query_aggregate(pattern, tau, l, r, metric)
            }
        }
    }

    fn doc_and_src(&self, slot: usize) -> Option<(usize, usize)> {
        let x = self.tree.sa(slot);
        let d = *self.doc_of.get(x)?;
        if d == NONE32 {
            return None;
        }
        Some((d as usize, self.src_of[x] as usize))
    }

    /// Canonical probability of `pattern` at `src` in `doc`, verified
    /// through the document's flat plane. Candidates arrive in slot order
    /// with documents interleaved, so the pattern→rank remap is compiled
    /// lazily per touched document and cached in `compiled` for the rest of
    /// the query — nothing is allocated per candidate.
    fn verify(
        &self,
        compiled: &mut HashMap<usize, PatternRanks>,
        pattern: &[u8],
        doc: usize,
        src: usize,
    ) -> f64 {
        let plane = &self.planes[doc];
        let ranks = compiled
            .entry(doc)
            .or_insert_with(|| plane.compile(pattern));
        plane.kernel(pattern, ranks).match_probability(src)
    }

    fn query_max(
        &self,
        pattern: &[u8],
        tau: f64,
        l: usize,
        r: usize,
    ) -> Result<Vec<ListingHit>, Error> {
        let m = pattern.len();
        let log_tau = canon::ln(tau);
        let candidates = if m <= self.levels.max_short() {
            self.levels
                .report_short(m, l, r, log_tau, &self.tree, &self.cum)
        } else {
            self.levels
                .report_long(m, l, r, log_tau, &self.tree, &self.cum)
        };
        let mut best: HashMap<usize, f64> = HashMap::new();
        let mut compiled: HashMap<usize, PatternRanks> = HashMap::new();
        for (slot, _stored) in candidates {
            let Some((doc, src)) = self.doc_and_src(slot) else {
                continue;
            };
            // Canonical probability (see `Index::query`): recomputed from
            // the document model via its plane kernel, so `Rel_max` values
            // agree bit-for-bit with any per-document executor folding its
            // own threshold hits.
            let exact = self.verify(&mut compiled, pattern, doc, src);
            if exact >= tau - ustr_uncertain::PROB_EPS {
                let e = best.entry(doc).or_insert(0.0);
                if exact > *e {
                    *e = exact;
                }
            }
        }
        let mut hits: Vec<ListingHit> = best
            .into_iter()
            .map(|(doc, relevance)| ListingHit { doc, relevance })
            .collect();
        hits.sort_unstable_by_key(|h| h.doc);
        Ok(hits)
    }

    /// OR-style metrics: gather every distinct occurrence (probability ≥
    /// τmin, the transform's visibility horizon) per document, then combine.
    fn query_aggregate(
        &self,
        pattern: &[u8],
        tau: f64,
        l: usize,
        r: usize,
        metric: RelMetric,
    ) -> Result<Vec<ListingHit>, Error> {
        let m = pattern.len();
        let mut occs: HashMap<(usize, usize), f64> = HashMap::new();
        let mut compiled: HashMap<usize, PatternRanks> = HashMap::new();
        for slot in l..=r {
            let Some((doc, src)) = self.doc_and_src(slot) else {
                continue;
            };
            if occs.contains_key(&(doc, src)) {
                continue;
            }
            let stored = self.cum.window(self.tree.sa(slot), m);
            if stored == f64::NEG_INFINITY {
                continue;
            }
            let exact = self.verify(&mut compiled, pattern, doc, src);
            if canon::is_positive_prob(exact) {
                occs.insert((doc, src), exact);
            }
        }
        let mut per_doc: HashMap<usize, Vec<f64>> = HashMap::new();
        for ((doc, _), p) in occs {
            per_doc.entry(doc).or_default().push(p);
        }
        let mut hits = Vec::new();
        for (doc, probs) in per_doc {
            let relevance = match metric {
                RelMetric::Or => {
                    // §6: a single occurrence's relevance is its probability;
                    // the Σp − Πp form applies to multiple occurrences.
                    if probs.len() == 1 {
                        probs[0]
                    } else {
                        let sum: f64 = probs.iter().sum();
                        let prod: f64 = probs.iter().product();
                        sum - prod
                    }
                }
                RelMetric::IndependentOr => canon::independent_or(probs.iter().copied()),
                RelMetric::Max => unreachable!("handled by query_max"),
            };
            if relevance >= tau - ustr_uncertain::PROB_EPS {
                hits.push(ListingHit { doc, relevance });
            }
        }
        hits.sort_unstable_by_key(|h| h.doc);
        Ok(hits)
    }

    /// The `k` most relevant documents under `Rel_max`, ranked descending.
    /// Best-first search over the doc-deduplicated RMQ levels; only
    /// occurrences visible at `tau_min` are candidates.
    pub fn query_top_k(&self, pattern: &[u8], k: usize) -> Result<Vec<ListingHit>, Error> {
        crate::error::validate_pattern(pattern)?;
        let Some((l, r)) = self.tree.suffix_range(pattern) else {
            return Ok(Vec::new());
        };
        let m = pattern.len();
        let hits = crate::topk::top_k_for_range(
            &self.tree,
            &self.cum,
            &self.levels,
            m,
            l,
            r,
            k,
            f64::MIN,
            |slot| self.doc_and_src(slot).map(|(doc, _)| doc),
        );
        let mut out: Vec<ListingHit> = hits
            .into_iter()
            .map(|(doc, v)| {
                let relevance = if self.has_correlations {
                    // Stored values are bounds; recompute the document's
                    // exact Rel_max through its plane.
                    crate::listing::exact_rel_max(&self.planes[doc], pattern)
                } else {
                    canon::exp(v)
                };
                ListingHit { doc, relevance }
            })
            .collect();
        out.sort_by(|a, b| {
            b.relevance
                .partial_cmp(&a.relevance)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(out)
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        use std::mem::size_of;
        self.tree.heap_size()
            + self.cum.heap_size()
            + self.levels.heap_size()
            + self.planes.iter().map(ProbPlane::heap_size).sum::<usize>()
            + (self.doc_of.capacity() + self.src_of.capacity() + self.doc_base.capacity())
                * size_of::<u32>()
    }
}

/// Exact `Rel_max` by scanning one document's plane (used only under
/// correlations, where stored values are upper bounds).
fn exact_rel_max(plane: &ProbPlane, pattern: &[u8]) -> f64 {
    let m = pattern.len();
    if m > plane.len() {
        return 0.0;
    }
    plane.with_kernel(pattern, |kernel| {
        (0..=plane.len() - m)
            .map(|i| kernel.match_probability(i))
            .fold(0.0, f64::max)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustr_baseline::NaiveScanner;

    fn figure_2_docs() -> Vec<UncertainString> {
        vec![
            UncertainString::parse("A:.4,B:.3,F:.3 | B:.3,L:.3,F:.3,J:.1 | F:.5,J:.5").unwrap(),
            UncertainString::parse("A:.6,C:.4 | B:.5,F:.3,E:.2 | B:.4,C:.3,P:.2,F:.1").unwrap(),
            UncertainString::parse("A:.4,F:.4,P:.2 | I:.3,L:.3,P:.3,T:.1 | A").unwrap(),
        ]
    }

    #[test]
    fn figure_2_listing() {
        let idx = ListingIndex::build(&figure_2_docs(), 0.05).unwrap();
        let hits = idx.query(b"BF", 0.1).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 0);
        assert!((hits[0].relevance - 0.3 * 0.5).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_naive_listing() {
        let docs = figure_2_docs();
        let idx = ListingIndex::build(&docs, 0.02).unwrap();
        let alphabet = [b'A', b'B', b'F', b'C', b'L'];
        for &a in &alphabet {
            for &b in &alphabet {
                let pattern = [a, b];
                for tau in [0.02, 0.05, 0.1, 0.3] {
                    let got: Vec<usize> = idx
                        .query(&pattern, tau)
                        .unwrap()
                        .into_iter()
                        .map(|h| h.doc)
                        .collect();
                    let expected = NaiveScanner::listing(&docs, &pattern, tau);
                    assert_eq!(got, expected, "pattern {pattern:?} tau {tau}");
                }
            }
        }
    }

    #[test]
    fn relevance_values_are_max_probabilities() {
        let docs = figure_2_docs();
        let idx = ListingIndex::build(&docs, 0.02).unwrap();
        for hit in idx.query(b"F", 0.02).unwrap() {
            let expected = NaiveScanner::relevance_max(&docs[hit.doc], b"F");
            assert!((hit.relevance - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn or_metric_aggregates_occurrences() {
        let docs = figure_2_docs();
        // Tiny tau_min so the transform sees every occurrence.
        let idx = ListingIndex::build(&docs, 0.001).unwrap();
        let hits = idx.query_with_metric(b"F", 0.05, RelMetric::Or).unwrap();
        for hit in &hits {
            let expected = NaiveScanner::relevance_or(&docs[hit.doc], b"F");
            assert!(
                (hit.relevance - expected).abs() < 1e-9,
                "doc {} rel {} expected {expected}",
                hit.doc,
                hit.relevance
            );
        }
        assert!(!hits.is_empty());
        let indep = idx
            .query_with_metric(b"F", 0.05, RelMetric::IndependentOr)
            .unwrap();
        for hit in &indep {
            let expected = NaiveScanner::relevance_independent_or(&docs[hit.doc], b"F");
            assert!((hit.relevance - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_collection_and_missing_patterns() {
        let idx = ListingIndex::build(&[], 0.1).unwrap();
        assert!(idx.query(b"A", 0.5).unwrap().is_empty());
        let idx = ListingIndex::build(&figure_2_docs(), 0.1).unwrap();
        assert!(idx.query(b"ZZZ", 0.5).unwrap().is_empty());
    }

    #[test]
    fn docs_never_duplicated_in_output() {
        // A document with many occurrences of the pattern must be listed once.
        let docs = vec![
            UncertainString::deterministic(b"ABABABAB"),
            UncertainString::deterministic(b"CCCC"),
        ];
        let idx = ListingIndex::build(&docs, 0.5).unwrap();
        let hits = idx.query(b"AB", 0.9).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 0);
    }

    #[test]
    fn stats_aggregate_collection() {
        let idx = ListingIndex::build(&figure_2_docs(), 0.05).unwrap();
        assert_eq!(idx.stats().source_len, 9);
        assert_eq!(idx.num_docs(), 3);
        assert!(idx.stats().heap_bytes > 0);
    }
}
