//! The general uncertain-string substring index (§5): Lemma-2 transform +
//! position mapping + per-level duplicate elimination over the §4 machinery.

use std::time::Instant;

use ustr_suffix::SuffixTree;
use ustr_uncertain::{canon, transform_with_options, ProbPlane, Transformed, UncertainString};

use crate::{
    carray::CumulativeLogProb,
    error::{validate_query, Error},
    levels::{DedupStrategy, Levels},
    options::IndexOptions,
    result::QueryResult,
    snapshot::{CumState, IndexState, TreeState},
    stats::BuildStats,
};

/// Substring-search index over a general [`UncertainString`].
///
/// Built for a construction-time threshold `τmin`; answers queries for any
/// `τ ≥ τmin` in `O(m + occ)` for short patterns (`m ≤ ⌈log₂ N⌉` over the
/// transformed text) and `O(m · occ)`-flavoured time for longer ones.
///
/// ```
/// use ustr_core::Index;
/// use ustr_uncertain::UncertainString;
/// // The running example of Figure 10.
/// let s = UncertainString::parse("Q:.7,S:.3 | Q:.3,P:.7 | P | A:.4,F:.3,P:.2,Q:.1").unwrap();
/// let idx = Index::build(&s, 0.1).unwrap();
/// // Query ("QP", 0.4): only position 0 qualifies (.7*.7 = .49);
/// // position 1 reaches just .3*1 = .3.
/// assert_eq!(idx.query(b"QP", 0.4).unwrap().positions(), vec![0]);
/// ```
pub struct Index {
    source: UncertainString,
    /// Flat verification plane over `source` — derived state, rebuilt on
    /// construction and snapshot load, never persisted.
    plane: ProbPlane,
    transformed: Transformed,
    tree: SuffixTree,
    cum: CumulativeLogProb,
    levels: Levels,
    tau_min: f64,
    dedup_enabled: bool,
    stats: BuildStats,
}

impl Index {
    /// Builds the index with construction-time threshold `tau_min ∈ (0, 1]`.
    pub fn build(source: &UncertainString, tau_min: f64) -> Result<Self, Error> {
        Self::build_with(source, tau_min, &IndexOptions::default())
    }

    /// Builds with explicit [`IndexOptions`].
    pub fn build_with(
        source: &UncertainString,
        tau_min: f64,
        options: &IndexOptions,
    ) -> Result<Self, Error> {
        let start = Instant::now();
        let transformed = transform_with_options(source, tau_min, &options.transform)?;
        let tree = SuffixTree::build(transformed.special.chars().to_vec());
        let cum = CumulativeLogProb::new(transformed.special.probs(), |i| {
            transformed.special.char_at(i) == 0
        });
        let max_short = options.short_levels_for(tree.num_slots());
        let source_key = |j: usize| -> Option<u32> {
            let x = tree.sa(j);
            if x >= transformed.pos.len() {
                return None; // virtual-terminator slot
            }
            match transformed.pos[x] {
                u32::MAX => None,
                p => Some(p),
            }
        };
        let dedup = if options.disable_dedup {
            DedupStrategy::None
        } else {
            DedupStrategy::BySource(&source_key)
        };
        let levels = Levels::build(
            &tree,
            &cum,
            max_short,
            options.ratio(),
            !options.disable_long_levels,
            &dedup,
        );
        let mut stats = BuildStats {
            source_len: source.len(),
            transformed_len: transformed.len(),
            num_factors: transformed.num_factors,
            build_time: start.elapsed(),
            heap_bytes: 0,
        };
        let mut idx = Self {
            source: source.clone(),
            plane: ProbPlane::build(source),
            transformed,
            tree,
            cum,
            levels,
            tau_min,
            dedup_enabled: !options.disable_dedup,
            stats: BuildStats::default(),
        };
        stats.heap_bytes = idx.heap_size();
        idx.stats = stats;
        Ok(idx)
    }

    /// The construction-time threshold.
    pub fn tau_min(&self) -> f64 {
        self.tau_min
    }

    /// Decomposes the index into its persistence-ready snapshot state (see
    /// [`crate::snapshot`]). The byte encoding lives in `ustr-store`.
    pub fn to_snapshot(&self) -> IndexState {
        let (text, sa, lcp) = self.tree.to_parts();
        let (prefix, sentinels) = self.cum.to_parts();
        IndexState {
            source: self.source.clone(),
            transformed: self.transformed.clone(),
            tree: TreeState { text, sa, lcp },
            cum: CumState { prefix, sentinels },
            levels: self.levels.to_parts(),
            tau_min: self.tau_min,
            dedup_enabled: self.dedup_enabled,
            stats: self.stats.clone(),
        }
    }

    /// Reassembles an index from snapshot state. Rebuilds only the cheap
    /// derived structures (suffix-tree node arena from SA + LCP, RMQ champion
    /// values from the cumulative array); the result answers every query
    /// identically to the index the snapshot was taken from. Fails with
    /// [`Error::InvalidSnapshot`] on structurally inconsistent state.
    pub fn from_snapshot(state: IndexState) -> Result<Self, Error> {
        use crate::snapshot::{invalid, validate_tree_state};
        validate_tree_state(&state.tree)?;
        if state.tree.text != state.transformed.special.chars() {
            return Err(invalid("tree text does not match the transformed text"));
        }
        if state.transformed.pos.len() != state.transformed.special.len() {
            return Err(invalid("position map length does not match text"));
        }
        let source_len = state.source.len();
        if state
            .transformed
            .pos
            .iter()
            .any(|&p| p != u32::MAX && p as usize >= source_len)
        {
            return Err(invalid("position map points outside the source string"));
        }
        if !canon::valid_tau(state.tau_min) {
            return Err(invalid("tau_min outside (0, 1]"));
        }
        let tree = SuffixTree::from_parts(state.tree.text, state.tree.sa, state.tree.lcp);
        let cum = CumulativeLogProb::from_parts(state.cum.prefix, state.cum.sentinels)
            .map_err(invalid)?;
        if cum.len() != tree.text_len() {
            return Err(invalid("cumulative array length does not match text"));
        }
        let levels = Levels::from_parts(state.levels, &tree, &cum)?;
        let plane = ProbPlane::build(&state.source);
        Ok(Self {
            source: state.source,
            plane,
            transformed: state.transformed,
            tree,
            cum,
            levels,
            tau_min: state.tau_min,
            dedup_enabled: state.dedup_enabled,
            stats: state.stats,
        })
    }

    /// Construction statistics (transform expansion, timings, space).
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The source uncertain string.
    pub fn source(&self) -> &UncertainString {
        &self.source
    }

    /// Source position of the suffix in tree slot `j`, if it starts inside a
    /// factor.
    fn source_pos_of_slot(&self, slot: usize) -> Option<usize> {
        let x = self.tree.sa(slot);
        if x >= self.transformed.pos.len() {
            return None;
        }
        self.transformed.source_pos(x)
    }

    /// All positions of the source string where `pattern` matches with
    /// probability ≥ `tau` (requires `tau ≥ tau_min`). Positions are sorted;
    /// each carries its exact occurrence probability.
    pub fn query(&self, pattern: &[u8], tau: f64) -> Result<QueryResult, Error> {
        validate_query(pattern, tau, self.tau_min)?;
        let m = pattern.len();
        let Some((l, r)) = self.tree.suffix_range(pattern) else {
            return Ok(QueryResult::default());
        };
        let log_tau = canon::ln(tau);
        let has_corr = !self.source.correlations().is_empty();
        let short = m <= self.levels.max_short();
        let candidates = if short {
            self.levels
                .report_short(m, l, r, log_tau, &self.tree, &self.cum)
        } else {
            self.levels
                .report_long(m, l, r, log_tau, &self.tree, &self.cum)
        };
        // Short path with dedup: each reported slot is a distinct source
        // position (the suffix range is one locus partition). Long path and
        // dedup-disabled builds may repeat sources — aggregate.
        //
        // Reported probabilities are *canonical*: always recomputed from the
        // source model, never read off the stored prefix sums. The two agree
        // to float noise, but the canonical value is independent of the
        // transform's factor layout — so an index, a snapshot-loaded index,
        // and a `QueryExecutor` that scans the source directly all report
        // bit-identical probabilities. (Under correlation the stored values
        // are only upper bounds, making the recomputation mandatory rather
        // than merely canonical.) Recomputation goes through the flat
        // `ProbPlane` kernel — bit-identical to `match_probability` with the
        // pattern remapped to plane ranks once, not once per candidate.
        let mut hits: Vec<(usize, f64)> = Vec::with_capacity(candidates.len());
        if !candidates.is_empty() {
            let start = std::time::Instant::now();
            let evaluated = candidates.len() as u64;
            self.plane.with_kernel(pattern, |kernel| {
                for (slot, _stored) in candidates {
                    let Some(src) = self.source_pos_of_slot(slot) else {
                        continue;
                    };
                    let exact = kernel.match_probability(src);
                    if exact >= tau - ustr_uncertain::PROB_EPS {
                        hits.push((src, exact));
                    }
                }
            });
            ustr_uncertain::kstats::record_scan_on(
                ustr_uncertain::kstats::ScanPath::Plane,
                evaluated,
                hits.len() as u64,
                ustr_uncertain::kstats::elapsed_ns(start),
            );
        }
        if !(short && self.dedup_enabled && !has_corr) {
            hits.sort_unstable_by_key(|&(p, _)| p);
            hits.dedup_by_key(|&mut (p, _)| p);
        }
        Ok(QueryResult::from_hits(hits))
    }

    /// The `k` most probable occurrences of `pattern` with probability
    /// ≥ `tau_min`, ranked by occurrence probability (descending) with an
    /// ascending-position tie-break. Best-first search over the RMQ levels.
    ///
    /// The candidate set (exactly the occurrences a threshold query at
    /// `tau_min` would report) and the total `(probability ↓, position ↑)`
    /// order make the answer *canonical*: independent of heap arbitration
    /// among ties and identical for any [`crate::QueryExecutor`] over the
    /// same document. Probabilities are recomputed from the source model
    /// (see [`Index::query`]).
    pub fn query_top_k(&self, pattern: &[u8], k: usize) -> Result<Vec<(usize, f64)>, Error> {
        crate::error::validate_pattern(pattern)?;
        if k == 0 {
            return Ok(Vec::new());
        }
        let Some((l, r)) = self.tree.suffix_range(pattern) else {
            return Ok(Vec::new());
        };
        if !self.source.correlations().is_empty() {
            // Stored values are only *upper bounds* under correlation —
            // arbitrarily far from the canonical probabilities, so neither
            // the best-first cut nor the tie-closure test below is sound.
            // Rank the full τmin threshold answer (already canonical and
            // exactly the documented candidate set) instead.
            let mut out = self.query(pattern, self.tau_min)?.into_hits();
            out.sort_by(crate::canonical_hit_order);
            out.truncate(k);
            return Ok(out);
        }
        let m = pattern.len();
        let floor = canon::ln(self.tau_min) - ustr_uncertain::PROB_EPS;
        // Fetch k candidates, then widen until the boundary value drops
        // strictly below the k-th value (the tie class at the cut is closed)
        // or the candidates run out — so the cut is decided by the canonical
        // order below, not by heap arbitration among equal stored values.
        // The widening is capped at the suffix-range width: the range holds
        // at most `r - l + 1` candidates, so doubling past the population
        // can never surface anything new.
        let cap = r - l + 1;
        let mut want = k;
        let mut ranked;
        loop {
            ranked = crate::topk::top_k_for_range(
                &self.tree,
                &self.cum,
                &self.levels,
                m,
                l,
                r,
                want,
                floor,
                |slot| self.source_pos_of_slot(slot),
            );
            if ranked.len() < want || want >= cap {
                break;
            }
            if ranked[want - 1].1 < ranked[k - 1].1 - ustr_uncertain::PROB_EPS {
                break;
            }
            want = want.saturating_mul(2).min(cap);
        }
        let mut out: Vec<(usize, f64)> = Vec::with_capacity(ranked.len());
        if !ranked.is_empty() {
            self.plane.with_kernel(pattern, |kernel| {
                out.extend(
                    ranked
                        .into_iter()
                        .map(|(src, _)| (src, kernel.match_probability(src))),
                );
            });
        }
        // Mirror the threshold query's final canonical filter at τmin, so
        // the candidate set is exactly the τmin threshold answer.
        out.retain(|&(_, p)| p >= self.tau_min - ustr_uncertain::PROB_EPS);
        out.sort_by(crate::canonical_hit_order);
        out.truncate(k);
        Ok(out)
    }

    /// Approximate heap footprint in bytes (Figure 9c).
    pub fn heap_size(&self) -> usize {
        self.tree.heap_size()
            + self.cum.heap_size()
            + self.levels.heap_size()
            + self.transformed.heap_size()
            + self.plane.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustr_baseline::NaiveScanner;

    fn figure_10_string() -> UncertainString {
        UncertainString::parse("Q:.7,S:.3 | Q:.3,P:.7 | P | A:.4,F:.3,P:.2,Q:.1").unwrap()
    }

    #[test]
    fn figure_10_running_example() {
        let idx = Index::build(&figure_10_string(), 0.1).unwrap();
        let r = idx.query(b"QP", 0.4).unwrap();
        assert_eq!(r.positions(), vec![0]);
        assert!((r.hits()[0].1 - 0.49).abs() < 1e-9);
        // Both QP occurrences pass at tau = 0.2.
        let r = idx.query(b"QP", 0.2).unwrap();
        assert_eq!(r.positions(), vec![0, 1]);
    }

    #[test]
    fn agrees_with_scanner_exhaustively() {
        let s = figure_10_string();
        let idx = Index::build(&s, 0.1).unwrap();
        // All sentinel-free patterns over the observed alphabet up to len 4.
        let alphabet = [b'Q', b'S', b'P', b'A', b'F'];
        let mut patterns: Vec<Vec<u8>> = alphabet.iter().map(|&c| vec![c]).collect();
        for _ in 0..3 {
            let mut next = Vec::new();
            for p in &patterns {
                for &c in &alphabet {
                    let mut q = p.clone();
                    q.push(c);
                    next.push(q);
                }
            }
            patterns.extend(next);
        }
        for pattern in &patterns {
            for tau in [0.1, 0.15, 0.25, 0.4, 0.7] {
                let got = idx.query(pattern, tau).unwrap().positions();
                let expected = NaiveScanner::find(&s, pattern, tau);
                assert_eq!(
                    got,
                    expected,
                    "pattern {:?} tau {tau}",
                    String::from_utf8_lossy(pattern)
                );
            }
        }
    }

    #[test]
    fn deterministic_text_behaves_like_plain_search() {
        let s = UncertainString::deterministic(b"abracadabra");
        let idx = Index::build(&s, 0.5).unwrap();
        assert_eq!(idx.query(b"abra", 0.9).unwrap().positions(), vec![0, 7]);
        assert_eq!(
            idx.query(b"a", 0.9).unwrap().positions(),
            vec![0, 3, 5, 7, 10]
        );
        assert!(idx.query(b"zz", 0.9).unwrap().is_empty());
    }

    #[test]
    fn tau_below_tau_min_is_rejected() {
        let idx = Index::build(&figure_10_string(), 0.2).unwrap();
        assert!(matches!(
            idx.query(b"QP", 0.1),
            Err(Error::ThresholdBelowTauMin { .. })
        ));
    }

    #[test]
    fn long_patterns_on_mostly_deterministic_text() {
        // A long deterministic body with a few uncertain positions.
        let mut spec = String::new();
        let body = b"abcdefghijklmnopqrstuvwxyzabcdefghijklmnopqrstuvwxyz";
        for (i, &c) in body.iter().enumerate() {
            if i > 0 {
                spec.push_str(" | ");
            }
            if i % 10 == 3 {
                spec.push_str(&format!(
                    "{}:.6,{}:.4",
                    c as char,
                    ((c - b'a' + 1) % 26 + b'a') as char
                ));
            } else {
                spec.push(c as char);
            }
        }
        let s = UncertainString::parse(&spec).unwrap();
        let idx = Index::build(&s, 0.05).unwrap();
        // A pattern of length 20 starting at 5 follows the most likely chars.
        let world = s.most_probable_world();
        let pattern = &world[5..25];
        let got = idx.query(pattern, 0.05).unwrap().positions();
        let expected = NaiveScanner::find(&s, pattern, 0.05);
        assert_eq!(got, expected);
    }

    #[test]
    fn dedup_ablation_gives_same_answers() {
        let s = figure_10_string();
        let idx = Index::build(&s, 0.1).unwrap();
        let no_dedup = Index::build_with(
            &s,
            0.1,
            &IndexOptions {
                disable_dedup: true,
                ..Default::default()
            },
        )
        .unwrap();
        for pattern in [&b"QP"[..], b"P", b"PA", b"QPP", b"SP"] {
            for tau in [0.1, 0.3, 0.5] {
                assert_eq!(
                    idx.query(pattern, tau).unwrap().positions(),
                    no_dedup.query(pattern, tau).unwrap().positions(),
                    "pattern {pattern:?}"
                );
            }
        }
    }

    #[test]
    fn probabilities_reported_are_exact() {
        let s = figure_10_string();
        let idx = Index::build(&s, 0.1).unwrap();
        for (pos, prob) in idx.query(b"P", 0.1).unwrap() {
            assert!((prob - s.match_probability(b"P", pos)).abs() < 1e-9);
        }
    }

    #[test]
    fn stats_capture_transform_expansion() {
        let idx = Index::build(&figure_10_string(), 0.1).unwrap();
        let st = idx.stats();
        assert_eq!(st.source_len, 4);
        assert!(
            st.transformed_len > 4,
            "factors + separators expand the text"
        );
        assert!(st.num_factors >= 2);
        assert!(st.expansion() > 1.0);
        assert!(st.heap_bytes > 0);
    }

    #[test]
    fn empty_source_string() {
        let s = UncertainString::new(Vec::new());
        let idx = Index::build(&s, 0.5).unwrap();
        assert!(idx.query(b"a", 0.5).unwrap().is_empty());
    }
}
