//! Approximate substring search (§7): ε-refined links in the suffix tree,
//! after the top-k framework of Hon, Shah, Vitter (FOCS 2009).
//!
//! Every leaf of the suffix tree over the transformed text is marked with
//! its original position `Posid`; internal nodes are marked at LCAs of
//! equally-marked leaves. Each marked node links to its lowest marked
//! proper ancestor, and each link is split into sub-links whose endpoint
//! probabilities differ by at most ε (probabilities are evaluated on the
//! *real* prefix of the witness suffix — the separator-capped window — so
//! chains that run past a factor boundary stay finite).
//!
//! **Query.** For a pattern of length `m` with locus `ip`, the stabbed
//! sub-link for position `d` is the unique one with
//! `target_depth < m ≤ origin_depth` and origin preorder inside `ip`'s
//! subtree. Using `m` (rather than `depth(ip)`, which can overshoot the
//! pattern into a longer shared prefix) makes the additive guarantee exact:
//! the true occurrence probability is sandwiched between the sub-link's
//! endpoint probabilities, which differ by ≤ ε. Hence
//! `exact(τ) ⊆ reported ⊆ exact(τ − ε)` — the paper's additive-error
//! semantics.
//!
//! Retrieval walks a min-RMQ recursion over link target depths, reporting
//! each link in O(1); links whose chains cross the locus but fail the
//! probability cutoff cost extra visits (bounded by the τmin-occurrences),
//! which is the documented deviation from the fixed-τ HSV machinery.

use std::time::Instant;

use ustr_rmq::{BlockRmq, Direction, Rmq, ThresholdReporter};
use ustr_suffix::SuffixTree;
use ustr_uncertain::{canon, transform_with_options, Transformed, UncertainString};

use crate::{
    carray::CumulativeLogProb,
    error::{validate_query, Error},
    options::IndexOptions,
    result::QueryResult,
    snapshot::{ApproxIndexState, ApproxLinkState, CumState, TreeState},
    stats::BuildStats,
};

/// One ε-refined link.
#[derive(Debug, Clone)]
struct Link {
    /// Preorder rank of the (real) node whose subtree anchors the origin.
    origin_pre: u32,
    /// String depth of the (possibly dummy) origin endpoint.
    origin_depth: u32,
    /// String depth of the (possibly dummy) target endpoint.
    target_depth: u32,
    /// Original string position (`Posid`).
    source_pos: u32,
    /// Probability of the origin-depth prefix at `source_pos` (capped at the
    /// factor boundary).
    prob: f64,
}

/// Approximate substring-search index with additive error ε.
///
/// ```
/// use ustr_core::ApproxIndex;
/// use ustr_uncertain::UncertainString;
/// let s = UncertainString::parse("Q:.7,S:.3 | Q:.3,P:.7 | P | A:.4,F:.3,P:.2,Q:.1").unwrap();
/// let idx = ApproxIndex::build(&s, 0.1, 0.05).unwrap();
/// let hits = idx.query(b"QP", 0.4).unwrap();
/// // Everything with true probability >= 0.4 is present ...
/// assert!(hits.positions().contains(&0)); // .7 * .7 = .49
/// // ... and nothing below 0.4 - eps = 0.35 can appear (position 1 has .3).
/// assert!(!hits.positions().contains(&1));
/// ```
pub struct ApproxIndex {
    transformed: Transformed,
    tree: SuffixTree,
    cum: CumulativeLogProb,
    links: Vec<Link>,
    /// Min-RMQ over `links[..].target_depth`.
    target_rmq: BlockRmq,
    epsilon: f64,
    tau_min: f64,
    stats: BuildStats,
}

impl ApproxIndex {
    /// Builds the index for threshold floor `tau_min` and additive error
    /// `epsilon ∈ (0, 1)`.
    pub fn build(source: &UncertainString, tau_min: f64, epsilon: f64) -> Result<Self, Error> {
        Self::build_with(source, tau_min, epsilon, &IndexOptions::default())
    }

    /// Builds with explicit [`IndexOptions`] (only the transform options are
    /// consulted).
    pub fn build_with(
        source: &UncertainString,
        tau_min: f64,
        epsilon: f64,
        options: &IndexOptions,
    ) -> Result<Self, Error> {
        if !canon::valid_epsilon(epsilon) {
            return Err(Error::InvalidEpsilon { value: epsilon });
        }
        let start = Instant::now();
        let transformed = transform_with_options(source, tau_min, &options.transform)?;
        let tree = SuffixTree::build(transformed.special.chars().to_vec());
        let cum = CumulativeLogProb::new(transformed.special.probs(), |i| {
            transformed.special.char_at(i) == 0
        });

        // Group marked leaves by Posid (slots ascend in preorder order)
        // with a counting sort into one flat arena — two passes, zero
        // per-position `Vec` allocations (the plane/kernel treatment of the
        // query path, applied to the build's hottest grouping loop).
        let n_src = source.len();
        let marked = |slot: usize| -> Option<usize> {
            let x = tree.sa(slot);
            if x >= transformed.pos.len() {
                return None;
            }
            transformed.source_pos(x)
        };
        let mut bucket_start = vec![0u32; n_src + 2];
        for slot in 1..tree.num_slots() {
            if let Some(d) = marked(slot) {
                bucket_start[d + 2] += 1;
            }
        }
        for d in 2..bucket_start.len() {
            bucket_start[d] += bucket_start[d - 1];
        }
        let mut flat = vec![0u32; *bucket_start.last().unwrap() as usize];
        for slot in 1..tree.num_slots() {
            if let Some(d) = marked(slot) {
                flat[bucket_start[d + 1] as usize] = slot as u32;
                bucket_start[d + 1] += 1;
            }
        }

        let mut links: Vec<Link> = Vec::new();
        let mut stack: Vec<u32> = Vec::new();
        let mut witness: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for d in 0..n_src {
            let slots = &flat[bucket_start[d] as usize..bucket_start[d + 1] as usize];
            if slots.is_empty() {
                continue;
            }
            stack.clear();
            witness.clear();
            // Virtual (induced) tree over the marked leaves; emit one link
            // per virtual edge.
            let emit = |u: u32, v_depth: usize, links: &mut Vec<Link>, witness_x: u32| {
                refine_link(&tree, &cum, u, v_depth, d as u32, witness_x, epsilon, links);
            };
            for &slot in slots {
                let leaf = tree.leaf(slot as usize);
                let x = tree.sa(slot as usize) as u32;
                witness.insert(leaf, x);
                if stack.is_empty() {
                    stack.push(leaf);
                    continue;
                }
                let l = tree.lca(*stack.last().unwrap(), leaf);
                // Unwind stack nodes deeper than the new LCA, emitting their
                // virtual-tree edges; the LCA ends up on top of the stack.
                while let Some(&top) = stack.last() {
                    if tree.string_depth(top) <= tree.string_depth(l) {
                        break;
                    }
                    stack.pop();
                    let wx = witness[&top];
                    match stack.last() {
                        Some(&p) if tree.string_depth(p) >= tree.string_depth(l) => {
                            emit(top, tree.string_depth(p), &mut links, wx);
                            witness.entry(p).or_insert(wx);
                        }
                        _ => {
                            emit(top, tree.string_depth(l), &mut links, wx);
                            witness.entry(l).or_insert(wx);
                            stack.push(l);
                            break;
                        }
                    }
                }
                debug_assert_eq!(stack.last(), Some(&l), "LCA tops the stack");
                stack.push(leaf);
            }
            // Drain: connect the remaining right spine, then the virtual
            // root to the tree root (target depth 0).
            while stack.len() > 1 {
                let top = stack.pop().unwrap();
                let parent = *stack.last().unwrap();
                let wx = witness[&top];
                emit(top, tree.string_depth(parent), &mut links, wx);
                witness.entry(parent).or_insert(wx);
            }
            let vr = stack.pop().unwrap();
            if vr != tree.root() {
                let wx = witness[&vr];
                emit(vr, 0, &mut links, wx);
            }
        }

        links.sort_unstable_by_key(|l| l.origin_pre);
        let depths: Vec<f64> = links.iter().map(|l| l.target_depth as f64).collect();
        let target_rmq = BlockRmq::new(&depths, Direction::Min);

        let mut stats = BuildStats {
            source_len: source.len(),
            transformed_len: transformed.len(),
            num_factors: transformed.num_factors,
            build_time: start.elapsed(),
            heap_bytes: 0,
        };
        let idx_heap = tree.heap_size()
            + cum.heap_size()
            + links.capacity() * std::mem::size_of::<Link>()
            + links.len() * std::mem::size_of::<f64>() * 2;
        stats.heap_bytes = idx_heap;
        Ok(Self {
            transformed,
            tree,
            cum,
            links,
            target_rmq,
            epsilon,
            tau_min,
            stats,
        })
    }

    /// The additive error bound ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The construction threshold floor.
    pub fn tau_min(&self) -> f64 {
        self.tau_min
    }

    /// Number of ε-refined links (the O(N/ε) structure of §7).
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Construction statistics.
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// Decomposes the index into its persistence-ready snapshot state (see
    /// [`crate::snapshot`]). The byte encoding lives in `ustr-store`.
    pub fn to_snapshot(&self) -> ApproxIndexState {
        let (text, sa, lcp) = self.tree.to_parts();
        let (prefix, sentinels) = self.cum.to_parts();
        ApproxIndexState {
            transformed: self.transformed.clone(),
            tree: TreeState { text, sa, lcp },
            cum: CumState { prefix, sentinels },
            links: self
                .links
                .iter()
                .map(|l| ApproxLinkState {
                    origin_pre: l.origin_pre,
                    origin_depth: l.origin_depth,
                    target_depth: l.target_depth,
                    source_pos: l.source_pos,
                    prob: l.prob,
                })
                .collect(),
            epsilon: self.epsilon,
            tau_min: self.tau_min,
            stats: self.stats.clone(),
        }
    }

    /// Reassembles an index from snapshot state. Only the cheap derived
    /// structures are rebuilt (the suffix-tree arena from SA + LCP and the
    /// min-RMQ over link target depths); the sub-link table is restored
    /// verbatim, so the result answers every query byte-identically to the
    /// index the snapshot was taken from. Fails with
    /// [`Error::InvalidSnapshot`] on structurally inconsistent state.
    pub fn from_snapshot(state: ApproxIndexState) -> Result<Self, Error> {
        use crate::snapshot::{invalid, validate_tree_state};
        validate_tree_state(&state.tree)?;
        if state.tree.text != state.transformed.special.chars() {
            return Err(invalid("tree text does not match the transformed text"));
        }
        if state.transformed.pos.len() != state.transformed.special.len() {
            return Err(invalid("position map length does not match text"));
        }
        if !canon::valid_epsilon(state.epsilon) {
            return Err(invalid("epsilon outside (0, 1)"));
        }
        if !canon::valid_tau(state.tau_min) {
            return Err(invalid("tau_min outside (0, 1]"));
        }
        let tree = SuffixTree::from_parts(state.tree.text, state.tree.sa, state.tree.lcp);
        let cum = CumulativeLogProb::from_parts(state.cum.prefix, state.cum.sentinels)
            .map_err(invalid)?;
        if cum.len() != tree.text_len() {
            return Err(invalid("cumulative array length does not match text"));
        }
        let num_nodes = tree.num_nodes() as u32;
        let source_len = state.transformed.source_len as u32;
        let mut prev_pre = 0u32;
        for link in &state.links {
            if link.origin_pre >= num_nodes {
                return Err(invalid("link origin preorder outside the tree"));
            }
            if link.origin_pre < prev_pre {
                return Err(invalid("links are not sorted by origin preorder"));
            }
            prev_pre = link.origin_pre;
            if link.target_depth >= link.origin_depth {
                return Err(invalid("link target depth not below its origin"));
            }
            if link.source_pos >= source_len {
                return Err(invalid("link source position outside the source"));
            }
            if !link.prob.is_finite() || canon::is_negative(link.prob) {
                return Err(invalid("link probability is not a finite non-negative"));
            }
        }
        let links: Vec<Link> = state
            .links
            .into_iter()
            .map(|l| Link {
                origin_pre: l.origin_pre,
                origin_depth: l.origin_depth,
                target_depth: l.target_depth,
                source_pos: l.source_pos,
                prob: l.prob,
            })
            .collect();
        let depths: Vec<f64> = links.iter().map(|l| l.target_depth as f64).collect();
        let target_rmq = BlockRmq::new(&depths, Direction::Min);
        Ok(Self {
            transformed: state.transformed,
            tree,
            cum,
            links,
            target_rmq,
            epsilon: state.epsilon,
            tau_min: state.tau_min,
            stats: state.stats,
        })
    }

    /// Positions where `pattern` matches with probability ≥ τ, up to the
    /// additive error: the result contains every position with true
    /// probability ≥ τ and no position below τ − ε. Reported probabilities
    /// are the link approximations (within ε below the true value).
    pub fn query(&self, pattern: &[u8], tau: f64) -> Result<QueryResult, Error> {
        validate_query(pattern, tau, self.tau_min)?;
        let m = pattern.len();
        let Some(locus) = self.tree.locus(pattern) else {
            return Ok(QueryResult::default());
        };
        let (pl, pr) = self.tree.preorder_range(locus);
        // Link range whose origin preorder falls inside the locus subtree.
        let lo = self.links.partition_point(|l| (l.origin_pre as usize) < pl);
        let hi = self
            .links
            .partition_point(|l| (l.origin_pre as usize) <= pr);
        if lo >= hi {
            return Ok(QueryResult::default());
        }
        let cutoff = tau - self.epsilon - ustr_uncertain::PROB_EPS;
        let mut hits: Vec<(usize, f64)> = Vec::new();
        // Pop links by ascending target depth; prune once the minimum
        // target depth in a range reaches m.
        let reporter = ThresholdReporter::new(
            lo,
            hi - 1,
            (m - 1) as f64,
            Direction::Min,
            |a, b| self.target_rmq.query(a, b),
            |i| self.links[i].target_depth as f64,
        );
        for (i, _) in reporter {
            let link = &self.links[i];
            if (link.origin_depth as usize) >= m && link.prob >= cutoff {
                hits.push((link.source_pos as usize, link.prob));
            }
        }
        Ok(QueryResult::from_hits(hits))
    }
}

/// Splits the virtual edge from node `u` (string depth `o₀`) up to depth
/// `t₀` into sub-links whose endpoint probabilities differ by ≤ ε.
/// Probabilities are evaluated at the witness position `x`, capped at the
/// factor boundary.
#[allow(clippy::too_many_arguments)]
fn refine_link(
    tree: &SuffixTree,
    cum: &CumulativeLogProb,
    u: u32,
    t0: usize,
    source_pos: u32,
    x: u32,
    epsilon: f64,
    links: &mut Vec<Link>,
) {
    let o0 = tree.string_depth(u);
    debug_assert!(o0 > t0, "virtual child must be deeper than its parent");
    let lmax = cum.run_length(x as usize);
    let p_at = |depth: usize| -> f64 { canon::exp(cum.window(x as usize, depth.min(lmax))) };
    let origin_pre = tree.preorder(u) as u32;
    let mut o = o0;
    while o > t0 {
        let p_o = p_at(o);
        // Smallest t ∈ [t0, o-1] with P(t) − P(o) ≤ ε (P non-increasing in
        // depth, so the predicate is monotone in t). If even one step up
        // exceeds ε the link degenerates to a single character.
        let (mut lo, mut hi) = (t0, o - 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if p_at(mid) - p_o <= epsilon {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let t = lo;
        links.push(Link {
            origin_pre,
            origin_depth: o as u32,
            target_depth: t as u32,
            source_pos,
            prob: p_o,
        });
        o = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustr_baseline::NaiveScanner;

    fn sandwich_holds(s: &UncertainString, idx: &ApproxIndex, pattern: &[u8], tau: f64) {
        let eps = idx.epsilon();
        let reported = idx.query(pattern, tau).unwrap().positions();
        let must_have = NaiveScanner::find(s, pattern, tau);
        let may_have = NaiveScanner::find(s, pattern, (tau - eps).max(1e-12));
        for p in &must_have {
            assert!(
                reported.contains(p),
                "missing exact hit {p} for {:?} tau {tau}",
                String::from_utf8_lossy(pattern)
            );
        }
        for p in &reported {
            assert!(
                may_have.contains(p),
                "spurious hit {p} below tau-eps for {:?} tau {tau}",
                String::from_utf8_lossy(pattern)
            );
        }
    }

    #[test]
    fn sandwich_on_figure_10() {
        let s = UncertainString::parse("Q:.7,S:.3 | Q:.3,P:.7 | P | A:.4,F:.3,P:.2,Q:.1").unwrap();
        let idx = ApproxIndex::build(&s, 0.05, 0.05).unwrap();
        for pattern in [&b"QP"[..], b"P", b"QPP", b"PA", b"PPA", b"SP", b"Q"] {
            for tau in [0.05, 0.1, 0.2, 0.4, 0.6, 0.9] {
                sandwich_holds(&s, &idx, pattern, tau);
            }
        }
    }

    #[test]
    fn sandwich_on_protein_fragment() {
        let s = UncertainString::parse(
            "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 | \
             I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
        )
        .unwrap();
        let idx = ApproxIndex::build(&s, 0.02, 0.03).unwrap();
        for pattern in [&b"AT"[..], b"PQ", b"SFPQ", b"PA", b"TPA", b"FPQP"] {
            for tau in [0.05, 0.12, 0.3, 0.5] {
                sandwich_holds(&s, &idx, pattern, tau);
            }
        }
    }

    #[test]
    fn deterministic_text_is_exact() {
        let s = UncertainString::deterministic(b"abracadabra");
        let idx = ApproxIndex::build(&s, 0.5, 0.1).unwrap();
        let hits = idx.query(b"abra", 0.9).unwrap();
        assert_eq!(hits.positions(), vec![0, 7]);
        for &(_, p) in hits.hits() {
            assert!((p - 1.0).abs() < 1e-9);
        }
        assert!(idx.query(b"zzz", 0.9).unwrap().is_empty());
    }

    #[test]
    fn smaller_epsilon_means_more_links() {
        let s = UncertainString::parse(
            "a:.9,b:.1 | a:.9,b:.1 | a:.9,b:.1 | a:.9,b:.1 | a:.9,b:.1 | a:.9,b:.1",
        )
        .unwrap();
        let coarse = ApproxIndex::build(&s, 0.05, 0.5).unwrap();
        let fine = ApproxIndex::build(&s, 0.05, 0.01).unwrap();
        assert!(
            fine.num_links() > coarse.num_links(),
            "fine {} vs coarse {}",
            fine.num_links(),
            coarse.num_links()
        );
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let s = UncertainString::deterministic(b"ab");
        assert!(matches!(
            ApproxIndex::build(&s, 0.5, 0.0),
            Err(Error::InvalidEpsilon { .. })
        ));
        assert!(matches!(
            ApproxIndex::build(&s, 0.5, 1.0),
            Err(Error::InvalidEpsilon { .. })
        ));
    }

    #[test]
    fn reported_probability_within_epsilon() {
        let s = UncertainString::parse("a:.8,b:.2 | a:.8,b:.2 | a:.8,b:.2").unwrap();
        let idx = ApproxIndex::build(&s, 0.05, 0.1).unwrap();
        for (pos, approx_p) in idx.query(b"aa", 0.3).unwrap() {
            let true_p = s.match_probability(b"aa", pos);
            assert!(
                approx_p <= true_p + 1e-9,
                "approximation never exceeds truth"
            );
            assert!(true_p - approx_p <= 0.1 + 1e-9, "within epsilon");
        }
    }

    #[test]
    fn snapshot_round_trip_answers_identically() {
        let s = UncertainString::parse(
            "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 | \
             I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
        )
        .unwrap();
        let built = ApproxIndex::build(&s, 0.02, 0.03).unwrap();
        let loaded = ApproxIndex::from_snapshot(built.to_snapshot()).unwrap();
        assert_eq!(built.num_links(), loaded.num_links());
        assert_eq!(built.epsilon().to_bits(), loaded.epsilon().to_bits());
        for pattern in [&b"AT"[..], b"PQ", b"SFPQ", b"PA", b"TPA", b"FPQP", b"Z"] {
            for tau in [0.05, 0.12, 0.3, 0.5] {
                assert_eq!(
                    built.query(pattern, tau).unwrap().hits(),
                    loaded.query(pattern, tau).unwrap().hits(),
                    "pattern {pattern:?} tau {tau}"
                );
            }
        }
    }

    #[test]
    fn snapshot_rejects_tampered_links() {
        let s = UncertainString::parse("a:.9,b:.1 | a | a:.9,b:.1").unwrap();
        let built = ApproxIndex::build(&s, 0.05, 0.1).unwrap();
        let mut state = built.to_snapshot();
        assert!(!state.links.is_empty());
        state.links[0].target_depth = state.links[0].origin_depth + 1;
        assert!(matches!(
            ApproxIndex::from_snapshot(state),
            Err(Error::InvalidSnapshot { .. })
        ));
        let mut state = built.to_snapshot();
        state.epsilon = 0.0;
        assert!(matches!(
            ApproxIndex::from_snapshot(state),
            Err(Error::InvalidSnapshot { .. })
        ));
    }

    #[test]
    fn positions_unique_per_query() {
        let s = UncertainString::parse("a:.9,b:.1 | a | a:.9,b:.1 | a | a:.9,b:.1").unwrap();
        let idx = ApproxIndex::build(&s, 0.05, 0.05).unwrap();
        let hits = idx.query(b"aa", 0.1).unwrap();
        let mut positions = hits.positions();
        positions.dedup();
        assert_eq!(positions.len(), hits.len(), "one link per position");
    }
}
