//! Query/build errors for the index layer.

use std::fmt;

use ustr_uncertain::{canon, ModelError};

/// Errors raised by index construction and querying.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Underlying model/transform error.
    Model(ModelError),
    /// The query pattern was empty.
    EmptyPattern,
    /// The query pattern contains the reserved separator byte 0.
    PatternContainsSentinel,
    /// The query threshold is below the construction-time `τmin`.
    ThresholdBelowTauMin { tau: f64, tau_min: f64 },
    /// A threshold was outside `(0, 1]`.
    InvalidThreshold { value: f64 },
    /// ε for the approximate index was outside `(0, 1)`.
    InvalidEpsilon { value: f64 },
    /// A snapshot's decoded state is structurally inconsistent and cannot be
    /// assembled into an index.
    InvalidSnapshot { detail: String },
    /// An internal invariant of the serving machinery was violated (a lost
    /// worker answer, a mismatched response kind). Serving code returns
    /// this instead of panicking: one broken response must not take a
    /// worker thread — and every lock it holds — down with it.
    Internal { detail: String },
}

impl Error {
    /// Shorthand for [`Error::Internal`].
    pub fn internal(detail: impl Into<String>) -> Self {
        Error::Internal {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Model(e) => write!(f, "{e}"),
            Error::EmptyPattern => write!(f, "query pattern is empty"),
            Error::PatternContainsSentinel => {
                write!(f, "query pattern contains the reserved byte 0")
            }
            Error::ThresholdBelowTauMin { tau, tau_min } => write!(
                f,
                "query threshold {tau} is below the construction-time tau_min {tau_min}"
            ),
            Error::InvalidThreshold { value } => {
                write!(f, "threshold {value} is outside (0, 1]")
            }
            Error::InvalidEpsilon { value } => {
                write!(f, "epsilon {value} is outside (0, 1)")
            }
            Error::InvalidSnapshot { detail } => {
                write!(f, "invalid index snapshot: {detail}")
            }
            Error::Internal { detail } => {
                write!(f, "internal error: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for Error {
    fn from(e: ModelError) -> Self {
        Error::Model(e)
    }
}

/// Validates a pattern alone (top-k queries have no threshold).
pub fn validate_pattern(pattern: &[u8]) -> Result<(), Error> {
    if pattern.is_empty() {
        return Err(Error::EmptyPattern);
    }
    if pattern.contains(&0u8) {
        return Err(Error::PatternContainsSentinel);
    }
    Ok(())
}

/// Validates a query `(pattern, tau)` pair against `tau_min`.
pub fn validate_query(pattern: &[u8], tau: f64, tau_min: f64) -> Result<(), Error> {
    validate_pattern(pattern)?;
    if !canon::valid_tau(tau) {
        return Err(Error::InvalidThreshold { value: tau });
    }
    if canon::below_floor(tau, tau_min) {
        return Err(Error::ThresholdBelowTauMin { tau, tau_min });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_query_covers_all_cases() {
        assert!(validate_query(b"ab", 0.5, 0.1).is_ok());
        assert_eq!(validate_query(b"", 0.5, 0.1), Err(Error::EmptyPattern));
        assert_eq!(
            validate_query(b"a\0b", 0.5, 0.1),
            Err(Error::PatternContainsSentinel)
        );
        assert!(matches!(
            validate_query(b"ab", 0.05, 0.1),
            Err(Error::ThresholdBelowTauMin { .. })
        ));
        assert!(matches!(
            validate_query(b"ab", 0.0, 0.1),
            Err(Error::InvalidThreshold { .. })
        ));
        assert!(matches!(
            validate_query(b"ab", 1.5, 0.1),
            Err(Error::InvalidThreshold { .. })
        ));
        // Exactly tau_min is allowed.
        assert!(validate_query(b"ab", 0.1, 0.1).is_ok());
    }

    #[test]
    fn model_errors_convert() {
        let e: Error = ModelError::EmptyPattern.into();
        assert!(matches!(e, Error::Model(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
